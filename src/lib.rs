//! # fairrec — fairness in group recommendations in the health domain
//!
//! A complete Rust implementation of *Stratigi, Kondylakis, Stefanidis:
//! "Fairness in Group Recommendations in the Health Domain"* (ICDE 2017),
//! including every substrate the paper relies on: a SNOMED-CT-like
//! clinical ontology, a Personal Health Record store, a tf-idf text
//! pipeline, the three user-similarity measures, the fairness-aware group
//! model with Algorithm 1 and its brute-force baseline, and an in-process
//! MapReduce engine running the paper's Job 1–3 decomposition.
//!
//! ## Quickstart
//!
//! ```
//! use fairrec::prelude::*;
//!
//! // A clinical ontology and a synthetic patient cohort.
//! let ontology = fairrec::ontology::snomed::clinical_fragment();
//! let data = SyntheticDataset::generate(SyntheticConfig::default(), &ontology)?;
//!
//! // The engine with the paper's default model.
//! let engine = RecommenderEngine::new(
//!     data.matrix.clone(),
//!     data.profiles.clone(),
//!     ontology,
//!     EngineConfig::default(),
//! )?;
//!
//! // A caregiver asks for a fair package of 6 documents for 3 patients.
//! let group = Group::new(GroupId::new(0), data.sample_group(3, None, 7))?;
//! let rec = engine.recommend_for_group(&group, 6)?;
//! assert_eq!(rec.items.len(), 6);
//! assert!((rec.fairness - 1.0).abs() < 1e-12); // z ≥ |G| ⇒ fairness 1
//! # Ok::<(), fairrec::types::FairrecError>(())
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `fairrec-types` | ids, ratings, sparse matrix, top-k |
//! | [`ontology`] | `fairrec-ontology` | clinical is-a tree, path queries |
//! | [`phr`] | `fairrec-phr` | patient profiles and store |
//! | [`text`] | `fairrec-text` | tokenizer, tf-idf, cosine |
//! | [`similarity`] | `fairrec-similarity` | RS / CS / SS measures, peers, `PeerIndex`, bulk kernel |
//! | [`core`] | `fairrec-core` | relevance, aggregation, fairness, Algorithm 1, brute force |
//! | [`mapreduce`] | `fairrec-mapreduce` | engine + Jobs 0–3 + top-k |
//! | [`search`] | `fairrec-search` | curated document search (BM25) |
//! | [`data`] | `fairrec-data` | synthetic workloads, TSV persistence |
//! | [`engine`] | `fairrec-engine` | end-to-end facade, batch serving, evaluation |
//! | [`metrics`] | `fairrec-metrics` | fairness metrics, exposure parity, serving-path monitor |
//!
//! ## Serving architecture
//!
//! The request path is layered so that everything expensive happens once
//! and everything per-request is a cache read plus arithmetic:
//!
//! ```text
//!   types          RatingMatrix (CSR + CSC), Parallelism knob
//!     │
//!   similarity     RS / CS / SS measures (built once, Arc-shared)
//!     │                 └─ PeerIndex: memoized full peer lists
//!     │                    (Definition 1), masked group views
//!   core           Equation 1 scoring over candidates (parallel map),
//!     │            Definition 2 aggregation, Algorithm 1 selection
//!   engine         RecommenderEngine: owns data + backend + PeerIndex,
//!                  recommend_for_group / recommend_batch fan-out
//! ```
//!
//! * **Build once.** [`RecommenderEngine::new`](engine::RecommenderEngine::new) constructs the
//!   configured similarity backend over `Arc`s of the engine's data and
//!   attaches one [`PeerIndex`](similarity::PeerIndex); nothing is
//!   rebuilt per request. The MapReduce path feeds its Job 2 similarity
//!   edges through the same index (`PeerIndex::from_edges`), so
//!   Definition 1 semantics — canonical ordering, group masking, peer
//!   caps — live in exactly one place.
//! * **Cold fills take the bulk kernel.** Peer-list computation routes
//!   through [`BulkUserSimilarity`](similarity::BulkUserSimilarity), the
//!   one-vs-all form of `simU`: `RatingsSimilarity` generates candidates
//!   from the matrix's item-major (CSC) view — only co-raters can be
//!   peers — so a full cold warm costs the dataset's co-rating mass
//!   instead of O(U²·d), and `PeerIndex::warm_symmetric` fills both
//!   endpoints of every pair from one upper-triangle pass per user.
//!   The kernel is bitwise identical to the per-pair path (same
//!   merge-join accumulation order), pinned by proptests.
//! * **Caching contract & live ingestion.** The index memoizes each
//!   user's *full* (uncapped, unmasked) peer list; request-time views
//!   mask co-members and truncate to `max_peers`, which is provably
//!   equivalent to recomputing with an exclusion set. Entries are never
//!   revalidated; instead the rating relation is live:
//!   `RecommenderEngine::ingest_rating` patches the matrix in place and
//!   repairs the warm index exactly with `PeerIndex::apply_delta` (one
//!   kernel pass for the changed user, spliced into the affected lists
//!   — bitwise identical to a cold rebuild); `remove_rating` shrinks
//!   through the same machinery. Bulk loads go through
//!   `ingest_ratings`, whose kernel cost model (co-rating mass of the
//!   per-event deltas vs one symmetric rewarm) picks delta replay or
//!   the blanket invalidation per batch; `PeerIndex::generation` is
//!   the freshness token guarding in-flight fills, and slots publish
//!   epoch-style (wait-free reader loads, CAS installs), so warms
//!   overlap serving. `docs/ARCHITECTURE.md` documents the three
//!   peer-build paths and the full update-path contract.
//! * **Parallelism.** Every parallel loop (index warming, per-candidate
//!   Equation 1, `recommend_batch` group fan-out) is an order-preserving
//!   pure map, so results are bitwise identical across
//!   [`Parallelism`](types::Parallelism) modes and thread counts —
//!   asserted by the `parallel_equivalence` property tests. Batched
//!   serving parallelizes at group granularity; nested fan-out is
//!   deliberately avoided.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use fairrec_core as core;
pub use fairrec_data as data;
pub use fairrec_engine as engine;
pub use fairrec_mapreduce as mapreduce;
pub use fairrec_metrics as metrics;
pub use fairrec_ontology as ontology;
pub use fairrec_phr as phr;
pub use fairrec_search as search;
pub use fairrec_similarity as similarity;
pub use fairrec_text as text;
pub use fairrec_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use fairrec_core::{
        algorithm1, brute_force, plain_top_z, Aggregation, CandidatePool, FairnessEvaluator, Group,
        MissingPolicy,
    };
    pub use fairrec_data::{SyntheticConfig, SyntheticDataset};
    pub use fairrec_engine::{
        EngineConfig, ExecutionPath, GroupRecommendation, RecommenderEngine, SelectionAlgorithm,
        SimilarityKind,
    };
    pub use fairrec_ontology::{Ontology, PathScoring};
    pub use fairrec_phr::{Gender, PatientProfile, PhrStore};
    pub use fairrec_similarity::{
        BulkUserSimilarity, PairwiseOnly, PeerIndex, PeerSelector, ProfileSimilarity,
        RatingsSimilarity, SemanticSimilarity, SimScratch, UserSimilarity,
    };
    pub use fairrec_types::{
        FairrecError, GroupId, ItemId, Parallelism, Rating, RatingMatrix, RatingMatrixBuilder,
        Result, ScoredItem, UserId,
    };
}
