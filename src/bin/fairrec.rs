//! `fairrec` — command-line front end for the fairness-aware group
//! recommender.
//!
//! ```text
//! fairrec generate  --out DIR [--users N] [--items N] [--communities N]
//!                   [--ratings N] [--seed S]
//! fairrec stats     --data DIR
//! fairrec recommend --data DIR --group 1,2,3 [--z N] [--k N] [--delta D]
//!                   [--similarity ratings|profile|semantic|hybrid]
//!                   [--algorithm greedy|swaps|exact|plain]
//!                   [--aggregation avg|min] [--mapreduce WORKERS]
//! fairrec search    --data DIR --query "TERMS" [--mode any|all] [--limit N]
//! ```
//!
//! `generate` writes `ontology.tsv`, `ratings.tsv`, `profiles.tsv`, and
//! `documents.tsv` into DIR; the other commands read them back.

use fairrec::data::{documents, tsv, SyntheticConfig, SyntheticDataset};
use fairrec::ontology::codec;
use fairrec::prelude::*;
use fairrec::search::{CurationStatus, DocumentStore, QueryMode, SearchIndex, StoredDocument};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "recommend" => cmd_recommend(rest),
        "search" => cmd_search(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fairrec generate  --out DIR [--users N] [--items N] [--communities N] [--ratings N] [--seed S]
  fairrec stats     --data DIR
  fairrec recommend --data DIR --group 1,2,3 [--z N] [--k N] [--delta D]
                    [--similarity ratings|profile|semantic|hybrid]
                    [--algorithm greedy|swaps|exact|plain] [--aggregation avg|min]
                    [--mapreduce WORKERS]
  fairrec search    --data DIR --query \"TERMS\" [--mode any|all] [--limit N]";

type CliError = Box<dyn std::error::Error>;

/// `--key value` argument bag with typed accessors.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got {key:?}").into());
            };
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Self(map))
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.0
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}").into())
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.0.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("bad value for --{name}: {e}").into()),
        }
    }
}

fn data_paths(dir: &str) -> (PathBuf, PathBuf, PathBuf, PathBuf) {
    let dir = Path::new(dir);
    (
        dir.join("ontology.tsv"),
        dir.join("ratings.tsv"),
        dir.join("profiles.tsv"),
        dir.join("documents.tsv"),
    )
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let out = flags.required("out")?.to_string();
    let config = SyntheticConfig {
        num_users: flags.get("users", 200u32)?,
        num_items: flags.get("items", 400u32)?,
        num_communities: flags.get("communities", 4u32)?,
        ratings_per_user: flags.get("ratings", 30u32)?,
        seed: flags.get("seed", 42u64)?,
        ..Default::default()
    };
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(config, &ontology)?;
    let docs = documents::generate_with_topics(
        documents::CorpusConfig {
            num_documents: config.num_items,
            num_topics: config.num_communities,
            seed: config.seed,
            ..Default::default()
        },
        &(0..config.num_items)
            .map(|i| data.communities.item_community(ItemId::new(i)))
            .collect::<Vec<_>>(),
    );

    std::fs::create_dir_all(&out)?;
    let (ont_p, rat_p, prof_p, doc_p) = data_paths(&out);
    codec::write_ontology(&ontology, &mut BufWriter::new(File::create(&ont_p)?))?;
    tsv::write_ratings(&data.matrix, &mut BufWriter::new(File::create(&rat_p)?))?;
    tsv::write_profiles(
        &data.profiles,
        &ontology,
        &mut BufWriter::new(File::create(&prof_p)?),
    )?;
    tsv::write_documents(&docs, &mut BufWriter::new(File::create(&doc_p)?))?;
    println!(
        "wrote {} users / {} items / {} ratings / {} documents to {out}/",
        config.num_users,
        config.num_items,
        data.matrix.num_ratings(),
        docs.len()
    );
    Ok(())
}

struct LoadedData {
    ontology: Ontology,
    matrix: RatingMatrix,
    profiles: PhrStore,
}

fn load_data(dir: &str) -> Result<LoadedData, CliError> {
    let (ont_p, rat_p, prof_p, _) = data_paths(dir);
    let ontology = codec::read_ontology(BufReader::new(File::open(&ont_p)?))?;
    let matrix = tsv::read_ratings(BufReader::new(File::open(&rat_p)?), None)?;
    let profiles = tsv::read_profiles(BufReader::new(File::open(&prof_p)?), &ontology)?;
    Ok(LoadedData {
        ontology,
        matrix,
        profiles,
    })
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let data = load_data(flags.required("data")?)?;
    let s = data.matrix.stats();
    println!(
        "ontology : {} concepts, max depth {}",
        data.ontology.len(),
        data.ontology.max_depth()
    );
    println!(
        "users    : {} ({} with ratings, {} with profiles)",
        s.num_users,
        s.users_with_ratings,
        data.profiles.len()
    );
    println!(
        "items    : {} ({} with ratings)",
        s.num_items, s.items_with_ratings
    );
    println!(
        "ratings  : {} (density {:.2}%, mean {:.2})",
        s.num_ratings,
        s.density * 100.0,
        s.mean_rating
    );
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let data = load_data(flags.required("data")?)?;
    let members: Vec<UserId> = flags
        .required("group")?
        .split(',')
        .map(|raw| raw.trim().parse::<u32>().map(UserId::new))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad --group: {e}"))?;
    let z: usize = flags.get("z", 8usize)?;

    let similarity = match flags.get("similarity", "ratings".to_string())?.as_str() {
        "ratings" => SimilarityKind::Ratings,
        "profile" => SimilarityKind::Profile,
        "semantic" => SimilarityKind::Semantic,
        "hybrid" => SimilarityKind::Hybrid {
            ratings: 1.0,
            profile: 1.0,
            semantic: 1.0,
        },
        other => return Err(format!("unknown similarity {other:?}").into()),
    };
    let algorithm = match flags.get("algorithm", "greedy".to_string())?.as_str() {
        "greedy" => SelectionAlgorithm::Greedy,
        "swaps" => SelectionAlgorithm::GreedyWithSwaps { max_passes: 10 },
        "exact" => SelectionAlgorithm::Exact,
        "plain" => SelectionAlgorithm::PlainTopZ,
        other => return Err(format!("unknown algorithm {other:?}").into()),
    };
    let aggregation = match flags.get("aggregation", "avg".to_string())?.as_str() {
        "avg" => Aggregation::Average,
        "min" => Aggregation::Min,
        other => return Err(format!("unknown aggregation {other:?}").into()),
    };
    let execution = match flags.0.get("mapreduce") {
        Some(raw) => ExecutionPath::MapReduce(fairrec::mapreduce::JobConfig::with_workers(
            raw.parse().map_err(|e| format!("bad --mapreduce: {e}"))?,
        )),
        None => ExecutionPath::InMemory,
    };

    let engine = RecommenderEngine::new(
        data.matrix,
        data.profiles,
        data.ontology,
        EngineConfig {
            similarity,
            algorithm,
            aggregation,
            execution,
            delta: flags.get("delta", 0.0f64)?,
            k: flags.get("k", 10usize)?,
            ..Default::default()
        },
    )?;
    let group = Group::new(GroupId::new(0), members)?;
    let rec = engine.recommend_for_group(&group, z)?;

    println!(
        "package for {:?} (fairness {:.2}, value {:.2}, pool m = {}):",
        group.members(),
        rec.fairness,
        rec.value,
        rec.pool_size
    );
    for item in &rec.items {
        println!(
            "  {:<6} groupRel {:.2}{}",
            item.item.to_string(),
            item.group_relevance,
            if item.padded { "  (padded)" } else { "" }
        );
    }
    for m in &rec.members {
        println!(
            "  {}: {}",
            m.user,
            if m.satisfied {
                "satisfied"
            } else {
                "NOT satisfied"
            }
        );
    }
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let (_, _, _, doc_p) = data_paths(flags.required("data")?);
    let docs = tsv::read_documents(BufReader::new(File::open(&doc_p)?))?;
    let store: DocumentStore = docs
        .into_iter()
        .map(|d| StoredDocument {
            item: d.item,
            title: d.title,
            body: d.body,
            status: CurationStatus::Approved,
        })
        .collect();
    let index = SearchIndex::build(&store);
    let mode = match flags.get("mode", "any".to_string())?.as_str() {
        "any" => QueryMode::Any,
        "all" => QueryMode::All,
        other => return Err(format!("unknown mode {other:?}").into()),
    };
    let limit: usize = flags.get("limit", 10usize)?;
    let query = flags.required("query")?;
    let hits = index.search(query, mode, limit);
    if hits.is_empty() {
        println!("no results for {query:?}");
        return Ok(());
    }
    for hit in hits {
        let doc = store.get(hit.item).expect("hit comes from the index");
        println!(
            "{:>7.3}  {:<6} {}",
            hit.score,
            doc.item.to_string(),
            doc.title
        );
    }
    Ok(())
}
