//! Minimal, API-compatible stand-in for the subset of `rayon` this
//! workspace uses: `par_iter()` / `into_par_iter()` with `map` +
//! `collect` / `for_each`, `join`, and `ThreadPoolBuilder::install` for
//! pinning a thread count.
//!
//! The build environment cannot fetch crates.io, so the real rayon is
//! unavailable; this shim provides the same call-site syntax over a
//! **persistent worker pool**. Earlier revisions spawned scoped threads
//! per operation (~0.5 ms per spawn in the sandbox), which dominated
//! small batched requests; workers now live for the lifetime of their
//! pool and accept work through an injector queue.
//!
//! ## Architecture
//!
//! * **Pools.** A [`ThreadPool`] owns a `PoolCore`: `num_threads`
//!   worker threads plus an injector (a mutex-guarded queue of batch
//!   handles with a condvar for wakeups). A process-wide **global pool**
//!   sized to the machine's available parallelism starts lazily on first
//!   unpinned parallel call and lives forever; pinned pools built via
//!   [`ThreadPoolBuilder`] shut their workers down on drop.
//! * **Pool membership.** Every worker records its owning pool in a
//!   thread-local at startup, and [`ThreadPool::install`] sets the same
//!   thread-local on the calling thread for the closure's duration.
//!   Parallel operations submit to the *current* pool — so a nested
//!   `par_iter` inside a worker-executed task runs on the owning pool at
//!   the owning pool's width. (The previous spawn-per-scope executor
//!   kept the pin in a thread-local that did **not** propagate into its
//!   spawned workers, so nested calls inside `install` silently escaped
//!   to machine parallelism.)
//! * **Batches.** Each parallel operation packages its chunks as one
//!   batch: a claim queue of lifetime-erased jobs plus a completion
//!   latch. The submitting thread pushes the batch, then *helps drain
//!   it* — it claims and runs jobs alongside the workers and only blocks
//!   once every job has been claimed. Because the submitter can always
//!   finish the whole batch by itself, nested submission can never
//!   deadlock, with or without free workers. The submitter does not
//!   return until every claimed job has completed, which is what makes
//!   handing stack-borrowing closures to long-lived workers sound.
//! * **Panics.** Jobs run under `catch_unwind`; the first payload is
//!   stashed in the batch and re-thrown on the submitting thread after
//!   the whole batch completes (workers survive user panics).
//!
//! There is no work stealing between batches — workloads here are
//! item-uniform, where static chunking is within noise of a stealing
//! scheduler. Order is always preserved: `collect` returns results in
//! input order, which is what lets the fairrec property tests assert
//! bitwise equality between the parallel and sequential prediction
//! paths.
//!
//! Swapping this shim for the real crate is a one-line change in the
//! workspace manifest; every `use rayon::prelude::*` call site stays as
//! it is.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Everything a call site needs for `par_iter().map().collect()`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

// ---------------------------------------------------------------------------
// Worker pool core
// ---------------------------------------------------------------------------

/// A job whose borrows have been erased to `'static`. Soundness rests on
/// the batch protocol: the submitter blocks until every job has run, so
/// no job (or its captured borrows) outlives the frame that created it.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One parallel operation's unit of scheduling: a claim queue of jobs
/// plus a completion latch. Workers and the submitting thread race to
/// claim jobs; the batch is done when `completed == total`.
struct Batch {
    /// Unclaimed jobs. Claiming pops from the front, so the submitting
    /// thread (which claims first) starts with the first chunk.
    jobs: Mutex<VecDeque<Job>>,
    /// Completion latch: jobs run to completion, first panic payload.
    done: Mutex<BatchDone>,
    finished: Condvar,
    total: usize,
}

struct BatchDone {
    completed: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Batch {
    fn new(jobs: VecDeque<Job>) -> Self {
        let total = jobs.len();
        Self {
            jobs: Mutex::new(jobs),
            done: Mutex::new(BatchDone {
                completed: 0,
                panic: None,
            }),
            finished: Condvar::new(),
            total,
        }
    }

    /// Claims and runs one job, if any remain unclaimed. Returns whether
    /// a job was run.
    fn run_one(&self) -> bool {
        let Some(job) = self.jobs.lock().expect("batch queue poisoned").pop_front() else {
            return false;
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let mut done = self.done.lock().expect("batch latch poisoned");
        done.completed += 1;
        if let Err(payload) = outcome {
            done.panic.get_or_insert(payload);
        }
        if done.completed == self.total {
            self.finished.notify_all();
        }
        true
    }

    /// Blocks until every job has completed, then re-throws the first
    /// captured panic, if any.
    fn wait(&self) {
        let mut done = self.done.lock().expect("batch latch poisoned");
        while done.completed < self.total {
            done = self.finished.wait(done).expect("batch latch poisoned");
        }
        if let Some(payload) = done.panic.take() {
            drop(done);
            resume_unwind(payload);
        }
    }
}

/// Shared state of one pool: the injector queue its workers drain.
struct PoolCore {
    injector: Mutex<Injector>,
    /// Signalled on new work and on shutdown.
    available: Condvar,
    num_threads: usize,
}

struct Injector {
    /// Pending claim tickets. Submitters push one ticket per job; a
    /// worker popping a ticket claims at most one job from that batch
    /// (already-drained batches make the pop a no-op).
    queue: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

impl PoolCore {
    /// Worker body: drain claim tickets until shutdown.
    fn worker_loop(self: &Arc<Self>) {
        // Membership: nested parallel calls inside jobs executed here
        // submit back to this pool at this pool's width — the pin
        // propagation `install` alone could not provide.
        CURRENT_POOL.with(|c| *c.borrow_mut() = Some(Arc::clone(self)));
        loop {
            let ticket = {
                let mut injector = self.injector.lock().expect("injector poisoned");
                loop {
                    if let Some(batch) = injector.queue.pop_front() {
                        break Some(batch);
                    }
                    if injector.shutdown {
                        break None;
                    }
                    injector = self.available.wait(injector).expect("injector poisoned");
                }
            };
            match ticket {
                Some(batch) => {
                    batch.run_one();
                }
                None => return,
            }
        }
    }

    /// Runs `jobs` to completion on this pool: enqueues one claim ticket
    /// per job, helps drain the batch from the calling thread, and blocks
    /// until every job has finished (re-throwing the first panic).
    ///
    /// # Safety
    /// Erases the jobs' borrows to `'static`. Sound because this function
    /// does not return until every job has been consumed and run — the
    /// claim queue is empty and `completed == total` — so no borrow is
    /// used or dropped after its frame unwinds.
    fn run_batch(self: &Arc<Self>, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        if jobs.is_empty() {
            return;
        }
        let erased: VecDeque<Job> = jobs
            .into_iter()
            .map(|job| unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) })
            .collect();
        let batch = Arc::new(Batch::new(erased));
        {
            let mut injector = self.injector.lock().expect("injector poisoned");
            for _ in 0..batch.total {
                injector.queue.push_back(Arc::clone(&batch));
            }
        }
        self.available.notify_all();
        // Help: claim jobs alongside the workers. The loop only ends when
        // the claim queue is empty, so the batch completes even with zero
        // free workers — nested submission cannot deadlock.
        while batch.run_one() {}
        batch.wait();
    }
}

/// Submits one fire-and-forget job to `core` and returns immediately: a
/// single-job batch nobody waits on. Jobs must own their captures
/// (`'static`) precisely because no frame blocks on completion. Pending
/// spawns still drain on pool drop — workers exhaust the injector queue
/// before honouring shutdown.
fn spawn_on(core: &Arc<PoolCore>, job: Job) {
    let batch = Arc::new(Batch::new(VecDeque::from([job])));
    {
        let mut injector = core.injector.lock().expect("injector poisoned");
        injector.queue.push_back(batch);
    }
    core.available.notify_one();
}

/// Submits a fire-and-forget job to the current pool (mirror of
/// `rayon::spawn`). The job runs on a pool worker at some later point;
/// panics inside it are caught and discarded, as in rayon's default
/// handler, and the submitting thread never blocks.
pub fn spawn(job: impl FnOnce() + Send + 'static) {
    spawn_on(&current_pool(), Box::new(job));
}

/// Spawns `num_threads` workers draining `core`'s injector. Handles are
/// returned so pinned pools can join on shutdown; the global pool leaks
/// them.
fn spawn_workers(core: &Arc<PoolCore>, num_threads: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..num_threads)
        .map(|i| {
            let core = Arc::clone(core);
            std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{i}"))
                .spawn(move || core.worker_loop())
                .expect("failed to spawn pool worker")
        })
        .collect()
}

fn new_pool_core(num_threads: usize) -> Arc<PoolCore> {
    Arc::new(PoolCore {
        injector: Mutex::new(Injector {
            queue: VecDeque::new(),
            shutdown: false,
        }),
        available: Condvar::new(),
        num_threads,
    })
}

thread_local! {
    /// The pool this thread belongs to: set permanently on workers, and
    /// temporarily on callers inside [`ThreadPool::install`]. `None`
    /// means "use the global pool".
    static CURRENT_POOL: RefCell<Option<Arc<PoolCore>>> = const { RefCell::new(None) };
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The lazily-started process-wide pool serving unpinned parallel calls,
/// sized to the machine's available parallelism. Never shut down.
fn global_pool() -> &'static Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let core = new_pool_core(machine_parallelism());
        drop(spawn_workers(&core, core.num_threads));
        core
    })
}

/// The pool parallel operations on this thread submit to: the current
/// membership (worker pool or installed pool), else the global pool.
fn current_pool() -> Arc<PoolCore> {
    CURRENT_POOL
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global_pool()))
}

/// The number of threads parallel operations will use on this thread:
/// the current pool's size (installed or inherited via worker
/// membership), or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    CURRENT_POOL
        .with(|c| c.borrow().as_ref().map(|p| p.num_threads))
        .unwrap_or_else(machine_parallelism)
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    if pool.num_threads <= 1 {
        return (a(), b());
    }
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    // Two jobs; the submitter claims front-first, so it starts `a` while
    // a worker (if free) picks up `b` — otherwise it runs both itself.
    pool.run_batch(vec![
        Box::new(|| *ra.lock().expect("join slot poisoned") = Some(a())),
        Box::new(|| *rb.lock().expect("join slot poisoned") = Some(b())),
    ]);
    (
        ra.into_inner()
            .expect("join slot poisoned")
            .expect("join closure completed"),
        rb.into_inner()
            .expect("join slot poisoned")
            .expect("join closure completed"),
    )
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type mirroring `rayon::ThreadPoolBuildError`; the shim never
/// actually fails to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the pool to `n` threads (0 means "available parallelism").
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Builds the pool, spawning its workers.
    ///
    /// # Errors
    /// Never fails in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = self.num_threads.unwrap_or_else(machine_parallelism);
        let core = new_pool_core(num_threads);
        let workers = spawn_workers(&core, num_threads);
        Ok(ThreadPool { core, workers })
    }
}

/// A pool of persistent worker threads. Parallel operations inside
/// [`install`](Self::install) — including nested ones inside jobs the
/// workers execute — run on this pool at this pool's width. Dropping the
/// pool shuts the workers down (after in-flight batches drain).
pub struct ThreadPool {
    core: Arc<PoolCore>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.core.num_threads)
            .finish()
    }
}

impl ThreadPool {
    /// Number of threads parallel operations will use inside
    /// [`install`](Self::install).
    pub fn current_num_threads(&self) -> usize {
        self.core.num_threads
    }

    /// Submits a fire-and-forget job to this pool (mirror of
    /// `rayon::ThreadPool::spawn`): the call returns immediately and the
    /// job runs on one of this pool's workers.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        spawn_on(&self.core, Box::new(job));
    }

    /// Runs `f` with this pool as the calling thread's current pool:
    /// parallel operations inside `f` submit here and report this pool's
    /// thread count.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = CURRENT_POOL.with(|c| c.replace(Some(Arc::clone(&self.core))));
        struct Restore(Option<Arc<PoolCore>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_POOL.with(|c| *c.borrow_mut() = self.0.take());
            }
        }
        let _restore = Restore(previous);
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut injector = self.core.injector.lock().expect("injector poisoned");
            injector.shutdown = true;
        }
        self.core.available.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a job (a shim bug) is not
            // worth propagating out of drop; user-job panics were caught.
            let _ = worker.join();
        }
    }
}

/// Runs `f` over `items` on the current pool, preserving input order in
/// the output: items are split into one contiguous chunk per thread and
/// the chunk results are concatenated in chunk order.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let pool = current_pool();
    let threads = pool.num_threads.min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let slots: Vec<Mutex<Option<Vec<R>>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    let f = &f;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .into_iter()
        .zip(&slots)
        .map(|(chunk, slot)| {
            Box::new(move || {
                let out: Vec<R> = chunk.into_iter().map(f).collect();
                *slot.lock().expect("chunk slot poisoned") = Some(out);
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run_batch(jobs);
    slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .expect("chunk slot poisoned")
                .expect("chunk completed")
        })
        .collect()
}

/// Conversion into a parallel iterator (mirror of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` over borrowed collections (mirror of rayon's trait).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
    T: Send,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// An eager parallel iterator: items are materialised, adaptors run the
/// whole chain on the worker-pool executor.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, f);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; terminal operations execute it.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        parallel_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Umbrella trait so `use rayon::prelude::*` call sites can treat the
/// adaptors uniformly (rayon's real trait; reduced to a marker here).
pub trait ParallelIterator {}
impl<T: Send> ParallelIterator for ParIter<T> {}
impl<T: Send, F> ParallelIterator for ParMap<T, F> {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::thread::ThreadId;

    #[test]
    fn map_collect_preserves_order() {
        let got: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let want: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4, 5];
        let got: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(got, vec![2, 3, 4, 5, 6]);
        // data still usable
        assert_eq!(data.len(), 5);
    }

    #[test]
    fn collect_into_result_short_circuits_types() {
        let got: Result<Vec<u32>, String> = vec![1u32, 2, 3].into_par_iter().map(Ok).collect();
        assert_eq!(got, Ok(vec![1, 2, 3]));
        let bad: Result<Vec<u32>, String> = vec![1u32, 2, 3]
            .into_par_iter()
            .map(|x| {
                if x == 2 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(bad, Err("boom".to_string()));
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        single.install(|| assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn install_restores_on_exit() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| ());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn for_each_visits_everything() {
        let count = AtomicUsize::new(0);
        (0u32..257).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seq: Vec<f64> = pool.install(|| {
            (0u32..100)
                .into_par_iter()
                .map(|x| f64::from(x).sqrt())
                .collect()
        });
        let par: Vec<f64> = (0u32..100)
            .into_par_iter()
            .map(|x| f64::from(x).sqrt())
            .collect();
        assert_eq!(seq, par, "bitwise identical regardless of thread count");
    }

    /// The fix the rewrite exists for: a chunk executed *on a pool
    /// worker* must still see the pool's thread count. A barrier across
    /// as many items as the pool has threads forces the chunks onto
    /// distinct threads (at most one of them the caller), so at least
    /// `n - 1` observations genuinely come from workers.
    #[test]
    fn install_pin_propagates_into_pool_workers() {
        let n = 3;
        let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
        let barrier = Barrier::new(n);
        let observed: Vec<(ThreadId, usize)> = pool.install(|| {
            (0..n)
                .into_par_iter()
                .map(|_| {
                    barrier.wait();
                    (std::thread::current().id(), current_num_threads())
                })
                .collect()
        });
        let distinct: HashSet<ThreadId> = observed.iter().map(|&(id, _)| id).collect();
        assert_eq!(distinct.len(), n, "chunks ran on {n} distinct threads");
        for &(_, seen) in &observed {
            assert_eq!(seen, n, "worker-executed chunks must see the pin");
        }
    }

    /// Nested parallel calls inside worker-executed jobs stay on the
    /// owning pool: a 1-thread pool keeps *everything* — outer map and
    /// nested inner map — on the calling thread.
    #[test]
    fn nested_calls_stay_on_a_single_thread_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let observed: Vec<(ThreadId, Vec<ThreadId>)> = pool.install(|| {
            (0u32..4)
                .into_par_iter()
                .map(|_| {
                    let inner: Vec<ThreadId> = (0u32..4)
                        .into_par_iter()
                        .map(|_| std::thread::current().id())
                        .collect();
                    (std::thread::current().id(), inner)
                })
                .collect()
        });
        for (outer_id, inner_ids) in observed {
            assert_eq!(outer_id, caller, "outer chunk escaped the 1-pool");
            for id in inner_ids {
                assert_eq!(id, caller, "nested chunk escaped the 1-pool");
            }
        }
    }

    /// Workers persist across calls: many successive maps on one pool
    /// touch at most `num_threads` distinct non-caller threads, where a
    /// spawn-per-call executor would mint fresh ones every call.
    #[test]
    fn workers_persist_across_calls() {
        let n = 2;
        let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
        let caller = std::thread::current().id();
        let mut worker_ids: HashSet<ThreadId> = HashSet::new();
        for _ in 0..20 {
            let ids: Vec<ThreadId> = pool.install(|| {
                (0u32..64)
                    .into_par_iter()
                    .map(|_| std::thread::current().id())
                    .collect()
            });
            worker_ids.extend(ids.into_iter().filter(|&id| id != caller));
        }
        assert!(
            worker_ids.len() <= n,
            "expected at most {n} persistent workers, saw {}",
            worker_ids.len()
        );
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| -> Vec<u32> {
                (0u32..8)
                    .into_par_iter()
                    .map(|x| {
                        assert!(x != 5, "boom at {x}");
                        x
                    })
                    .collect()
            })
        }));
        assert!(result.is_err(), "the chunk panic must reach the caller");
        // The pool survives user panics and keeps serving.
        let after: Vec<u32> = pool.install(|| (0u32..8).into_par_iter().map(|x| x).collect());
        assert_eq!(after, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn join_inside_install_uses_the_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(current_num_threads, current_num_threads));
        assert_eq!(a, 2);
        assert_eq!(b, 2);
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let caller = std::thread::current().id();
        let ran_on = Arc::new(Mutex::new(None));
        for _ in 0..8 {
            let pair = Arc::clone(&pair);
            let ran_on = Arc::clone(&ran_on);
            pool.spawn(move || {
                ran_on
                    .lock()
                    .unwrap()
                    .get_or_insert(std::thread::current().id());
                let (count, cv) = &*pair;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*pair;
        let mut done = count.lock().unwrap();
        while *done < 8 {
            done = cv.wait(done).unwrap();
        }
        drop(done);
        assert_ne!(
            ran_on.lock().unwrap().expect("a job ran"),
            caller,
            "detached jobs run on pool workers, not the submitter"
        );
    }

    #[test]
    fn pending_spawns_drain_before_pool_shutdown() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let count = Arc::clone(&count);
            pool.spawn(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop waits for workers, which exhaust the queue before exiting.
        drop(pool);
        assert_eq!(count.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn free_spawn_uses_the_global_pool() {
        let count = Arc::new(AtomicUsize::new(0));
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let count = Arc::clone(&count);
            let pair = Arc::clone(&pair);
            spawn(move || {
                count.fetch_add(1, Ordering::SeqCst);
                *pair.0.lock().unwrap() = true;
                pair.1.notify_all();
            });
        }
        let mut done = pair.0.lock().unwrap();
        while !*done {
            done = pair.1.wait(done).unwrap();
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropping_a_pool_shuts_workers_down() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let collected: Vec<u64> = pool.install(|| (0u64..100).into_par_iter().map(|x| x).collect());
        let sum: u64 = collected.into_iter().sum();
        assert_eq!(sum, 4950);
        drop(pool); // must not hang
    }
}
