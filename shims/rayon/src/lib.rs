//! Minimal, API-compatible stand-in for the subset of `rayon` this
//! workspace uses: `par_iter()` / `into_par_iter()` with `map` +
//! `collect` / `for_each`, `join`, and `ThreadPoolBuilder::install` for
//! pinning a thread count.
//!
//! The build environment cannot fetch crates.io, so the real rayon is
//! unavailable; this shim provides the same call-site syntax over
//! `std::thread::scope` with contiguous chunking. There is no work
//! stealing — workloads here are item-uniform, where static chunking is
//! within noise of a stealing scheduler. Order is always preserved:
//! `collect` returns results in input order, which is what lets the
//! fairrec property tests assert bitwise equality between the parallel
//! and sequential prediction paths.
//!
//! Swapping this shim for the real crate is a one-line change in the
//! workspace manifest; every `use rayon::prelude::*` call site stays as
//! it is.

use std::cell::Cell;
use std::num::NonZeroUsize;

/// Everything a call site needs for `par_iter().map().collect()`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`];
    /// `None` means "use the machine's available parallelism".
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations will use on this thread:
/// the installed pool size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type mirroring `rayon::ThreadPoolBuildError`; the shim never
/// actually fails to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the pool to `n` threads (0 means "available parallelism").
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        })
    }
}

/// A "pool" that pins the thread count for the duration of
/// [`install`](Self::install). The shim spawns scoped threads per
/// operation instead of keeping workers alive.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Number of threads parallel operations will use inside
    /// [`install`](Self::install).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread count installed.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|t| t.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(previous);
        f()
    }
}

/// Runs `f` over `items` on up to [`current_num_threads`] threads,
/// preserving input order in the output.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, one per thread; results concatenated in chunk
    // order so the output order equals the input order.
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
        out
    })
}

/// Conversion into a parallel iterator (mirror of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` over borrowed collections (mirror of rayon's trait).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
    T: Send,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// An eager parallel iterator: items are materialised, adaptors run the
/// whole chain on the scoped-thread executor.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, f);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; terminal operations execute it.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        parallel_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Umbrella trait so `use rayon::prelude::*` call sites can treat the
/// adaptors uniformly (rayon's real trait; reduced to a marker here).
pub trait ParallelIterator {}
impl<T: Send> ParallelIterator for ParIter<T> {}
impl<T: Send, F> ParallelIterator for ParMap<T, F> {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let got: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let want: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4, 5];
        let got: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(got, vec![2, 3, 4, 5, 6]);
        // data still usable
        assert_eq!(data.len(), 5);
    }

    #[test]
    fn collect_into_result_short_circuits_types() {
        let got: Result<Vec<u32>, String> = vec![1u32, 2, 3].into_par_iter().map(Ok).collect();
        assert_eq!(got, Ok(vec![1, 2, 3]));
        let bad: Result<Vec<u32>, String> = vec![1u32, 2, 3]
            .into_par_iter()
            .map(|x| {
                if x == 2 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(bad, Err("boom".to_string()));
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        single.install(|| assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn install_restores_on_exit() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| ());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0u32..257).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seq: Vec<f64> = pool.install(|| {
            (0u32..100)
                .into_par_iter()
                .map(|x| f64::from(x).sqrt())
                .collect()
        });
        let par: Vec<f64> = (0u32..100)
            .into_par_iter()
            .map(|x| f64::from(x).sqrt())
            .collect();
        assert_eq!(seq, par, "bitwise identical regardless of thread count");
    }
}
