//! Minimal stand-in for the `crossbeam::channel` MPMC channel used by the
//! MapReduce engine. Implemented over `Mutex<VecDeque>` + `Condvar`; the
//! engine only needs correct multi-consumer semantics and disconnect
//! detection, not crossbeam's lock-free throughput.

/// Multi-producer multi-consumer channels (mirror of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloning adds a consumer (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without a `T: Debug` bound, so channels
    // of non-Debug payloads still allow `.expect(...)`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait lapsed with the channel still empty (senders alive).
        Timeout,
        /// The channel is empty and every sender has dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value; fails only when every receiver has dropped.
        ///
        /// # Errors
        /// [`SendError`] carrying the value back when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                // Wake all blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender has dropped.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Blocks until a value arrives, every sender drops, or `timeout`
        /// lapses — the wait the MapReduce retry driver uses to multiplex
        /// task results with backoff/straggler deadlines.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] when the wait lapsed first,
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty
        /// and every sender has dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(inner, left)
                    .expect("channel poisoned");
                inner = guard;
            }
        }

        /// Non-blocking receive: `None` when currently empty (regardless of
        /// sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_a_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = unbounded();
            let n = 1000;
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen: Vec<i32> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("consumer panicked"))
                    .collect()
            });
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(3));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                let h = scope.spawn(move || rx.recv().unwrap());
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(99u8).unwrap();
                assert_eq!(h.join().expect("receiver panicked"), 99);
            });
        }
    }
}
