//! Minimal stand-ins for the `crossbeam` primitives the workspace uses.
//!
//! - [`channel`]: the MPMC channel driving the MapReduce engine, over
//!   `Mutex<VecDeque>` + `Condvar` — correct multi-consumer semantics and
//!   disconnect detection, not crossbeam's lock-free throughput.
//! - [`epoch`]: epoch-based memory reclamation (pin / defer / collect) for
//!   the lock-free peer-publication path. Unlike `crossbeam-epoch` this is
//!   a compact registry-scan design: reclamation is amortised over
//!   [`epoch::Guard::defer`] calls and [`epoch::collect`], and safety comes
//!   from the *two-epoch margin* rule (a deferred destructor runs only once
//!   its retirement epoch is at least two behind the reclamation bound, so
//!   every pin that could have observed the unlinked value has ended —
//!   including pins the collection scan raced past).
//! - [`atomic`]: [`atomic::ArcCell`], a versioned atomic `Option<Arc<T>>`
//!   slot built on [`epoch`] — wait-free snapshot loads plus versioned
//!   compare-and-swap publication (the arc-swap shape `PeerIndex` slots
//!   need).

/// Serializes tests whose assertions depend on reclamation timing: the
/// epoch registry is process-global, so a concurrently running test that
/// pins or collects can otherwise advance/stall the epoch mid-assertion.
#[cfg(test)]
pub(crate) fn epoch_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Multi-producer multi-consumer channels (mirror of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloning adds a consumer (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without a `T: Debug` bound, so channels
    // of non-Debug payloads still allow `.expect(...)`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait lapsed with the channel still empty (senders alive).
        Timeout,
        /// The channel is empty and every sender has dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value; fails only when every receiver has dropped.
        ///
        /// # Errors
        /// [`SendError`] carrying the value back when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                // Wake all blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender has dropped.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Blocks until a value arrives, every sender drops, or `timeout`
        /// lapses — the wait the MapReduce retry driver uses to multiplex
        /// task results with backoff/straggler deadlines.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] when the wait lapsed first,
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty
        /// and every sender has dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(inner, left)
                    .expect("channel poisoned");
                inner = guard;
            }
        }

        /// Non-blocking receive: `None` when currently empty (regardless of
        /// sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_a_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = unbounded();
            let n = 1000;
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen: Vec<i32> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("consumer panicked"))
                    .collect()
            });
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(3));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                let h = scope.spawn(move || rx.recv().unwrap());
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(99u8).unwrap();
                assert_eq!(h.join().expect("receiver panicked"), 99);
            });
        }
    }
}

/// Epoch-based memory reclamation (mirror of `crossbeam::epoch`, reduced to
/// what the peer-publication path needs).
///
/// # Protocol
///
/// Readers [`pin`](epoch::pin) before dereferencing shared pointers and
/// hold the returned [`Guard`](epoch::Guard) across the access. Writers
/// unlink a value with an atomic swap and hand its destructor to
/// [`Guard::defer`](epoch::Guard::defer); the destructor
/// runs only after every pin that could still observe the unlinked value
/// has ended.
///
/// # Safety argument
///
/// Every operation on participant state, the global epoch, and shared
/// pointers uses `SeqCst`, so all of them fall in one total order. A pin
/// announces `pinned@e` for the loaded global epoch `e`, then re-reads the
/// global epoch and re-announces until the two agree (the `crossbeam-epoch`
/// validation loop); only after that does the reader load shared pointers.
/// A deferred destructor is tagged with the global epoch at defer time.
///
/// [`collect`](epoch::collect) computes a reclamation bound `safe` — the
/// minimum epoch announced by any participant pinned at scan time, or the
/// (possibly just-advanced) global epoch when none is — and frees a
/// deferred item only when its tag is **at least two epochs behind**
/// (`tag + 1 < safe`). The margin is what makes the registry scan sound
/// against pins it races past: a reader whose announcement lands *after*
/// the scan is invisible to this pass, but its announcement follows the
/// pass's load of the global epoch `cur` in the total order, so every
/// pointer it can still hold was unlinked after that (`tag >= cur`), while
/// the pass advances the epoch once at most (`safe <= cur + 1`) — hence
/// `tag + 1 >= safe` and the item survives. Once the announcement is
/// visible every later scan counts it, `safe` stays at or below the
/// reader's epoch, and nothing it can observe reclaims.
///
/// The global epoch only advances ([`collect`](epoch::collect)) when
/// every pinned
/// participant has announced the current epoch, so the minimum lags the
/// global epoch by at most one step and reclamation cannot starve while
/// guards keep being dropped; the pin-time re-validation keeps
/// announcements fresh so the extra margin costs one collection pass, not
/// a stalled backlog.
pub mod epoch {
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Deferred destructor retired under some epoch.
    type Deferred = Box<dyn FnOnce() + Send>;

    /// Run a collection pass once the backlog crosses this many items.
    const COLLECT_THRESHOLD: usize = 64;

    /// Per-thread announcement word: `epoch << 1 | pinned`.
    struct Participant {
        state: AtomicU64,
    }

    struct Global {
        epoch: AtomicU64,
        participants: Mutex<Vec<Arc<Participant>>>,
        garbage: Mutex<VecDeque<(u64, Deferred)>>,
    }

    fn global() -> &'static Global {
        static GLOBAL: OnceLock<Global> = OnceLock::new();
        GLOBAL.get_or_init(|| Global {
            epoch: AtomicU64::new(1),
            participants: Mutex::new(Vec::new()),
            garbage: Mutex::new(VecDeque::new()),
        })
    }

    /// Thread-local registration; deregisters on thread exit.
    struct Local {
        participant: Arc<Participant>,
        pin_depth: usize,
    }

    impl Drop for Local {
        fn drop(&mut self) {
            let mut parts = global().participants.lock().expect("epoch poisoned");
            parts.retain(|p| !Arc::ptr_eq(p, &self.participant));
        }
    }

    thread_local! {
        static LOCAL: RefCell<Local> = RefCell::new({
            let participant = Arc::new(Participant {
                state: AtomicU64::new(0),
            });
            global()
                .participants
                .lock()
                .expect("epoch poisoned")
                .push(Arc::clone(&participant));
            Local { participant, pin_depth: 0 }
        });
    }

    /// Keeps the current thread pinned; dropping it unpins. `!Send`: a
    /// guard must unpin the thread that pinned.
    pub struct Guard {
        _not_send: PhantomData<*mut ()>,
    }

    /// Pins the current thread: until the returned [`Guard`] drops, no
    /// value unlinked **after** this call will be reclaimed. Reentrant;
    /// nested pins share the outermost announcement.
    pub fn pin() -> Guard {
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            if local.pin_depth == 0 {
                // Announce-then-revalidate: re-read the global epoch
                // after publishing the announcement and re-announce
                // until both agree, so a pin never sits at an epoch
                // that was already stale when its announcement became
                // visible (which would stall reclamation for as long
                // as the guard lives).
                let g = global();
                let mut e = g.epoch.load(SeqCst);
                loop {
                    local.participant.state.store((e << 1) | 1, SeqCst);
                    let now = g.epoch.load(SeqCst);
                    if now == e {
                        break;
                    }
                    e = now;
                }
            }
            local.pin_depth += 1;
        });
        Guard {
            _not_send: PhantomData,
        }
    }

    impl Guard {
        /// Schedules `f` (typically a destructor for a value just
        /// unlinked) to run once every pin active at unlink time has
        /// ended. Amortises a [`collect`] pass when the backlog grows.
        pub fn defer(&self, f: impl FnOnce() + Send + 'static) {
            let g = global();
            let e = g.epoch.load(SeqCst);
            let backlog = {
                let mut garbage = g.garbage.lock().expect("epoch poisoned");
                garbage.push_back((e, Box::new(f)));
                garbage.len()
            };
            if backlog >= COLLECT_THRESHOLD {
                collect();
            }
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            // `try_with`: guards owned by TLS destructors of other keys may
            // drop after LOCAL itself; the participant is deregistered then,
            // so there is nothing left to unpin.
            let _ = LOCAL.try_with(|local| {
                let mut local = local.borrow_mut();
                local.pin_depth -= 1;
                if local.pin_depth == 0 {
                    let state = local.participant.state.load(SeqCst);
                    local.participant.state.store(state & !1, SeqCst);
                }
            });
        }
    }

    /// Tries to advance the global epoch and frees every deferred item
    /// retired at least two epochs behind the reclamation bound (the
    /// minimum pinned epoch, or the global epoch when nobody is pinned).
    /// Safe to call from any thread, pinned or not; destructors run
    /// outside all internal locks.
    pub fn collect() {
        let g = global();
        let cur = g.epoch.load(SeqCst);
        let mut min_pinned: Option<u64> = None;
        {
            let parts = g.participants.lock().expect("epoch poisoned");
            for p in parts.iter() {
                let s = p.state.load(SeqCst);
                if s & 1 == 1 {
                    let e = s >> 1;
                    min_pinned = Some(min_pinned.map_or(e, |m| m.min(e)));
                }
            }
        }
        if min_pinned.is_none_or(|m| m >= cur) {
            // Every pinned participant has caught up with the current
            // epoch; advancing lets their deferred garbage age out.
            let _ = g.epoch.compare_exchange(cur, cur + 1, SeqCst, SeqCst);
        }
        let safe = min_pinned.unwrap_or_else(|| g.epoch.load(SeqCst));
        let ready: Vec<Deferred> = {
            let mut garbage = g.garbage.lock().expect("epoch poisoned");
            let drained = std::mem::take(&mut *garbage);
            let mut ready = Vec::new();
            for (e, f) in drained {
                // Two-epoch safety margin, NOT `e < safe`: a reader that
                // pinned after the participant scan above is invisible
                // to this pass, but its announcement postdates this
                // pass's `cur` load, so anything it can still hold was
                // retired at tag >= cur while this pass advances `safe`
                // to at most cur + 1. Freeing only two-behind keeps that
                // raced-past pin's pointers alive (see the module-level
                // safety argument).
                if e + 1 < safe {
                    ready.push(f);
                } else {
                    garbage.push_back((e, f));
                }
            }
            ready
        };
        for f in ready {
            f();
        }
    }

    /// Runs [`collect`] until the backlog stops shrinking — with no
    /// concurrent pins this drains every deferred destructor. Test hook.
    pub fn flush() {
        loop {
            let before = global().garbage.lock().expect("epoch poisoned").len();
            if before == 0 {
                return;
            }
            // Two passes per round: the two-epoch safety margin means a
            // freshly deferred item needs the epoch advanced twice past
            // its tag before it may be freed.
            collect();
            collect();
            let after = global().garbage.lock().expect("epoch poisoned").len();
            if after >= before {
                return;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicUsize;

        #[test]
        fn deferred_destructor_runs_after_unpin() {
            let _serial = crate::epoch_test_lock();
            static RAN: AtomicUsize = AtomicUsize::new(0);
            {
                let guard = pin();
                guard.defer(|| {
                    RAN.fetch_add(1, SeqCst);
                });
            }
            flush();
            assert_eq!(RAN.load(SeqCst), 1);
        }

        #[test]
        fn reclamation_keeps_a_two_epoch_margin() {
            let _serial = crate::epoch_test_lock();
            let ran = Arc::new(AtomicUsize::new(0));
            {
                let guard = pin();
                let ran = Arc::clone(&ran);
                guard.defer(move || {
                    ran.fetch_add(1, SeqCst);
                });
            }
            // One pass advances the epoch once past the tag — exactly the
            // slack a reader pinned behind the participant scan may sit
            // in, so the item must survive it.
            collect();
            assert_eq!(ran.load(SeqCst), 0, "freed with one epoch of slack");
            // A second advance puts the tag two behind; now it frees.
            collect();
            assert_eq!(ran.load(SeqCst), 1);
        }

        #[test]
        fn pinned_reader_blocks_reclamation() {
            let _serial = crate::epoch_test_lock();
            let ran = Arc::new(AtomicUsize::new(0));
            let (started_tx, started_rx) = std::sync::mpsc::channel();
            let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
            let reader = std::thread::spawn(move || {
                let _guard = pin();
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                // guard drops here
            });
            started_rx.recv().unwrap();
            {
                let guard = pin();
                let ran = Arc::clone(&ran);
                guard.defer(move || {
                    ran.fetch_add(1, SeqCst);
                });
            }
            flush();
            assert_eq!(ran.load(SeqCst), 0, "reader still pinned");
            release_tx.send(()).unwrap();
            reader.join().unwrap();
            flush();
            assert_eq!(ran.load(SeqCst), 1);
        }

        #[test]
        fn nested_pins_share_one_announcement() {
            let _serial = crate::epoch_test_lock();
            let outer = pin();
            let inner = pin();
            drop(inner);
            // Still pinned: a defer from another thread must not run yet.
            let ran = Arc::new(AtomicUsize::new(0));
            {
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    let guard = pin();
                    guard.defer(move || {
                        ran.fetch_add(1, SeqCst);
                    });
                })
                .join()
                .unwrap();
            }
            collect();
            assert_eq!(ran.load(SeqCst), 0, "outer pin still active");
            drop(outer);
            flush();
            assert_eq!(ran.load(SeqCst), 1);
        }
    }
}

/// Atomic utilities (mirror of `crossbeam::atomic`, reduced to the
/// versioned [`ArcCell`](atomic::ArcCell) the peer-publication path
/// needs).
pub mod atomic {
    use crate::epoch;
    use std::sync::atomic::{AtomicPtr, Ordering::SeqCst};
    use std::sync::Arc;

    /// Immutable published state: a version counter plus the value. Never
    /// mutated after publication; replaced wholesale by swaps.
    struct Node<T> {
        version: u64,
        value: Option<Arc<T>>,
    }

    /// A raw node pointer being shipped to a deferred destructor.
    struct Retired<T>(*mut Node<T>);
    // SAFETY: the pointee is an unaliased `Box<Node<T>>` by the time the
    // destructor runs (epoch reclamation guarantees no reader still holds
    // it), and `Node<T>` itself is `Send` when `T: Send + Sync`.
    unsafe impl<T: Send + Sync> Send for Retired<T> {}

    impl<T> Retired<T> {
        fn free(self) {
            // SAFETY: `self.0` came from `Box::into_raw` and epoch
            // reclamation delayed this call past every pin that could
            // still dereference it.
            unsafe { drop(Box::from_raw(self.0)) }
        }
    }

    /// A versioned atomic `Option<Arc<T>>` slot (the `crossbeam` 0.2-era
    /// `ArcCell` shape, extended with a version token).
    ///
    /// Loads are wait-free: one epoch pin, one pointer load, one `Arc`
    /// clone — no shared-line read-modify-write, so any number of readers
    /// scale without contention. Every successful write replaces the
    /// published node with one whose version is exactly `old + 1`, so a
    /// slot's version sequence is strictly increasing and a version value
    /// names one historical node uniquely. That makes
    /// [`compare_version_swap`](Self::compare_version_swap) an ABA-proof
    /// optimistic publish: observe `(value, version)` with
    /// [`load_versioned`](Self::load_versioned), compute off to the side,
    /// then install only if the slot still holds that exact version.
    pub struct ArcCell<T> {
        ptr: AtomicPtr<Node<T>>,
    }

    // SAFETY: all access to the shared node goes through atomic pointer
    // ops + epoch reclamation; the payload is only ever handed out as a
    // cloned `Arc<T>`, so `T: Send + Sync` suffices.
    unsafe impl<T: Send + Sync> Send for ArcCell<T> {}
    unsafe impl<T: Send + Sync> Sync for ArcCell<T> {}

    impl<T: Send + Sync + 'static> ArcCell<T> {
        /// New slot holding `value` at version 0.
        pub fn new(value: Option<Arc<T>>) -> Self {
            Self {
                ptr: AtomicPtr::new(Box::into_raw(Box::new(Node { version: 0, value }))),
            }
        }

        /// Wait-free snapshot of the current value.
        pub fn load(&self) -> Option<Arc<T>> {
            self.load_versioned().0
        }

        /// Wait-free snapshot under a caller-held pin. The pin is the
        /// expensive part of a load (a seqcst announcement round-trip);
        /// this variant lets one [`epoch::pin`] amortise across many
        /// slot loads — a group-shaped read pays one announcement
        /// instead of one per slot.
        pub fn load_with(&self, _guard: &epoch::Guard) -> Option<Arc<T>> {
            // SAFETY: the slot pointer is never null and the caller's
            // pin keeps the node alive across the dereference.
            let node = unsafe { &*self.ptr.load(SeqCst) };
            node.value.clone()
        }

        /// Wait-free snapshot of the current `(value, version)` pair.
        pub fn load_versioned(&self) -> (Option<Arc<T>>, u64) {
            let guard = epoch::pin();
            // SAFETY: the slot pointer is never null and the pin keeps the
            // node alive across the dereference.
            let node = unsafe { &*self.ptr.load(SeqCst) };
            let out = (node.value.clone(), node.version);
            drop(guard);
            out
        }

        /// Unconditionally publishes `value`, returning the displaced
        /// value. Retries internally on contention so the installed
        /// version is always exactly `displaced + 1` (keeping the
        /// version sequence strictly increasing even when racing
        /// [`compare_version_swap`](Self::compare_version_swap) calls).
        pub fn swap(&self, value: Option<Arc<T>>) -> Option<Arc<T>> {
            let guard = epoch::pin();
            let mut new = Box::new(Node { version: 0, value });
            loop {
                let cur_ptr = self.ptr.load(SeqCst);
                // SAFETY: non-null; pin keeps it alive.
                let cur = unsafe { &*cur_ptr };
                new.version = cur.version + 1;
                let new_ptr = Box::into_raw(new);
                match self.ptr.compare_exchange(cur_ptr, new_ptr, SeqCst, SeqCst) {
                    Ok(_) => {
                        let displaced = cur.value.clone();
                        let retired = Retired(cur_ptr);
                        guard.defer(move || retired.free());
                        drop(guard);
                        return displaced;
                    }
                    Err(_) => {
                        // SAFETY: the CAS failed, so `new_ptr` was never
                        // published and we still own it exclusively.
                        new = unsafe { Box::from_raw(new_ptr) };
                    }
                }
            }
        }

        /// Publishes `value` only if the slot still holds
        /// `expected_version` (as observed via
        /// [`load_versioned`](Self::load_versioned)); returns whether the
        /// install happened. On success the new version is
        /// `expected_version + 1`. Version uniqueness plus the epoch pin
        /// held from load to CAS make this immune to ABA: a matching
        /// version is *the* node that was observed.
        pub fn compare_version_swap(&self, expected_version: u64, value: Option<Arc<T>>) -> bool {
            let guard = epoch::pin();
            let cur_ptr = self.ptr.load(SeqCst);
            // SAFETY: non-null; pin keeps it alive.
            let cur = unsafe { &*cur_ptr };
            if cur.version != expected_version {
                return false;
            }
            let new_ptr = Box::into_raw(Box::new(Node {
                version: expected_version + 1,
                value,
            }));
            match self.ptr.compare_exchange(cur_ptr, new_ptr, SeqCst, SeqCst) {
                Ok(_) => {
                    let retired = Retired(cur_ptr);
                    guard.defer(move || retired.free());
                    true
                }
                Err(_) => {
                    // SAFETY: never published; still exclusively ours.
                    unsafe { drop(Box::from_raw(new_ptr)) };
                    false
                }
            }
        }
    }

    impl<T> Drop for ArcCell<T> {
        fn drop(&mut self) {
            // `&mut self` excludes concurrent readers of this slot, and the
            // current node was never handed to `defer` (only displaced
            // nodes are), so freeing it directly is sound.
            // SAFETY: we own the only pointer to the current node.
            unsafe { drop(Box::from_raw(*self.ptr.get_mut())) }
        }
    }

    impl<T: Send + Sync + 'static> std::fmt::Debug for ArcCell<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let (value, version) = self.load_versioned();
            f.debug_struct("ArcCell")
                .field("version", &version)
                .field("occupied", &value.is_some())
                .finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn load_returns_what_was_stored() {
            let _serial = crate::epoch_test_lock();
            let cell = ArcCell::new(Some(Arc::new(7u32)));
            assert_eq!(cell.load().as_deref(), Some(&7));
            let (value, version) = cell.load_versioned();
            assert_eq!(value.as_deref(), Some(&7));
            assert_eq!(version, 0);
        }

        #[test]
        fn load_with_shares_one_pin_across_slots() {
            let _serial = crate::epoch_test_lock();
            let a = ArcCell::new(Some(Arc::new(1u32)));
            let b = ArcCell::new(Some(Arc::new(2u32)));
            let guard = epoch::pin();
            assert_eq!(a.load_with(&guard).as_deref(), Some(&1));
            assert_eq!(b.load_with(&guard).as_deref(), Some(&2));
            // A swap under the shared pin must still defer (not free) the
            // displaced node, and the loaded value stays live.
            let held = a.load_with(&guard);
            a.swap(Some(Arc::new(3)));
            assert_eq!(held.as_deref(), Some(&1));
            assert_eq!(a.load_with(&guard).as_deref(), Some(&3));
            drop(guard);
            epoch::collect();
        }

        #[test]
        fn swap_bumps_version_and_returns_displaced() {
            let _serial = crate::epoch_test_lock();
            let cell = ArcCell::new(None::<Arc<u32>>);
            assert_eq!(cell.swap(Some(Arc::new(1))), None);
            assert_eq!(cell.swap(Some(Arc::new(2))).as_deref(), Some(&1));
            let (value, version) = cell.load_versioned();
            assert_eq!(value.as_deref(), Some(&2));
            assert_eq!(version, 2);
        }

        #[test]
        fn compare_version_swap_rejects_stale_version() {
            let _serial = crate::epoch_test_lock();
            let cell = ArcCell::new(None::<Arc<u32>>);
            let (_, v0) = cell.load_versioned();
            assert!(cell.compare_version_swap(v0, Some(Arc::new(10))));
            // The old observation is now stale.
            assert!(!cell.compare_version_swap(v0, Some(Arc::new(99))));
            assert_eq!(cell.load().as_deref(), Some(&10));
        }

        #[test]
        fn loads_stay_consistent_under_concurrent_swaps() {
            let _serial = crate::epoch_test_lock();
            let cell = Arc::new(ArcCell::new(Some(Arc::new(0u64))));
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || {
                        let mut last = 0;
                        for _ in 0..2000 {
                            let (value, version) = cell.load_versioned();
                            let value = *value.expect("never cleared");
                            assert!(version >= last, "versions are monotone per observer");
                            assert!(value <= version, "value written at its version");
                            last = version;
                        }
                    });
                }
                for _ in 0..2 {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || {
                        for _ in 0..1000 {
                            let (_, v) = cell.load_versioned();
                            // Either CAS or unconditional swap; both keep
                            // version strictly increasing.
                            cell.compare_version_swap(v, Some(Arc::new(v + 1)));
                        }
                    });
                }
            });
            crate::epoch::flush();
        }

        #[test]
        fn racing_version_swaps_admit_exactly_one_winner() {
            let _serial = crate::epoch_test_lock();
            let cell = Arc::new(ArcCell::new(None::<Arc<u32>>));
            let (_, v) = cell.load_versioned();
            let winners: usize = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|i| {
                        let cell = Arc::clone(&cell);
                        scope
                            .spawn(move || cell.compare_version_swap(v, Some(Arc::new(i))) as usize)
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(winners, 1);
            assert!(cell.load().is_some());
        }
    }
}
