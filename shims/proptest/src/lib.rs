//! Minimal, API-compatible stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, range and tuple strategies,
//! `collection::{vec, btree_map}`, `option::of`, `sample::select`, and
//! the `prop_map` / `prop_flat_map` combinators.
//!
//! The build environment cannot reach crates.io, so the real crate is
//! unavailable. Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the deterministic seed of
//!   the case instead of a minimised input;
//! * **deterministic generation** — case `i` of test `t` always draws
//!   from seed `hash(t) ⊕ i`, so CI failures reproduce locally;
//! * strategies generate eagerly; there is no `Strategy::Tree`.

use std::fmt::Debug;

/// What `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values (the eager analogue of proptest's
    /// `Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and draws
        /// from the produced strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// String strategies from regex literals, like real proptest's
    /// `impl Strategy for &str`. The shim supports the subset the
    /// workspace uses: literals, groups `(...)`, alternation `|`, and the
    /// `?` / `*` / `+` quantifiers (`*` and `+` capped at 3 repetitions).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (node, rest) = regex_gen::parse_alternation(self.as_bytes());
            assert!(
                rest.is_empty(),
                "unsupported regex strategy {self:?} (unparsed suffix {:?})",
                String::from_utf8_lossy(rest),
            );
            let mut out = String::new();
            regex_gen::emit(&node, rng, &mut out);
            out
        }
    }

    mod regex_gen {
        use super::TestRng;

        pub enum Node {
            Literal(char),
            Sequence(Vec<Node>),
            Alternation(Vec<Node>),
            Repeat {
                inner: Box<Node>,
                min: u32,
                max: u32,
            },
        }

        /// Parses `a|b|c` at the current nesting level; stops at `)`.
        pub fn parse_alternation(mut input: &[u8]) -> (Node, &[u8]) {
            let mut branches = Vec::new();
            loop {
                let (seq, rest) = parse_sequence(input);
                branches.push(seq);
                input = rest;
                match input.first() {
                    Some(b'|') => input = &input[1..],
                    _ => break,
                }
            }
            let node = if branches.len() == 1 {
                branches.pop().expect("one branch")
            } else {
                Node::Alternation(branches)
            };
            (node, input)
        }

        fn parse_sequence(mut input: &[u8]) -> (Node, &[u8]) {
            let mut parts = Vec::new();
            while let Some(&b) = input.first() {
                let (atom, rest) = match b {
                    b')' | b'|' => break,
                    b'(' => {
                        let (inner, rest) = parse_alternation(&input[1..]);
                        assert_eq!(
                            rest.first(),
                            Some(&b')'),
                            "unbalanced group in regex strategy"
                        );
                        (inner, &rest[1..])
                    }
                    b'\\' => {
                        let c = *input.get(1).expect("dangling escape in regex strategy");
                        (Node::Literal(c as char), &input[2..])
                    }
                    _ => {
                        // Multi-byte UTF-8 literals pass through unchanged.
                        let s = std::str::from_utf8(input).expect("regex strategies are UTF-8");
                        let c = s.chars().next().expect("non-empty");
                        (Node::Literal(c), &input[c.len_utf8()..])
                    }
                };
                let (atom, rest) = match rest.first() {
                    Some(b'?') => (
                        Node::Repeat {
                            inner: Box::new(atom),
                            min: 0,
                            max: 1,
                        },
                        &rest[1..],
                    ),
                    Some(b'*') => (
                        Node::Repeat {
                            inner: Box::new(atom),
                            min: 0,
                            max: 3,
                        },
                        &rest[1..],
                    ),
                    Some(b'+') => (
                        Node::Repeat {
                            inner: Box::new(atom),
                            min: 1,
                            max: 3,
                        },
                        &rest[1..],
                    ),
                    _ => (atom, rest),
                };
                parts.push(atom);
                input = rest;
            }
            let node = if parts.len() == 1 {
                parts.pop().expect("one part")
            } else {
                Node::Sequence(parts)
            };
            (node, input)
        }

        pub fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::Sequence(parts) => {
                    for p in parts {
                        emit(p, rng, out);
                    }
                }
                Node::Alternation(branches) => {
                    let pick = rng.next_u64() as usize % branches.len();
                    emit(&branches[pick], rng, out);
                }
                Node::Repeat { inner, min, max } => {
                    let span = u64::from(max - min + 1);
                    let n = min + (rng.next_u64() % span) as u32;
                    for _ in 0..n {
                        emit(inner, rng, out);
                    }
                }
            }
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// A size specification: either a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                return self.lo;
            }
            self.lo + (rng.next_u64() as usize % (self.hi - self.lo))
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `elem` and a size drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`](vec()).
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s; key collisions collapse, so the final
    /// size may be below the sampled one (mirrors real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Yields `Some` three times out of four, `None` otherwise (real
    /// proptest's default `Some` weight).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (!rng.next_u64().is_multiple_of(4)).then(|| self.inner.generate(rng))
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniformly selects one of `options`.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.next_u64() as usize % self.options.len()].clone()
        }
    }
}

/// Runner configuration, RNG, and case errors.
pub mod test_runner {
    /// Runner knobs (mirror of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config with `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*!` failed.
        Fail(String),
        /// A `prop_assume!` rejected the inputs.
        Reject,
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    /// Deterministic SplitMix64 generation stream for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        pub fn new(seed: u64) -> Self {
            let mut rng = Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives the cases of one `proptest!`-generated test.
    #[derive(Debug)]
    pub struct Runner {
        config: ProptestConfig,
        name: &'static str,
        base_seed: u64,
        case: u64,
        passed: u32,
        rejected: u64,
    }

    impl Runner {
        /// Creates a runner for the named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self {
                config,
                name,
                base_seed: h,
                case: 0,
                passed: 0,
                rejected: 0,
            }
        }

        /// Whether another case should run.
        pub fn more_cases(&self) -> bool {
            self.passed < self.config.cases
        }

        /// The RNG for the next case.
        pub fn next_rng(&mut self) -> TestRng {
            let seed = self.base_seed ^ self.case;
            self.case += 1;
            TestRng::new(seed)
        }

        /// Records one case outcome.
        ///
        /// # Panics
        /// Panics on a failed case (reporting the case seed), or when the
        /// rejection budget (`cases × 20`) is exhausted.
        pub fn handle(&mut self, outcome: Result<(), TestCaseError>) {
            match outcome {
                Ok(()) => self.passed += 1,
                Err(TestCaseError::Reject) => {
                    self.rejected += 1;
                    let budget = u64::from(self.config.cases) * 20;
                    assert!(
                        self.rejected <= budget,
                        "proptest '{}': too many prop_assume! rejections ({})",
                        self.name,
                        self.rejected,
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{}' failed at case {} (seed {:#x}): {}",
                    self.name,
                    self.case - 1,
                    self.base_seed ^ (self.case - 1),
                    msg,
                ),
            }
        }
    }
}

/// Generates `#[test]` functions that run a property over many random
/// cases (mirror of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::Runner::new($cfg, stringify!($name));
                while runner.more_cases() {
                    let mut rng = runner.next_rng();
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    runner.handle(outcome);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?} == {:?}`",
                left,
                right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(*left == *right, $($fmt)+),
        }
    };
}

/// Rejects the current case (it counts as neither pass nor failure)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

// Re-exported at the root so `proptest::prelude::*` users can also name
// `proptest::strategy::Strategy` paths like the real crate.
pub use strategy::Strategy;

/// Compile-time smoke check that the shim's surface hangs together.
#[allow(dead_code)]
fn _assert_api(_: &dyn Debug) {}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, f in 1.0f64..=5.0, n in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1.0..=5.0).contains(&f));
            prop_assert!(n <= 4);
        }

        #[test]
        fn tuples_and_collections_compose(
            pairs in crate::collection::vec((0u32..5, 0.0f64..1.0), 0..20),
            map in crate::collection::btree_map(0u32..8, 1.0f64..=5.0, 0..30),
            opt in crate::option::of(0u32..3),
            word in crate::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(pairs.len() < 20);
            prop_assert!(map.len() < 30, "keys collapse, so len {} < 30", map.len());
            if let Some(v) = opt {
                prop_assert!(v < 3);
            }
            prop_assert!(["a", "b", "c"].contains(&word));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_and_combinators_work(v in crate::collection::vec(0u32..100, 1..10)) {
            prop_assume!(!v.is_empty());
            let doubled = (0usize..v.len())
                .prop_map(|i| i * 2)
                .generate(&mut crate::test_runner::TestRng::new(7));
            prop_assert!(doubled < v.len() * 2);
            prop_assert_eq!(v.len(), v.iter().map(|x| usize::from(*x < 100)).sum::<usize>());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::new(11);
        let mut b = crate::test_runner::TestRng::new(11);
        let s = crate::collection::vec(0u32..1000, 5..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_seed() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
