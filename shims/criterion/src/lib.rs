//! Minimal, API-compatible stand-in for the subset of `criterion` this
//! workspace uses: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment cannot fetch crates.io. Instead of criterion's
//! statistical machinery, the shim runs a short calibration to pick an
//! iteration count, takes `sample_size` timed samples, and reports
//! mean / min / max nanoseconds per iteration. Every result is also
//! appended as one JSON object per line to
//! `$CRITERION_SHIM_JSON` (default `target/criterion-shim/results.jsonl`,
//! relative to the current directory), so successive runs can be diffed
//! and tracked across PRs.

pub use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark (mirror of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI hookup; the shim ignores arguments.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.into().id, self.sample_size, self.measurement_time, f);
    }

    /// Benchmarks a function against one input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(&id.id, self.sample_size, self.measurement_time, |b| {
            f(b, input);
        });
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Benchmarks a function against one input within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration: time one iteration to size the per-sample batch so all
    // samples together roughly fit the measurement budget.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time / sample_size.max(1) as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns[0];
    let max = *samples_ns.last().expect("at least one sample");
    let median = samples_ns[samples_ns.len() / 2];

    println!(
        "bench {id:<60} mean {:>12} min {:>12} max {:>12} ({} samples × {} iters)",
        format_ns(mean),
        format_ns(min),
        format_ns(max),
        samples_ns.len(),
        iters,
    );
    write_json(id, mean, median, min, max, samples_ns.len(), iters);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The default output path: `<target dir>/criterion-shim/results.jsonl`.
/// Cargo runs bench binaries with the *package* directory as CWD, so a
/// plain relative `target/…` would scatter files into crate source
/// trees; instead honour `CARGO_TARGET_DIR`, then walk up from
/// `CARGO_MANIFEST_DIR` to the nearest existing `target/` (the shared
/// workspace target), before falling back to a relative path.
fn default_json_path() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::Path::new(&dir).join("criterion-shim/results.jsonl");
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let mut dir = Some(std::path::Path::new(&manifest));
        while let Some(d) = dir {
            let target = d.join("target");
            if target.is_dir() {
                return target.join("criterion-shim/results.jsonl");
            }
            dir = d.parent();
        }
    }
    std::path::PathBuf::from("target/criterion-shim/results.jsonl")
}

/// Appends one JSON line per result so benchmark trajectories can be
/// tracked across commits. Failures to write are reported, not fatal —
/// benchmarks still print to stdout.
fn write_json(id: &str, mean: f64, median: f64, min: f64, max: f64, samples: usize, iters: u64) {
    let path = std::env::var("CRITERION_SHIM_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    let path = path.as_path();
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("criterion shim: cannot create {}: {e}", dir.display());
            return;
        }
    }
    let line = format!(
        "{{\"id\":{},\"mean_ns\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{samples},\"iters_per_sample\":{iters}}}\n",
        json_string(id),
        json_f64(mean),
        json_f64(median),
        json_f64(min),
        json_f64(max),
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion shim: cannot append to {}: {e}", path.display());
    }
}

/// Records one externally-measured scalar under `id` in the same JSONL
/// schema the timing loop writes — for load-generator benches whose
/// statistic is not an iteration time (latency percentiles, sustained
/// QPS, per-request cost). The scalar lands in every `*_ns` column so
/// downstream tooling (`scripts/bench_trajectory`) reads it off
/// `median_ns` like any other row; `samples` carries how many
/// observations backed it.
pub fn record_scalar(id: &str, value: f64, samples: usize) {
    println!("{id:<50} scalar {value:>14.6}  ({samples} observations)");
    write_json(id, value, value, value, value, samples, 1);
}

/// Serialises an f64 as a JSON number at full round-trip precision —
/// Rust's float `Display` is the shortest representation that parses
/// back to the same bits, which is what lets `record_scalar` carry
/// exact metric *values* (not just nanosecond timings) through the
/// JSONL stream. Non-finite values (impossible for timings, guarded
/// against for scalars) fall back to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string as a JSON string literal (ids are benchmark names —
/// ASCII in practice, but escape defensively).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Declares a benchmark group function (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main` (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Benchmark binaries receive harness flags (e.g. `--bench`);
            // the shim runs everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_SHIM_JSON", "target/criterion-shim/test.jsonl");
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
        };
        c.bench_function("smoke", |b| b.iter(|| black_box(2 + 2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
        let written = std::fs::read_to_string("target/criterion-shim/test.jsonl").unwrap();
        assert!(written.contains("\"id\":\"smoke\""));
        assert!(written.contains("\"id\":\"grp/param/7\""));
        let _ = std::fs::remove_file("target/criterion-shim/test.jsonl");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn json_numbers_round_trip() {
        assert_eq!(json_f64(0.8586478), "0.8586478");
        assert_eq!(json_f64(42.0), "42");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with('s'));
    }
}
