//! Minimal, API-compatible stand-in for the subset of the `rand` crate
//! this workspace uses: `StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over integer/float ranges, and
//! `seq::SliceRandom::shuffle`.
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this shim keeps the workspace self-contained.
//! The generator is a deterministic SplitMix64 — statistically fine for
//! synthetic-data generation and property tests, not cryptographic.
//! Streams differ from the real `rand`, so seeded fixtures are stable
//! against *this* shim, which is all the test-suite requires.

use std::ops::{Range, RangeInclusive};

/// Construction of a seeded generator (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type (unused by the shim beyond its length).
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing random-value API (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self.next_u64_dyn())
    }

    /// Bernoulli sample with probability `p` of `true`.
    ///
    /// # Panics
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64_dyn()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit source every other method derives from.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64_dyn(&mut self) -> u64;
}

/// Maps a raw draw to `[0, 1)` with 53-bit precision.
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range a value can be uniformly sampled from (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples from the range given one raw 64-bit draw.
    fn sample(self, raw: u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, raw: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (raw as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, raw: u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, raw: u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(raw) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, raw: u64) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(raw) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, raw: u64) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(raw) as f32 * (self.end - self.start)
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64_dyn(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014) — full-period, passes BigCrush.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&seed[..8]);
        Self::seed_from_u64(u64::from_le_bytes(bytes))
    }

    fn seed_from_u64(state: u64) -> Self {
        // One scramble round so seeds 0 and 1 do not produce near-identical
        // early streams.
        let mut rng = Self {
            state: state ^ 0x5DEE_CE66_D6A5_F9D3,
        };
        rng.next_u64_dyn();
        rng
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffle (and in the real crate, sampling) over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_dyn(), b.next_u64_dyn());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.next_u64_dyn() == b.next_u64_dyn())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f: f64 = rng.gen_range(1.0..=5.0);
            assert!((1.0..=5.0).contains(&f));
            let s: usize = rng.gen_range(0..=4);
            assert!(s <= 4);
            let n: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never fixes everything"
        );
    }
}
