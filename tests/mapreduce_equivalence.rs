//! The §IV MapReduce pipeline must agree **exactly** with the in-memory
//! reference — same candidates, same per-member predictions, same group
//! scores — across datasets, aggregations, thresholds, and worker counts.

use fairrec::core::aggregate::{Aggregation, MissingPolicy};
use fairrec::core::predictions::{compute_group_predictions, GroupPredictionConfig};
use fairrec::core::Group;
use fairrec::mapreduce::{mapreduce_group_predictions, EdgeProducer, JobConfig, PipelineConfig};
use fairrec::prelude::*;
use fairrec::types::Parallelism;

fn dataset(seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 70,
            num_items: 140,
            num_communities: 3,
            ratings_per_user: 22,
            seed,
            ..Default::default()
        },
        &fairrec::ontology::snomed::clinical_fragment(),
    )
    .unwrap()
}

fn compare(
    data: &SyntheticDataset,
    group_members: Vec<UserId>,
    delta: f64,
    max_peers: Option<usize>,
    aggregation: Aggregation,
    missing: MissingPolicy,
    job: JobConfig,
) {
    let group = Group::new(GroupId::new(0), group_members).unwrap();

    let selector = {
        let mut s = PeerSelector::new(delta).unwrap();
        if let Some(cap) = max_peers {
            s = s.with_max_peers(cap);
        }
        s
    };
    let measure = RatingsSimilarity::new(&data.matrix);
    let reference = compute_group_predictions(
        &data.matrix,
        &measure,
        &selector,
        &group,
        GroupPredictionConfig {
            aggregation,
            missing,
            // The equivalence claim is against the *sequential* reference;
            // parallel-vs-sequential bitwise identity is asserted
            // separately in `parallel_equivalence.rs`.
            parallelism: Parallelism::Sequential,
        },
    )
    .unwrap();

    // Every edge producer — the paper's Job 0→1→2 chain, the
    // inverted-index bulk kernel, and the incremental delta-maintained
    // index — must reproduce the in-memory reference exactly.
    for edge_producer in [
        EdgeProducer::MapReduce,
        EdgeProducer::BulkKernel,
        EdgeProducer::Incremental { holdout: 41 },
    ] {
        let (pipeline, report) = mapreduce_group_predictions(
            data.matrix.to_triples(),
            data.matrix.num_items(),
            &group,
            &PipelineConfig {
                delta,
                min_overlap: 2,
                max_peers,
                aggregation,
                missing,
                job,
                edge_producer,
            },
        )
        .unwrap();

        assert_eq!(
            reference, pipeline,
            "mismatch at δ={delta}, cap={max_peers:?}, {aggregation:?}, {missing:?}, \
             {edge_producer:?}"
        );
        assert!(report.job1.map_input_records == data.matrix.num_ratings());
    }
}

#[test]
fn agreement_across_aggregations_and_policies() {
    let data = dataset(1);
    let members = data.sample_group(4, None, 1);
    for aggregation in [Aggregation::Min, Aggregation::Average] {
        for missing in [MissingPolicy::Skip, MissingPolicy::Pessimistic] {
            compare(
                &data,
                members.clone(),
                0.0,
                None,
                aggregation,
                missing,
                JobConfig::default(),
            );
        }
    }
}

#[test]
fn agreement_across_delta_sweep() {
    let data = dataset(2);
    let members = data.sample_group(3, None, 2);
    for delta in [-1.0, -0.25, 0.0, 0.3, 0.7, 0.95] {
        compare(
            &data,
            members.clone(),
            delta,
            None,
            Aggregation::Average,
            MissingPolicy::Skip,
            JobConfig::default(),
        );
    }
}

#[test]
fn agreement_with_peer_caps() {
    let data = dataset(3);
    let members = data.sample_group(3, Some(1), 3);
    for cap in [1usize, 3, 10, 50] {
        compare(
            &data,
            members.clone(),
            0.1,
            Some(cap),
            Aggregation::Min,
            MissingPolicy::Skip,
            JobConfig::default(),
        );
    }
}

#[test]
fn agreement_across_worker_and_partition_counts() {
    let data = dataset(4);
    let members = data.sample_group(4, None, 4);
    for (workers, partitions) in [(1, 1), (2, 3), (4, 8), (3, 16)] {
        compare(
            &data,
            members.clone(),
            0.2,
            Some(20),
            Aggregation::Average,
            MissingPolicy::Skip,
            JobConfig {
                num_workers: workers,
                num_partitions: partitions,
            },
        );
    }
}

#[test]
fn agreement_over_many_seeds() {
    for seed in 10..16 {
        let data = dataset(seed);
        let members = data.sample_group(3, None, seed);
        compare(
            &data,
            members,
            0.0,
            None,
            Aggregation::Average,
            MissingPolicy::Skip,
            JobConfig::with_workers(2),
        );
    }
}

#[test]
fn singleton_and_whole_community_groups() {
    let data = dataset(7);
    // Singleton.
    compare(
        &data,
        data.sample_group(1, None, 5),
        0.0,
        None,
        Aggregation::Average,
        MissingPolicy::Skip,
        JobConfig::default(),
    );
    // A large homogeneous group.
    compare(
        &data,
        data.sample_group(12, Some(0), 5),
        0.0,
        None,
        Aggregation::Min,
        MissingPolicy::Pessimistic,
        JobConfig::with_workers(2),
    );
}

#[test]
fn distributed_top_k_agrees_with_group_top_k() {
    use fairrec::mapreduce::topk::top_k_mapreduce;

    let data = dataset(8);
    let group = Group::new(GroupId::new(0), data.sample_group(3, None, 6)).unwrap();
    let measure = RatingsSimilarity::new(&data.matrix);
    let selector = PeerSelector::new(0.0).unwrap();
    let preds = compute_group_predictions(
        &data.matrix,
        &measure,
        &selector,
        &group,
        GroupPredictionConfig::default(),
    )
    .unwrap();

    let records: Vec<ScoredItem> = (0..preds.num_items())
        .filter_map(|j| {
            preds
                .group_relevance(j)
                .map(|s| ScoredItem::new(preds.items()[j], s))
        })
        .collect();
    let mr = top_k_mapreduce(records, 10, JobConfig::with_workers(3));
    let reference = preds.top_k_for_group(10);
    assert_eq!(mr.len(), reference.len());
    for (a, b) in mr.iter().zip(reference.iter()) {
        assert_eq!(a.item, b.item);
        assert!((a.score - b.score).abs() < 1e-12);
    }
}
