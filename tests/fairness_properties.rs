//! Paper-level fairness claims, checked on realistic (synthetic-cohort)
//! data rather than hand-built pools: Proposition 1, §VI's "identical
//! fairness" observation, and the value dominance of the exact search.

use fairrec::core::pool::CandidatePool;
use fairrec::core::predictions::{compute_group_predictions, GroupPredictionConfig};
use fairrec::prelude::*;
use proptest::prelude::*;

fn pool_from_seed(seed: u64, group_size: usize, pool_cap: usize) -> Option<CandidatePool> {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 60,
            num_items: 120,
            num_communities: 3,
            ratings_per_user: 20,
            seed,
            ..Default::default()
        },
        &ontology,
    )
    .ok()?;
    let group = Group::new(GroupId::new(0), data.sample_group(group_size, None, seed)).ok()?;
    let measure = RatingsSimilarity::new(&data.matrix);
    let selector = PeerSelector::new(0.0).ok()?;
    let preds = compute_group_predictions(
        &data.matrix,
        &measure,
        &selector,
        &group,
        GroupPredictionConfig::default(),
    )
    .ok()?;
    CandidatePool::from_predictions(&preds, Some(pool_cap)).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Proposition 1 on synthetic cohorts: Algorithm 1 with z ≥ |G|
    /// reaches fairness 1 whenever every member has a non-empty A_u.
    #[test]
    fn proposition_1_on_synthetic_data(seed in 0u64..40, n in 2usize..5) {
        let Some(pool) = pool_from_seed(seed, n, 20) else { return Ok(()); };
        let k = 5usize;
        // Every member must have candidates they can score (true on this
        // plant: peers exist for everyone).
        let all_visible = (0..pool.num_members()).all(|m| !pool.top_k_positions(m, k).is_empty());
        prop_assume!(all_visible);
        let ev = FairnessEvaluator::new(&pool, k).unwrap();
        let z = pool.num_members();
        let sel = algorithm1(&pool, z, k);
        prop_assert!((ev.fairness(&sel.positions) - 1.0).abs() < 1e-12);
    }

    /// §VI: brute force and heuristic produce identical fairness in the
    /// evaluated regime (and the brute-force value dominates).
    #[test]
    fn table2_regime_fairness_identical(seed in 0u64..25) {
        let Some(pool) = pool_from_seed(seed, 4, 12) else { return Ok(()); };
        let k = 5usize;
        let all_visible = (0..pool.num_members()).all(|m| !pool.top_k_positions(m, k).is_empty());
        prop_assume!(all_visible);
        let ev = FairnessEvaluator::new(&pool, k).unwrap();
        for z in [4usize, 6] {
            let greedy = algorithm1(&pool, z, k);
            let exact = brute_force(&pool, &ev, z);
            let fg = ev.fairness(&greedy.positions);
            let fe = ev.fairness(&exact.selection.positions);
            prop_assert!((fg - fe).abs() < 1e-12, "fairness differs: {fg} vs {fe}");
            let vg = ev.value(&pool, &greedy.positions);
            prop_assert!(exact.value >= vg - 1e-9);
        }
    }
}

#[test]
fn fairness_definition_matches_manual_count() {
    // Cross-check Definition 3 by brute manual counting on a real pool.
    let pool = pool_from_seed(3, 4, 15).expect("fixture");
    let k = 3;
    let ev = FairnessEvaluator::new(&pool, k).unwrap();
    let selection = algorithm1(&pool, 5, k);

    let mut satisfied = 0usize;
    for m in 0..pool.num_members() {
        let top: Vec<usize> = pool.top_k_positions(m, k);
        if selection.positions.iter().any(|j| top.contains(j)) {
            satisfied += 1;
        }
    }
    let manual = satisfied as f64 / pool.num_members() as f64;
    assert!((ev.fairness(&selection.positions) - manual).abs() < 1e-12);
}

#[test]
fn value_function_is_fairness_times_relevance_sum() {
    let pool = pool_from_seed(5, 3, 10).expect("fixture");
    let ev = FairnessEvaluator::new(&pool, 4).unwrap();
    let sel = algorithm1(&pool, 4, 4);
    let fairness = ev.fairness(&sel.positions);
    let relevance: f64 = sel.positions.iter().map(|&j| pool.group_relevance(j)).sum();
    assert!((ev.value(&pool, &sel.positions) - fairness * relevance).abs() < 1e-12);
}
