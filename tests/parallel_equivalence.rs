//! The parallel prediction pipeline must be **bitwise identical** to the
//! sequential path: every parallel loop in the workspace is an
//! order-preserving map with a fixed (sequential) aggregation order, so
//! no float result may depend on thread count or scheduling.

use fairrec::core::predictions::{compute_group_predictions, GroupPredictionConfig};
use fairrec::core::{Aggregation, Group, MissingPolicy, RelevancePredictor};
use fairrec::prelude::*;
use fairrec::types::Parallelism;
use proptest::prelude::*;

fn dataset(seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 60,
            // Above `MIN_PARALLEL_ITEMS`, so the per-candidate fan-out
            // actually engages — smaller pools intentionally stay
            // sequential and would make these assertions vacuous.
            num_items: 2600,
            num_communities: 3,
            ratings_per_user: 20,
            seed,
            ..Default::default()
        },
        &fairrec::ontology::snomed::clinical_fragment(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Equation 1 over candidates: same bits for every parallelism mode.
    #[test]
    fn predict_many_is_bitwise_stable_across_modes(seed in 0u64..500, delta in -0.5f64..0.8) {
        let data = dataset(seed);
        let measure = RatingsSimilarity::new(&data.matrix);
        let selector = PeerSelector::new(delta).unwrap();
        let user = UserId::new(0);
        let peers = selector.peers_of(&measure, user, data.matrix.user_ids(), &[]);
        let candidates = data.matrix.unrated_by_all(&[user]);
        let predictor = RelevancePredictor::new(&data.matrix);
        let sequential = predictor.predict_many_with(&peers, &candidates, Parallelism::Sequential);
        for mode in [
            Parallelism::Rayon,
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Threads(8),
        ] {
            let parallel = predictor.predict_many_with(&peers, &candidates, mode);
            // Option<f64> equality is bit-for-bit here: scores come out of
            // identical arithmetic on identical inputs in identical order.
            prop_assert_eq!(&parallel, &sequential, "{:?}", mode);
        }
    }

    /// The full prediction phase (peers → Equation 1 → Definition 2):
    /// same bits for every parallelism mode.
    #[test]
    fn group_predictions_are_bitwise_stable_across_modes(seed in 0u64..500) {
        let data = dataset(seed);
        let measure = RatingsSimilarity::new(&data.matrix);
        let selector = PeerSelector::new(0.0).unwrap();
        let group = Group::new(GroupId::new(0), data.sample_group(4, None, seed)).unwrap();
        let config = |parallelism| GroupPredictionConfig {
            aggregation: Aggregation::Average,
            missing: MissingPolicy::Skip,
            parallelism,
        };
        let sequential = compute_group_predictions(
            &data.matrix, &measure, &selector, &group, config(Parallelism::Sequential),
        ).unwrap();
        for mode in [Parallelism::Rayon, Parallelism::Threads(2), Parallelism::Threads(8)] {
            let parallel = compute_group_predictions(
                &data.matrix, &measure, &selector, &group, config(mode),
            ).unwrap();
            prop_assert_eq!(&parallel, &sequential, "{:?}", mode);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Nested parallelism under a `Threads(1)` pin: the outer map *and*
    /// every nested `par_iter` inside it stay on the calling thread, and
    /// the scores are bitwise-equal to a fully sequential run. (Before
    /// the worker-pool executor, a pin did not propagate into spawned
    /// workers, so nested calls could silently fan out to machine
    /// parallelism.)
    #[test]
    fn threads1_nested_par_iter_stays_single_threaded(len in 1usize..80, scale in 0.5f64..2.0) {
        use rayon::prelude::*;
        let caller = std::thread::current().id();
        let input: Vec<u32> = (0..len as u32).collect();
        let work = |x: u32| -> Vec<(f64, std::thread::ThreadId)> {
            (0..x % 17 + 1)
                .into_par_iter()
                .map(|y| {
                    (
                        (f64::from(x) * scale + f64::from(y)).sqrt(),
                        std::thread::current().id(),
                    )
                })
                .collect()
        };
        let pinned = Parallelism::Threads(1).map(input.clone(), work);
        let sequential = Parallelism::Sequential.map(input, work);
        prop_assert_eq!(pinned.len(), sequential.len());
        for (p_row, s_row) in pinned.iter().zip(&sequential) {
            prop_assert_eq!(p_row.len(), s_row.len());
            for (&(p, p_id), &(s, _)) in p_row.iter().zip(s_row) {
                prop_assert_eq!(p.to_bits(), s.to_bits(), "bitwise-equal to Sequential");
                prop_assert_eq!(p_id, caller, "Threads(1) must stay on the calling thread");
            }
        }
    }
}

/// The pin must propagate into pool *workers*, not just the installing
/// thread: a barrier across as many items as the pool has threads forces
/// the chunks onto distinct threads (at most one of them the caller), so
/// most observations genuinely come from inside workers. The pool width
/// is deliberately different from the machine's parallelism — the value
/// an unpinned worker would report.
#[test]
fn thread_pins_propagate_into_pool_workers() {
    let machine = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let n = machine + 2;
    let barrier = std::sync::Barrier::new(n);
    let observed: Vec<(std::thread::ThreadId, usize)> =
        Parallelism::Threads(n).map((0..n).collect(), |_| {
            barrier.wait();
            (std::thread::current().id(), rayon::current_num_threads())
        });
    let distinct: std::collections::HashSet<_> = observed.iter().map(|&(id, _)| id).collect();
    assert_eq!(distinct.len(), n, "chunks ran on {n} distinct threads");
    for &(_, seen) in &observed {
        assert_eq!(
            seen, n,
            "nested calls inside workers must see the {n}-thread pin"
        );
    }
}

/// A denser cohort for the engine-level tests: enough co-rating overlap
/// that Pearson is defined and packages actually materialise. (The big
/// sparse `dataset()` exists only to exceed the parallel-fan-out floor.)
fn dense_dataset(seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 80,
            num_items: 200,
            num_communities: 3,
            ratings_per_user: 30,
            seed,
            ..Default::default()
        },
        &fairrec::ontology::snomed::clinical_fragment(),
    )
    .unwrap()
}

/// `recommend_batch` must agree item-for-item with a sequential
/// `recommend_for_group` loop, across parallelism modes, while sharing
/// one peer index.
#[test]
fn recommend_batch_matches_sequential_loop() {
    let data = dense_dataset(42);
    let mut groups = Vec::new();
    for g in 0..10u64 {
        groups.push(Group::new(GroupId::new(g as u32), data.sample_group(3, None, g)).unwrap());
    }

    let engine_with = |parallelism| {
        RecommenderEngine::new(
            data.matrix.clone(),
            data.profiles.clone(),
            fairrec::ontology::snomed::clinical_fragment(),
            EngineConfig {
                parallelism,
                ..Default::default()
            },
        )
        .unwrap()
    };

    let sequential_engine = engine_with(Parallelism::Sequential);
    let looped: Vec<GroupRecommendation> = groups
        .iter()
        .map(|g| sequential_engine.recommend_for_group(g, 6).unwrap())
        .collect();

    for mode in [
        Parallelism::Sequential,
        Parallelism::Rayon,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ] {
        let engine = engine_with(mode);
        let batched = engine.recommend_batch(&groups, 6).unwrap();
        assert_eq!(batched, looped, "{mode:?}");
        // The batch shared one index: every group member's peer list is
        // cached at most once.
        assert!(engine.peer_index().num_cached() > 0);
    }
}

/// The engine's cached path answers exactly like a freshly-built engine
/// (cold cache) — repeated requests hit the cache without drift.
#[test]
fn warm_requests_match_cold_requests() {
    let data = dense_dataset(7);
    let group = Group::new(GroupId::new(0), data.sample_group(4, None, 9)).unwrap();
    let engine = RecommenderEngine::new(
        data.matrix.clone(),
        data.profiles.clone(),
        fairrec::ontology::snomed::clinical_fragment(),
        EngineConfig::default(),
    )
    .unwrap();
    let cold = engine.recommend_for_group(&group, 6).unwrap();
    assert!(engine.peer_index().num_cached() >= group.members().len());
    let warm = engine.recommend_for_group(&group, 6).unwrap();
    assert_eq!(cold, warm);

    // Warming everything up front changes nothing either.
    let warmed_engine = RecommenderEngine::new(
        data.matrix.clone(),
        data.profiles.clone(),
        fairrec::ontology::snomed::clinical_fragment(),
        EngineConfig::default(),
    )
    .unwrap();
    let computed = warmed_engine.warm_peer_index();
    assert_eq!(computed as u32, data.matrix.num_users());
    assert_eq!(warmed_engine.recommend_for_group(&group, 6).unwrap(), cold);

    // Invalidation empties the cache and recomputes to the same answer.
    warmed_engine.invalidate_peers();
    assert_eq!(warmed_engine.peer_index().num_cached(), 0);
    assert_eq!(warmed_engine.recommend_for_group(&group, 6).unwrap(), cold);
}
