//! End-to-end integration: dataset → engine → recommendation → report.

use fairrec::prelude::*;

fn engine_with(config: EngineConfig, seed: u64) -> (RecommenderEngine, SyntheticDataset) {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 120,
            num_items: 240,
            num_communities: 4,
            ratings_per_user: 30,
            seed,
            ..Default::default()
        },
        &ontology,
    )
    .unwrap();
    let engine =
        RecommenderEngine::new(data.matrix.clone(), data.profiles.clone(), ontology, config)
            .unwrap();
    (engine, data)
}

#[test]
fn caregiver_flow_with_default_model() {
    let (engine, data) = engine_with(EngineConfig::default(), 42);
    let group = Group::new(GroupId::new(0), data.sample_group(4, None, 9)).unwrap();
    let rec = engine.recommend_for_group(&group, 10).unwrap();

    assert_eq!(rec.items.len(), 10);
    assert!((rec.fairness - 1.0).abs() < 1e-12, "Proposition 1 regime");
    assert_eq!(rec.members.len(), 4);
    assert!(rec.members.iter().all(|m| m.satisfied));

    // Package items were never rated by any member.
    for item in &rec.items {
        for &member in group.members() {
            assert!(!engine.ratings().has_rated(member, item.item));
        }
    }
    // Group relevance values are inside the rating range.
    for item in &rec.items {
        assert!((1.0..=5.0).contains(&item.group_relevance));
    }
}

#[test]
fn homogeneous_groups_get_higher_relevance_than_mixed() {
    let (engine, data) = engine_with(EngineConfig::default(), 43);
    let same = Group::new(GroupId::new(0), data.sample_group(4, Some(0), 5)).unwrap();
    let mixed_members = {
        // One member from each community — the diverse caregiver case the
        // paper's discussion motivates.
        let mut v = Vec::new();
        for c in 0..4 {
            v.push(data.sample_group(1, Some(c), 11)[0]);
        }
        v
    };
    let mixed = Group::new(GroupId::new(1), mixed_members).unwrap();

    let rec_same = engine.recommend_for_group(&same, 8).unwrap();
    let rec_mixed = engine.recommend_for_group(&mixed, 8).unwrap();
    let mean = |r: &GroupRecommendation| {
        r.items.iter().map(|i| i.group_relevance).sum::<f64>() / r.items.len() as f64
    };
    assert!(
        mean(&rec_same) > mean(&rec_mixed),
        "cohesive group {:.3} should beat diverse group {:.3}",
        mean(&rec_same),
        mean(&rec_mixed)
    );
    // Fairness stays 1 for both (z ≥ |G|).
    assert!((rec_mixed.fairness - 1.0).abs() < 1e-12);
}

#[test]
fn fairness_aware_beats_plain_top_z_on_fairness() {
    let base = EngineConfig {
        pad_to_z: false,
        k: 5,
        ..Default::default()
    };
    let (engine_fair, data) = engine_with(base, 44);
    let (engine_plain, _) = engine_with(
        EngineConfig {
            algorithm: SelectionAlgorithm::PlainTopZ,
            ..base
        },
        44,
    );
    // A mixed group makes plain top-z likely to ignore someone.
    let mut members = Vec::new();
    for c in 0..4 {
        members.extend(data.sample_group(1, Some(c), 21 + u64::from(c)));
    }
    let group = Group::new(GroupId::new(0), members).unwrap();
    let mut fair_sum = 0.0;
    let mut plain_sum = 0.0;
    for z in [4usize, 6, 8] {
        fair_sum += engine_fair.recommend_for_group(&group, z).unwrap().fairness;
        plain_sum += engine_plain
            .recommend_for_group(&group, z)
            .unwrap()
            .fairness;
    }
    assert!(
        fair_sum >= plain_sum,
        "greedy fairness sum {fair_sum} < plain {plain_sum}"
    );
    assert!(
        (fair_sum - 3.0).abs() < 1e-12,
        "greedy is fully fair at z ≥ |G|"
    );
}

#[test]
fn single_user_and_group_paths_are_consistent() {
    let (engine, data) = engine_with(EngineConfig::default(), 45);
    let user = data.sample_group(1, Some(2), 3)[0];
    let personal = engine.recommend_for_user(user, 5).unwrap();
    assert!(!personal.is_empty());
    // The same user as a singleton group (padding on): the pool is the
    // same candidate set, so the padded package equals the user's top
    // items by group relevance = their own relevance.
    let group = Group::new(GroupId::new(0), [user]).unwrap();
    let rec = engine.recommend_for_group(&group, 5).unwrap();
    assert_eq!(rec.items.len(), 5);
    let package: Vec<ItemId> = rec.items.iter().map(|i| i.item).collect();
    let personal_items: Vec<ItemId> = personal.iter().map(|s| s.item).collect();
    assert_eq!(package, personal_items);
}

#[test]
fn pool_size_caps_candidates() {
    let (engine, data) = engine_with(
        EngineConfig {
            pool_size: Some(20),
            ..Default::default()
        },
        46,
    );
    let group = Group::new(GroupId::new(0), data.sample_group(3, None, 2)).unwrap();
    let rec = engine.recommend_for_group(&group, 5).unwrap();
    assert_eq!(rec.pool_size, 20);
    assert_eq!(rec.items.len(), 5);
}

#[test]
fn exact_and_swap_configurations_run_end_to_end() {
    for alg in [
        SelectionAlgorithm::Exact,
        SelectionAlgorithm::GreedyWithSwaps { max_passes: 5 },
    ] {
        let (engine, data) = engine_with(
            EngineConfig {
                algorithm: alg,
                pool_size: Some(12),
                k: 4,
                ..Default::default()
            },
            47,
        );
        let group = Group::new(GroupId::new(0), data.sample_group(3, None, 8)).unwrap();
        let rec = engine.recommend_for_group(&group, 4).unwrap();
        assert_eq!(rec.items.len(), 4, "{alg:?}");
        assert!((rec.fairness - 1.0).abs() < 1e-12, "{alg:?}");
    }
}

#[test]
fn oversized_group_is_rejected_cleanly() {
    // Sparse ratings so a 65-member group still leaves a scored candidate
    // pool — the rejection must come from the 64-member fairness-mask
    // limit, not from pool exhaustion.
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 200,
            num_items: 2_000,
            num_communities: 2,
            ratings_per_user: 10,
            seed: 48,
            ..Default::default()
        },
        &ontology,
    )
    .unwrap();
    let engine = RecommenderEngine::new(
        data.matrix.clone(),
        data.profiles.clone(),
        ontology,
        EngineConfig {
            delta: -1.0, // admit any defined similarity: maximum coverage
            min_overlap: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let members: Vec<UserId> = (0..65).map(UserId::new).collect();
    let group = Group::new(GroupId::new(0), members).unwrap();
    let err = engine.recommend_for_group(&group, 70).unwrap_err();
    assert!(err.to_string().contains("64"), "got: {err}");
}
