//! Cold-start integration: users with profiles but no ratings are
//! unreachable for ratings-based CF and rescued by the §V health-domain
//! measures — the paper's motivation, as an executable claim.

use fairrec::prelude::*;

/// Builds a dataset where `cold` users have profiles but zero ratings.
fn cold_fixture() -> (RatingMatrix, PhrStore, Vec<UserId>) {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 100,
            num_items: 200,
            num_communities: 4,
            ratings_per_user: 20,
            seed: 91,
            ..Default::default()
        },
        &ontology,
    )
    .unwrap();
    let cold: Vec<UserId> = (0..4)
        .map(|c| data.sample_group(1, Some(c), 500 + u64::from(c))[0])
        .collect();
    let mut builder =
        RatingMatrixBuilder::new().reserve_ids(data.matrix.num_users(), data.matrix.num_items());
    for t in data.matrix.to_triples() {
        if !cold.contains(&t.user) {
            builder.add(t.user, t.item, t.rating);
        }
    }
    (builder.build().unwrap(), data.profiles.clone(), cold)
}

#[test]
fn ratings_similarity_cannot_serve_cold_groups() {
    let (matrix, profiles, cold) = cold_fixture();
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let engine = RecommenderEngine::new(
        matrix,
        profiles,
        ontology,
        EngineConfig {
            similarity: SimilarityKind::Ratings,
            pad_to_z: false,
            ..Default::default()
        },
    )
    .unwrap();
    let group = Group::new(GroupId::new(0), cold).unwrap();
    // No member has co-rated anything with anyone: no peers, no
    // predictions, empty pool.
    let err = engine.recommend_for_group(&group, 6).unwrap_err();
    assert!(err.to_string().contains("no candidate"), "got: {err}");
}

#[test]
fn content_measures_rescue_cold_groups() {
    let (matrix, profiles, cold) = cold_fixture();
    for similarity in [
        SimilarityKind::Profile,
        SimilarityKind::Semantic,
        SimilarityKind::Hybrid {
            ratings: 1.0,
            profile: 1.0,
            semantic: 1.0,
        },
    ] {
        let ontology = fairrec::ontology::snomed::clinical_fragment();
        let engine = RecommenderEngine::new(
            matrix.clone(),
            profiles.clone(),
            ontology,
            EngineConfig {
                similarity,
                pad_to_z: false,
                ..Default::default()
            },
        )
        .unwrap();
        let group = Group::new(GroupId::new(0), cold.clone()).unwrap();
        let rec = engine.recommend_for_group(&group, 6).unwrap();
        assert_eq!(rec.items.len(), 6, "{similarity:?}");
        assert!(
            (rec.fairness - 1.0).abs() < 1e-12,
            "{similarity:?}: fairness {}",
            rec.fairness
        );
        assert!(rec.members.iter().all(|m| m.satisfied), "{similarity:?}");
    }
}

#[test]
fn cold_recommendations_align_with_the_cold_users_cohorts() {
    // The rescue is not just *any* package: a cold patient's package must
    // lean toward documents their own cohort rates highly.
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 100,
            num_items: 200,
            num_communities: 4,
            ratings_per_user: 20,
            seed: 92,
            ..Default::default()
        },
        &ontology,
    )
    .unwrap();
    let cold = data.sample_group(1, Some(2), 77)[0];
    let mut builder =
        RatingMatrixBuilder::new().reserve_ids(data.matrix.num_users(), data.matrix.num_items());
    for t in data.matrix.to_triples() {
        if t.user != cold {
            builder.add(t.user, t.item, t.rating);
        }
    }
    let matrix = builder.build().unwrap();
    // δ = 0 would admit *every* user (path similarity is always positive);
    // a focused neighbourhood is needed for cohort-aligned predictions —
    // the same δ regime the A2 ablation identifies as SS's sweet spot.
    let engine = RecommenderEngine::new(
        matrix,
        data.profiles.clone(),
        ontology,
        EngineConfig {
            similarity: SimilarityKind::Semantic,
            delta: 0.25,
            max_peers: Some(15),
            ..Default::default()
        },
    )
    .unwrap();
    let recs = engine.recommend_for_user(cold, 10).unwrap();
    assert!(!recs.is_empty());
    let own_cohort = recs
        .iter()
        .filter(|s| data.communities.item_community(s.item) == 2)
        .count();
    assert!(
        own_cohort * 2 > recs.len(),
        "only {own_cohort}/{} recommendations from the cold user's cohort",
        recs.len()
    );
}
