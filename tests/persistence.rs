//! Persistence integration: a dataset written to disk and reloaded drives
//! the engine to identical recommendations.

use fairrec::data::tsv;
use fairrec::ontology::codec;
use fairrec::prelude::*;
use std::io::BufReader;

#[test]
fn full_dataset_survives_disk_round_trip() {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 50,
            num_items: 90,
            ratings_per_user: 15,
            seed: 77,
            ..Default::default()
        },
        &ontology,
    )
    .unwrap();

    // Serialise everything to in-memory "files".
    let mut ontology_file = Vec::new();
    codec::write_ontology(&ontology, &mut ontology_file).unwrap();
    let mut ratings_file = Vec::new();
    tsv::write_ratings(&data.matrix, &mut ratings_file).unwrap();
    let mut profiles_file = Vec::new();
    tsv::write_profiles(&data.profiles, &ontology, &mut profiles_file).unwrap();

    // Reload.
    let ontology2 = codec::read_ontology(BufReader::new(ontology_file.as_slice())).unwrap();
    let matrix2 = tsv::read_ratings(
        BufReader::new(ratings_file.as_slice()),
        Some((data.matrix.num_users(), data.matrix.num_items())),
    )
    .unwrap();
    let profiles2 =
        tsv::read_profiles(BufReader::new(profiles_file.as_slice()), &ontology2).unwrap();

    assert_eq!(data.matrix, matrix2);
    assert_eq!(data.profiles.len(), profiles2.len());

    // Same recommendations from both copies, under a profile-driven
    // similarity so the reloaded ontology and profiles are exercised too.
    let config = EngineConfig {
        similarity: SimilarityKind::Hybrid {
            ratings: 1.0,
            profile: 1.0,
            semantic: 1.0,
        },
        ..Default::default()
    };
    let group_members = data.sample_group(3, None, 1);

    let engine1 =
        RecommenderEngine::new(data.matrix.clone(), data.profiles.clone(), ontology, config)
            .unwrap();
    let engine2 = RecommenderEngine::new(matrix2, profiles2, ontology2, config).unwrap();

    let group = Group::new(GroupId::new(0), group_members).unwrap();
    let rec1 = engine1.recommend_for_group(&group, 6).unwrap();
    let rec2 = engine2.recommend_for_group(&group, 6).unwrap();
    assert_eq!(rec1, rec2);
}

#[test]
fn files_are_human_readable() {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let mut buf = Vec::new();
    codec::write_ontology(&ontology, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.lines().next().unwrap().starts_with('#'));
    assert!(text.contains("Acute bronchitis"));
    assert!(text.contains("10509002"));
}
