//! The patient-facing loop of Fig. 1: search the expert-curated document
//! collection, read semantically-enhanced summaries, rate results — and
//! the caregiver's recommendation engine picks the ratings up.
//!
//! ```sh
//! cargo run --release --example document_search
//! ```

use fairrec::data::documents::{self, CorpusConfig};
use fairrec::prelude::*;
use fairrec::search::{CurationStatus, DocumentStore, QueryMode, SearchIndex, StoredDocument};
use fairrec::text::{key_terms, summarize, CorpusBuilder, Tokenizer};

fn main() -> Result<()> {
    // A generated corpus of curated health documents (topic-aligned with
    // the synthetic cohorts), with one unreviewed document to show the
    // expert gate.
    let corpus = documents::generate(CorpusConfig {
        num_documents: 60,
        num_topics: 4,
        words_per_document: 60,
        topic_word_percent: 55,
        seed: 12,
    });
    let mut store: DocumentStore = corpus
        .iter()
        .map(|d| StoredDocument {
            item: d.item,
            title: d.title.clone(),
            body: d.body.clone(),
            status: CurationStatus::Approved,
        })
        .collect();
    // The expert pulls one document back for review.
    store.set_status(ItemId::new(5), CurationStatus::Pending)?;

    let index = SearchIndex::build(&store);
    println!(
        "indexed {} approved documents ({} terms); 1 pending review\n",
        index.num_documents(),
        index.num_terms()
    );

    // --- a patient searches ---------------------------------------------
    for (query, mode) in [
        ("chemotherapy fatigue", QueryMode::Any),
        ("insulin glucose", QueryMode::All),
    ] {
        println!("query: {query:?} ({mode:?})");
        let hits = index.search(query, mode, 3);
        // Summaries come from a tf-idf model over the whole collection.
        let tokenizer = Tokenizer::new();
        let mut model = CorpusBuilder::new();
        for d in store.approved() {
            model.add_document(&tokenizer.tokenize(&format!("{} {}", d.title, d.body)));
        }
        let model = model.build();
        for hit in hits {
            let doc = store.get_required(hit.item)?;
            let toks = tokenizer.tokenize(&doc.body);
            let terms = key_terms(&model, &toks, 4);
            let summary = summarize(&model, &tokenizer, &doc.body, 1);
            println!("  {:>5.2}  {}", hit.score, doc.title);
            println!("         key terms: {}", terms.join(", "));
            if let Some(first) = summary.first() {
                let preview: String = first.chars().take(64).collect();
                println!("         summary: {preview}…");
            }
        }
        println!();
    }

    // --- ratings close the loop -------------------------------------------
    // The search results get rated by the cohort; the caregiver's engine
    // then recommends over the same item space.
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 80,
            num_items: 60,
            num_communities: 4,
            ratings_per_user: 15,
            seed: 12,
            ..Default::default()
        },
        &ontology,
    )?;
    let engine = RecommenderEngine::new(
        data.matrix.clone(),
        data.profiles.clone(),
        ontology,
        EngineConfig::default(),
    )?;
    let group = Group::new(GroupId::new(0), data.sample_group(3, Some(0), 2))?;
    let rec = engine.recommend_for_group(&group, 5)?;
    println!(
        "caregiver package for cohort-0 patients (fairness {:.2}):",
        rec.fairness
    );
    for item in &rec.items {
        let title = store
            .get(item.item)
            .map_or("(document)", |d| d.title.as_str());
        println!("  {:>5.2}  {}", item.group_relevance, title);
    }
    Ok(())
}
