//! Comparing the §V similarity measures on planted ground truth.
//!
//! The paper proposes three measures but (as a short paper) never
//! evaluates them. The synthetic plant makes that possible: users belong
//! to cohorts; a good measure should pick peers from the user's own
//! cohort (precision) and yield accurate hold-out predictions (MAE).
//!
//! ```sh
//! cargo run --release --example similarity_comparison
//! ```

use fairrec::engine::evaluation::{holdout_split, peer_recovery, prediction_quality};
use fairrec::prelude::*;
use fairrec::similarity::{HybridSimilarity, Rescale01, SemanticSimilarity};

fn main() -> Result<()> {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 150,
            num_items: 300,
            num_communities: 4,
            ratings_per_user: 28,
            seed: 55,
            ..Default::default()
        },
        &ontology,
    )?;
    let split = holdout_split(&data.matrix, 0.2, 7)?;
    println!(
        "dataset: {} ratings → train {} / test {}",
        data.matrix.num_ratings(),
        split.train.num_ratings(),
        split.test.len()
    );

    // Measures are built against the *training* matrix (ratings-based)
    // or the profile store (content-based; unaffected by the split).
    let ratings = RatingsSimilarity::new(&split.train);
    let profile = ProfileSimilarity::build(&data.profiles, &ontology);
    let semantic = SemanticSimilarity::new(&data.profiles, &ontology);
    let hybrid = HybridSimilarity::new()
        .with(Rescale01::new(RatingsSimilarity::new(&split.train)), 1.0)
        .with(&profile, 1.0)
        .with(SemanticSimilarity::new(&data.profiles, &ontology), 1.0);

    // Thresholds are per-measure: Pearson lives in [-1,1], the content
    // measures in [0,1] with different typical magnitudes.
    let selector_rs = PeerSelector::new(0.3)?.with_max_peers(25);
    let selector_cs = PeerSelector::new(0.15)?.with_max_peers(25);
    let selector_ss = PeerSelector::new(0.25)?.with_max_peers(25);
    let selector_hy = PeerSelector::new(0.4)?.with_max_peers(25);

    println!(
        "\n{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "measure", "peerPrec", "peers/u", "MAE", "RMSE", "coverage"
    );
    let sample = 60;
    let mut rows: Vec<(String, f64, f64, f64, f64, f64)> = Vec::new();
    {
        let r = peer_recovery(
            &split.train,
            &data.communities,
            &ratings,
            &selector_rs,
            sample,
        );
        let q = prediction_quality(&split, &ratings, &selector_rs);
        rows.push((
            "ratings (RS)".into(),
            r.precision,
            r.mean_peers,
            q.mae,
            q.rmse,
            q.coverage,
        ));
    }
    {
        let r = peer_recovery(
            &split.train,
            &data.communities,
            &profile,
            &selector_cs,
            sample,
        );
        let q = prediction_quality(&split, &profile, &selector_cs);
        rows.push((
            "profile tf-idf (CS)".into(),
            r.precision,
            r.mean_peers,
            q.mae,
            q.rmse,
            q.coverage,
        ));
    }
    {
        let r = peer_recovery(
            &split.train,
            &data.communities,
            &semantic,
            &selector_ss,
            sample,
        );
        let q = prediction_quality(&split, &semantic, &selector_ss);
        rows.push((
            "semantic (SS)".into(),
            r.precision,
            r.mean_peers,
            q.mae,
            q.rmse,
            q.coverage,
        ));
    }
    {
        let r = peer_recovery(
            &split.train,
            &data.communities,
            &hybrid,
            &selector_hy,
            sample,
        );
        let q = prediction_quality(&split, &hybrid, &selector_hy);
        rows.push((
            "hybrid (RS+CS+SS)".into(),
            r.precision,
            r.mean_peers,
            q.mae,
            q.rmse,
            q.coverage,
        ));
    }
    for (name, prec, peers, mae, rmse, cov) in rows {
        println!("{name:<22} {prec:>10.3} {peers:>10.1} {mae:>10.3} {rmse:>10.3} {cov:>10.3}");
    }
    println!(
        "\nAll measures recover the planted cohorts well above the {}-cohort chance level of {:.2}.",
        data.communities.num_communities(),
        1.0 / f64::from(data.communities.num_communities())
    );
    Ok(())
}
