//! Fairness evaluation harness: runs a deterministic recommend stream
//! through the serving-path [`FairnessMonitor`], prints the offline
//! evaluation summary, the z trade-off curve, and the monitor's
//! threshold report — and **exits non-zero when a threshold is
//! breached**, which is how the CI `fairness` job turns the paper's
//! claim ("group fairness without destroying per-member quality") into
//! a hard gate.
//!
//! The workload is [`fairrec_bench::fairness_fixture`] — the same input
//! whose metric rows `benches/fairness.rs` freezes into the committed
//! `BENCH_*.json` trajectory.
//!
//! ```sh
//! cargo run --release --example fairness_eval
//! ```
//!
//! [`FairnessMonitor`]: fairrec::metrics::FairnessMonitor

use fairrec::engine::RecommendationObserver;
use fairrec::metrics::{evaluate, tradeoff_curve, FairnessMonitor, MonitorConfig};
use fairrec::prelude::*;
use fairrec_bench::fairness_fixture;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("fairness_eval: monitor report FAILED");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fairness_eval: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool> {
    let (data, groups) = fairness_fixture();
    let mut engine = RecommenderEngine::new(
        data.matrix,
        data.profiles,
        fairrec::ontology::snomed::clinical_fragment(),
        EngineConfig::default(),
    )?;

    // Offline evaluation + the z trade-off curve.
    println!(
        "{:>3} | {:>10} {:>10} {:>12} {:>12}",
        "z", "fairness", "value", "member util", "worst member"
    );
    for point in tradeoff_curve(&engine, &groups, &[2, 4, 8])? {
        println!(
            "{:>3} | {:>10.4} {:>10.4} {:>12.4} {:>12.4}",
            point.z,
            point.fairness,
            point.value,
            point.mean_member_utility,
            point.worst_member_utility,
        );
    }
    let summary = evaluate(&engine, &groups, 4)?;
    println!(
        "\nrun summary (z = 4, {} groups): exposure gap {:.4}, max member CV {:.4}, \
         max group↔member disparity {:.4}",
        summary.evaluated,
        summary.exposure.gap,
        summary.max_member_cv,
        summary.max_group_member_disparity,
    );
    for (i, seg) in summary.exposure.segments.iter().enumerate() {
        println!(
            "  activity segment {i}: {:>4} member-slots observed, {:>4} satisfied \
             (exposure {:.4})",
            seg.observed,
            seg.satisfied,
            seg.exposure()
        );
    }

    // The serving-path monitor over the same stream.
    let monitor = Arc::new(FairnessMonitor::new(
        MonitorConfig::default(),
        engine.ratings().reads(),
    ));
    engine.set_observer(Arc::clone(&monitor) as Arc<dyn RecommendationObserver>);
    let requests: Vec<(Group, usize)> = groups.iter().map(|g| (g.clone(), 4)).collect();
    for outcome in engine.recommend_requests(&requests) {
        outcome?;
    }

    let stats = monitor.stats();
    let report = monitor.report();
    println!(
        "\nmonitor: {} observed, {} evaluated, {} violations",
        stats.observed, stats.evaluated, stats.violations
    );
    for check in &report.checks {
        println!(
            "  {:<28} {:>8.4} vs threshold {:>6.2} → {}",
            check.name,
            check.value,
            check.threshold,
            if check.passed { "pass" } else { "FAIL" },
        );
    }
    println!(
        "\nreport: {}",
        if report.passed { "PASSED" } else { "FAILED" }
    );
    Ok(report.passed)
}
