//! The §IV MapReduce decomposition, job by job (Fig. 2).
//!
//! Runs the Job 0–3 pipeline over a synthetic dataset, prints per-job
//! metrics, verifies the result against the in-memory reference, and
//! finishes with the centralised Algorithm 1 — exactly the paper's
//! deployment story.
//!
//! ```sh
//! cargo run --release --example mapreduce_pipeline
//! ```

use fairrec::core::pool::CandidatePool;
use fairrec::core::predictions::{compute_group_predictions, GroupPredictionConfig};
use fairrec::mapreduce::{mapreduce_group_predictions, JobConfig, PipelineConfig};
use fairrec::prelude::*;

fn main() -> Result<()> {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 300,
            num_items: 600,
            num_communities: 5,
            ratings_per_user: 40,
            seed: 99,
            ..Default::default()
        },
        &ontology,
    )?;
    let group = Group::new(GroupId::new(0), data.sample_group(4, None, 13))?;
    println!(
        "dataset: {} ratings; group: {:?}",
        data.matrix.num_ratings(),
        group.members()
    );

    let config = PipelineConfig {
        delta: 0.0,
        job: JobConfig::with_workers(2),
        ..Default::default()
    };
    let (predictions, report) = mapreduce_group_predictions(
        data.matrix.to_triples(),
        data.matrix.num_items(),
        &group,
        &config,
    )?;

    println!("\nper-job metrics:");
    for (name, m) in [
        ("job 0 (user means)   ", report.job0),
        ("job 1 (candidates)   ", report.job1),
        ("job 2 (similarities) ", report.job2),
        ("job 3 (relevance)    ", report.job3),
    ] {
        println!(
            "  {name} in={:<6} pairs={:<7} groups={:<6} out={:<6} map={:?} reduce={:?}",
            m.map_input_records,
            m.map_output_pairs,
            m.reduce_groups,
            m.reduce_output_records,
            m.map_duration,
            m.reduce_duration,
        );
    }
    println!(
        "  similarity edges ≥ δ: {}; scored candidates: {}; total wall-clock: {:?}",
        report.sim_edges,
        report.rated_candidates,
        report.total_duration()
    );

    // Verify against the in-memory reference (they must agree exactly).
    let measure = RatingsSimilarity::new(&data.matrix);
    let selector = PeerSelector::new(config.delta)?;
    let reference = compute_group_predictions(
        &data.matrix,
        &measure,
        &selector,
        &group,
        GroupPredictionConfig::default(),
    )?;
    assert_eq!(reference, predictions);
    println!("\nMapReduce output == in-memory reference ✓");

    // Centralised Algorithm 1 over the assembled pool (the paper: "we
    // perform Algorithm 1 in a centralized manner").
    let pool = CandidatePool::from_predictions(&predictions, Some(30))?;
    let evaluator = FairnessEvaluator::new(&pool, 10)?;
    let selection = algorithm1(&pool, 8, 10);
    println!(
        "\nfinal package (m = {}, z = 8): fairness {:.2}, value {:.2}",
        pool.num_items(),
        evaluator.fairness(&selection.positions),
        evaluator.value(&pool, &selection.positions)
    );
    for &j in &selection.positions {
        println!(
            "  {} (group relevance {:.2})",
            pool.items()[j],
            pool.group_relevance(j)
        );
    }
    Ok(())
}
