//! Quickstart: generate a synthetic patient cohort, stand up the engine,
//! and serve a caregiver a fair package of health documents.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fairrec::prelude::*;

fn main() -> Result<()> {
    // 1. A clinical ontology (SNOMED-CT-like fragment) and a seeded
    //    synthetic cohort: 200 patients, 400 documents, 4 latent cohorts.
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(SyntheticConfig::default(), &ontology)?;
    let stats = data.matrix.stats();
    println!(
        "dataset: {} users × {} items, {} ratings (density {:.2}%)",
        stats.num_users,
        stats.num_items,
        stats.num_ratings,
        stats.density * 100.0
    );

    // 2. The engine with the paper's default model: Pearson similarity,
    //    δ = 0, k = 10, average aggregation, Algorithm 1 selection.
    let engine = RecommenderEngine::new(
        data.matrix.clone(),
        data.profiles.clone(),
        ontology,
        EngineConfig::default(),
    )?;

    // 3. A caregiver responsible for four patients asks for 8 documents.
    let group = Group::new(GroupId::new(0), data.sample_group(4, None, 7))?;
    println!("\ncaregiver group: {:?}", group.members());
    let rec = engine.recommend_for_group(&group, 8)?;

    println!(
        "\npackage (fairness {:.2}, value {:.2}, pool m = {}):",
        rec.fairness, rec.value, rec.pool_size
    );
    println!("{:<6} {:>10}  per-member relevance", "item", "groupRel");
    for item in &rec.items {
        let members: Vec<String> = item
            .member_relevance
            .iter()
            .map(|s| s.map_or_else(|| "  -  ".into(), |v| format!("{v:.2}")))
            .collect();
        println!(
            "{:<6} {:>10.2}  [{}]{}",
            item.item.to_string(),
            item.group_relevance,
            members.join(", "),
            if item.padded { "  (padded)" } else { "" }
        );
    }

    println!("\nper-member satisfaction:");
    for m in &rec.members {
        println!(
            "  {}: satisfied = {}, best package rank = {:?}, personal best = {}",
            m.user,
            m.satisfied,
            m.best_package_rank,
            m.personal_best
                .map_or_else(|| "-".into(), |s| format!("{} ({:.2})", s.item, s.score)),
        );
    }

    // 4. Single-user recommendations for one of the members (§III-A).
    let user = group.members()[0];
    let personal = engine.recommend_for_user(user, 5)?;
    println!("\ntop-5 for {user} alone:");
    for s in personal {
        println!("  {} ({:.2})", s.item, s.score);
    }
    Ok(())
}
