//! The paper's worked example (Table I + §V-C), end to end.
//!
//! Reconstructs the three patients of Table I, shows the ontology path
//! computations of §V-C (path(acute bronchitis, chest pain) = 5,
//! path(tracheobronchitis, acute bronchitis) = 2), compares all three
//! similarity measures on them, and then serves their caregiver a fair
//! package over a small document collection.
//!
//! ```sh
//! cargo run --release --example caregiver_group
//! ```

use fairrec::ontology::snomed::{clinical_fragment, labels};
use fairrec::phr::table1;
use fairrec::prelude::*;
use fairrec::similarity::SemanticSimilarity;

fn main() -> Result<()> {
    let ontology = clinical_fragment();
    let patients = table1::patients(&ontology);

    // --- Table I ------------------------------------------------------------
    println!("Table I — the three patients:");
    for p in &patients {
        println!("  {}:", p.user);
        for &c in &p.problems {
            let concept = ontology.concept(c);
            println!("    problem    {} [{}]", concept.label, concept.code);
        }
        for m in &p.medications {
            println!("    medication {m}");
        }
        println!("    gender     {}", p.gender.as_token());
        println!(
            "    age        {}",
            p.age.map_or("-".into(), |a| a.to_string())
        );
    }

    // --- §V-C worked example -------------------------------------------------
    let acute = ontology
        .by_label(labels::ACUTE_BRONCHITIS)
        .expect("in fragment");
    let chest = ontology.by_label(labels::CHEST_PAIN).expect("in fragment");
    let trach = ontology
        .by_label(labels::TRACHEOBRONCHITIS)
        .expect("in fragment");
    println!("\n§V-C shortest paths in the ontology:");
    for (a, b) in [(acute, chest), (trach, acute)] {
        let path = ontology.path(a, b);
        let hops: Vec<&str> = path
            .iter()
            .map(|&c| ontology.concept(c).label.as_str())
            .collect();
        println!(
            "  {} ↔ {}: length {}\n    {}",
            ontology.concept(a).label,
            ontology.concept(b).label,
            ontology.path_len(a, b),
            hops.join(" → ")
        );
    }

    // --- the three similarity measures on Table I ----------------------------
    let store: PhrStore = patients.into_iter().collect();
    let semantic = SemanticSimilarity::new(&store, &ontology);
    let profile = ProfileSimilarity::build(&store, &ontology);
    println!("\nsimilarity of patient 1 to patients 2 and 3:");
    println!("  measure             sim(p1,p2)   sim(p1,p3)");
    for (name, s12, s13) in [
        (
            "semantic (SS)",
            semantic.similarity(UserId::new(0), UserId::new(1)),
            semantic.similarity(UserId::new(0), UserId::new(2)),
        ),
        (
            "profile tf-idf (CS)",
            profile.similarity(UserId::new(0), UserId::new(1)),
            profile.similarity(UserId::new(0), UserId::new(2)),
        ),
    ] {
        println!(
            "  {:<19} {:>10}   {:>10}",
            name,
            s12.map_or("-".into(), |v| format!("{v:.4}")),
            s13.map_or("-".into(), |v| format!("{v:.4}")),
        );
    }
    println!("  → patient 1 is closer to patient 3, as the paper concludes.");

    // --- a caregiver package over a small rated collection -------------------
    // The three patients join a synthetic ward so collaborative filtering
    // has peers to draw on; their caregiver asks for 6 documents.
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 60,
            num_items: 120,
            num_communities: 3,
            ratings_per_user: 18,
            seed: 2017,
            ..Default::default()
        },
        &ontology,
    )?;
    let engine = RecommenderEngine::new(
        data.matrix.clone(),
        data.profiles.clone(),
        clinical_fragment(),
        EngineConfig::default(),
    )?;
    let group = Group::new(
        GroupId::new(0),
        [UserId::new(0), UserId::new(1), UserId::new(2)],
    )?;
    let rec = engine.recommend_for_group(&group, 6)?;
    println!(
        "\ncaregiver package for the ward ({} candidates, fairness {:.2}):",
        rec.pool_size, rec.fairness
    );
    for item in &rec.items {
        println!(
            "  {} (group relevance {:.2})",
            item.item, item.group_relevance
        );
    }
    Ok(())
}
