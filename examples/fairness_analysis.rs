//! Fairness analysis: what does the fairness-aware objective buy?
//!
//! Sweeps the package size z for a *diverse* caregiver group (one patient
//! from each cohort — the hard case §III-C motivates) and compares
//! Algorithm 1 against plain top-z on fairness, value, and the least
//! satisfied member. Also demonstrates Proposition 1 empirically.
//!
//! ```sh
//! cargo run --release --example fairness_analysis
//! ```

use fairrec::core::pool::CandidatePool;
use fairrec::core::predictions::{compute_group_predictions, GroupPredictionConfig};
use fairrec::prelude::*;

fn main() -> Result<()> {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 160,
            num_items: 320,
            num_communities: 4,
            ratings_per_user: 30,
            seed: 31,
            ..Default::default()
        },
        &ontology,
    )?;

    // One member from each cohort: interests barely overlap.
    let mut members = Vec::new();
    for c in 0..4 {
        members.extend(data.sample_group(1, Some(c), 100 + u64::from(c)));
    }
    let group = Group::new(GroupId::new(0), members)?;
    println!(
        "diverse group (one patient per cohort): {:?}",
        group.members()
    );

    let measure = RatingsSimilarity::new(&data.matrix);
    let selector = PeerSelector::new(0.0)?;
    let predictions = compute_group_predictions(
        &data.matrix,
        &measure,
        &selector,
        &group,
        GroupPredictionConfig::default(),
    )?;
    let pool = CandidatePool::from_predictions(&predictions, Some(40))?;
    let k = 5;
    let evaluator = FairnessEvaluator::new(&pool, k)?;

    println!(
        "\n{:>3} | {:^26} | {:^26}",
        "z", "Algorithm 1 (fairness-aware)", "plain top-z"
    );
    println!(
        "{:>3} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "", "fairness", "value", "minSat", "fairness", "value", "minSat"
    );
    for z in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let fair = algorithm1(&pool, z, k);
        let plain = plain_top_z(&pool, z);
        let min_sat = |sel: &fairrec::core::greedy::Selection| {
            (0..pool.num_members())
                .map(|m| {
                    sel.positions
                        .iter()
                        .filter_map(|&j| pool.member_relevance(m, j))
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .fold(f64::INFINITY, f64::min)
        };
        println!(
            "{z:>3} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
            evaluator.fairness(&fair.positions),
            evaluator.value(&pool, &fair.positions),
            min_sat(&fair),
            evaluator.fairness(&plain.positions),
            evaluator.value(&pool, &plain.positions),
            min_sat(&plain),
        );
    }
    println!(
        "\nProposition 1: for z ≥ |G| = {} Algorithm 1's fairness column is 1.00.",
        group.len()
    );

    // Aggregation semantics: min (veto) vs average (majority).
    println!("\naggregation ablation (same group, z = 6):");
    for aggregation in [Aggregation::Average, Aggregation::Min] {
        let preds = compute_group_predictions(
            &data.matrix,
            &measure,
            &selector,
            &group,
            GroupPredictionConfig {
                aggregation,
                missing: MissingPolicy::Skip,
                ..Default::default()
            },
        )?;
        let pool = CandidatePool::from_predictions(&preds, Some(40))?;
        let ev = FairnessEvaluator::new(&pool, k)?;
        let sel = algorithm1(&pool, 6, k);
        let sum: f64 = sel.positions.iter().map(|&j| pool.group_relevance(j)).sum();
        println!(
            "  {:<8} fairness {:.2}, Σ relevanceG {:.2}, value {:.2}",
            aggregation.name(),
            ev.fairness(&sel.positions),
            sum,
            ev.value(&pool, &sel.positions)
        );
    }
    println!("  (min-aggregation scores are lower by construction: the veto bites.)");
    Ok(())
}
