//! Cold start: why the paper exploits health-related information *"in
//! addition to the traditional ratings"* (§V).
//!
//! A patient who just joined the platform has a PHR profile but **no
//! ratings**. Pearson similarity is undefined for them — pure
//! collaborative filtering has nothing to work with — while the profile
//! (CS) and semantic (SS) measures still find peers, so Equation 1 can
//! predict from the peers' ratings.
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use fairrec::prelude::*;

fn main() -> Result<()> {
    let ontology = fairrec::ontology::snomed::clinical_fragment();
    let mut data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: 120,
            num_items: 240,
            num_communities: 4,
            ratings_per_user: 25,
            seed: 77,
            ..Default::default()
        },
        &ontology,
    )?;

    // Strip every rating of four "new" patients (one per cohort), keeping
    // their PHR profiles. They are the cold-start group.
    let mut cold = Vec::new();
    for c in 0..4 {
        cold.push(data.sample_group(1, Some(c), 300 + u64::from(c))[0]);
    }
    let mut builder =
        RatingMatrixBuilder::new().reserve_ids(data.matrix.num_users(), data.matrix.num_items());
    for t in data.matrix.to_triples() {
        if !cold.contains(&t.user) {
            builder.add(t.user, t.item, t.rating);
        }
    }
    data.matrix = builder.build()?;
    println!("cold patients (profiles only, zero ratings): {cold:?}\n");

    let group = Group::new(GroupId::new(0), cold.clone())?;
    for (label, similarity) in [
        ("ratings (RS)", SimilarityKind::Ratings),
        ("profile (CS)", SimilarityKind::Profile),
        ("semantic (SS)", SimilarityKind::Semantic),
        (
            "hybrid",
            SimilarityKind::Hybrid {
                ratings: 1.0,
                profile: 1.0,
                semantic: 1.0,
            },
        ),
    ] {
        let engine = RecommenderEngine::new(
            data.matrix.clone(),
            data.profiles.clone(),
            ontology.clone(),
            EngineConfig {
                similarity,
                pad_to_z: false,
                ..Default::default()
            },
        )?;
        match engine.recommend_for_group(&group, 8) {
            Ok(rec) => {
                let satisfied = rec.members.iter().filter(|m| m.satisfied).count();
                println!(
                    "{label:<14} package of {} items, fairness {:.2} ({satisfied}/4 members see a top-k item)",
                    rec.items.len(),
                    rec.fairness,
                );
            }
            Err(err) => {
                println!("{label:<14} no recommendation possible: {err}");
            }
        }
    }

    println!(
        "\nReading: with ratings-only similarity the cold group has no peers and no\n\
         package at all; the profile and semantic measures of §V rescue them — the\n\
         paper's motivation for looking beyond co-rating history in the health domain."
    );
    Ok(())
}
