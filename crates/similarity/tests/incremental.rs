//! Property tests for the incremental update path: a `PeerIndex`
//! maintained through random interleavings of rating inserts, updates,
//! and removals — each followed by [`PeerIndex::apply_delta`] — must end
//! up **bitwise identical** to a from-scratch `warm_symmetric` over the
//! final matrix, across thresholds, `min_overlap` settings, and peer
//! caps. Two maintenance scenarios are covered:
//!
//! * a fully warm index (the serving steady state: warm once, then
//!   stream deltas), and
//! * a lazily filled index where only each mutation's user is cached
//!   pre-mutation (the weakest state `apply_delta` is exact in —
//!   the engine's `ingest_rating` pre-caches exactly this way).

use fairrec_similarity::{DeltaOutcome, PeerIndex, PeerSelector, RatingsSimilarity};
use fairrec_types::{ItemId, Parallelism, Rating, RatingMatrix, RatingMatrixBuilder, UserId};
use proptest::prelude::*;
use std::collections::BTreeMap;

const MAX_USERS: u32 = 14;
const MAX_ITEMS: u32 = 20;

type Relation = BTreeMap<(u32, u32), f64>;

/// `(user, item, score, op-kind)` — the kind only disambiguates
/// update-vs-remove when the pair already exists; missing pairs insert.
type Op = (u32, u32, f64, u8);

fn arb_base() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_map((0u32..MAX_USERS, 0u32..MAX_ITEMS), 1.0f64..=5.0, 0..120)
        .prop_map(|m| {
            m.into_iter()
                .map(|(k, s)| (k, (s * 2.0).round() / 2.0))
                .collect()
        })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..MAX_USERS, 0u32..MAX_ITEMS, 1.0f64..=5.0, 0u8..3),
        1..25,
    )
}

fn build(relation: &Relation) -> RatingMatrix {
    let mut b = RatingMatrixBuilder::new().reserve_ids(MAX_USERS, MAX_ITEMS);
    for (&(u, i), &s) in relation {
        b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
    }
    b.build().unwrap()
}

/// Applies one op to the live matrix + shadow relation; returns the
/// affected user.
fn apply_op(matrix: &mut RatingMatrix, relation: &mut Relation, op: Op) -> UserId {
    let (u, i, s, kind) = op;
    let (user, item) = (UserId::new(u), ItemId::new(i));
    let s = (s * 2.0).round() / 2.0;
    let rating = Rating::new(s).unwrap();
    match (relation.contains_key(&(u, i)), kind) {
        (false, _) => {
            matrix.insert_rating(user, item, rating).unwrap();
            relation.insert((u, i), s);
        }
        (true, 0) => {
            matrix.remove_rating(user, item).unwrap();
            relation.remove(&(u, i));
        }
        (true, _) => {
            matrix.update_rating(user, item, rating).unwrap();
            relation.insert((u, i), s);
        }
    }
    user
}

/// Every cached list of `maintained` must carry exactly the bits a cold
/// symmetric warm over `matrix` produces, and capped/masked views must
/// agree too.
fn assert_matches_cold_rebuild(
    maintained: &PeerIndex,
    matrix: &RatingMatrix,
    selector: PeerSelector,
    min_overlap: usize,
) {
    let measure = RatingsSimilarity::new(matrix).with_min_overlap(min_overlap);
    let cold = PeerIndex::new(selector, MAX_USERS);
    cold.warm_symmetric(&measure, Parallelism::Sequential);
    for u in (0..MAX_USERS).map(UserId::new) {
        let want = cold.cached_full(u).unwrap();
        let got = maintained.full_peers(&measure, u);
        assert_eq!(got.len(), want.len(), "user {u}: peer count");
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.0, w.0, "user {u}: peer id");
            assert_eq!(
                g.1.to_bits(),
                w.1.to_bits(),
                "user {u}, peer {}: similarity bits",
                g.0
            );
        }
    }
    // Request-time views (mask + cap) are pure list operations over the
    // full lists, so equality there follows — assert it anyway for the
    // capped selectors, where a moved edge can promote/evict a peer.
    let group = [UserId::new(0), UserId::new(1), UserId::new(2)];
    assert_eq!(
        maintained.group_peers(&measure, &group),
        cold.group_peers(&measure, &group)
    );
}

/// Threshold / overlap / cap corners: δ below, at, and above typical
/// Pearson mass, `min_overlap` of 1 (single-item correlations admitted)
/// and 3, and a tight peer cap.
fn selector_grid() -> Vec<(PeerSelector, usize)> {
    vec![
        (PeerSelector::new(-1.0).unwrap(), 1),
        (PeerSelector::new(0.0).unwrap(), 2),
        (PeerSelector::new(0.35).unwrap(), 3),
        (PeerSelector::new(0.0).unwrap().with_max_peers(2), 2),
        (PeerSelector::new(-0.5).unwrap().with_max_peers(4), 1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm steady state: warm once, stream deltas, never rebuild.
    #[test]
    fn warm_index_with_deltas_equals_cold_rebuild(
        base in arb_base(),
        ops in arb_ops(),
    ) {
        for (selector, min_overlap) in selector_grid() {
            let mut relation = base.clone();
            let mut matrix = build(&relation);
            let index = PeerIndex::new(selector, MAX_USERS);
            index.warm_symmetric(
                &RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap),
                Parallelism::Sequential,
            );
            for &op in &ops {
                let user = apply_op(&mut matrix, &mut relation, op);
                let measure =
                    RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
                let outcome = index.apply_delta(&measure, user);
                prop_assert!(
                    matches!(outcome, DeltaOutcome::Spliced { .. }),
                    "fully warm index must take the exact splice, got {outcome:?}"
                );
            }
            prop_assert_eq!(index.num_cached(), MAX_USERS as usize);
            assert_matches_cold_rebuild(&index, &matrix, selector, min_overlap);
        }
    }

    /// Lazy state: only each mutation's user is guaranteed cached before
    /// the mutation (the engine's pre-cache discipline); everything else
    /// fills lazily between or after deltas.
    #[test]
    fn lazily_filled_index_with_deltas_equals_cold_rebuild(
        base in arb_base(),
        ops in arb_ops(),
        warm_probe in 0u32..MAX_USERS,
    ) {
        let (selector, min_overlap) = (PeerSelector::new(0.0).unwrap(), 2);
        let mut relation = base.clone();
        let mut matrix = build(&relation);
        let index = PeerIndex::new(selector, MAX_USERS);
        // Partially warm the index through an ordinary lazy read.
        {
            let measure = RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
            let _ = index.full_peers(&measure, UserId::new(warm_probe));
        }
        for &op in &ops {
            let user = op_user(op);
            // The engine's discipline: materialise the user's pre-change
            // list while the matrix still holds pre-change data.
            if index.num_cached() > 0 {
                let measure =
                    RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
                let _ = index.full_peers(&measure, user);
            }
            let user = apply_op(&mut matrix, &mut relation, op);
            let measure = RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
            let outcome = index.apply_delta(&measure, user);
            prop_assert!(
                matches!(
                    outcome,
                    DeltaOutcome::Spliced { .. } | DeltaOutcome::ColdIndex
                ),
                "pre-cached delta must be exact, got {outcome:?}"
            );
        }
        assert_matches_cold_rebuild(&index, &matrix, selector, min_overlap);
    }
}

fn op_user(op: Op) -> UserId {
    UserId::new(op.0)
}

/// The regression the delta design hinges on: an insert shifts `µ_u`, so
/// peers who co-rate *other* items — never the touched one — must still
/// be respliced. Re-scoring only `U(i)` of the inserted item would leave
/// u1's list stale here.
#[test]
fn mean_shift_reaches_peers_beyond_the_touched_item() {
    let mut b = RatingMatrixBuilder::new().reserve_ids(3, 6);
    // u0 and u1 co-rate i0/i1 with variance; u2 rates nothing shared.
    for (u, i, s) in [
        (0u32, 0u32, 5.0),
        (0, 1, 2.0),
        (1, 0, 4.0),
        (1, 1, 1.0),
        (2, 5, 3.0),
    ] {
        b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
    }
    let mut matrix = b.build().unwrap();
    let selector = PeerSelector::new(-1.0).unwrap();
    let index = PeerIndex::new(selector, 3);
    index.warm_symmetric(&RatingsSimilarity::new(&matrix), Parallelism::Sequential);
    let before = index.cached_full(UserId::new(1)).unwrap();

    // Insert (u0, i3): nobody else rated i3, yet µ_0 moves from 3.5 to 3.
    matrix
        .insert_rating(UserId::new(0), ItemId::new(3), Rating::new(2.0).unwrap())
        .unwrap();
    let measure = RatingsSimilarity::new(&matrix);
    assert!(matches!(
        index.apply_delta(&measure, UserId::new(0)),
        DeltaOutcome::Spliced { .. }
    ));

    let cold = PeerIndex::new(selector, 3);
    cold.warm_symmetric(&measure, Parallelism::Sequential);
    let after = index.cached_full(UserId::new(1)).unwrap();
    let want = cold.cached_full(UserId::new(1)).unwrap();
    assert_eq!(after, want, "u1's respliced list must match a cold rebuild");
    assert_ne!(
        before.as_ref(),
        after.as_ref(),
        "the fixture must actually move sim(u0, u1), or this test is vacuous"
    );
}
