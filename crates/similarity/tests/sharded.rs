//! Property tests for the sharding layer: a [`ShardedPeerIndex`] over a
//! hash-partitioned [`ShardedRatingMatrix`] must be **bitwise
//! indistinguishable** from the monolithic [`PeerIndex`] for every shard
//! count in {1, 2, 3, 8} — after the per-shard-pair symmetric warm,
//! after lazy scatter-gather fills, through random interleavings of
//! insert/update/remove deltas routed to the owning shard, and across a
//! new-user growth event landing in the correct shard.

use fairrec_similarity::{
    DeltaOutcome, PeerIndex, PeerSelector, RatingsSimilarity, ShardedPeerIndex,
    ShardedRatingsSimilarity,
};
use fairrec_types::{
    ItemId, Parallelism, Rating, RatingMatrix, RatingMatrixBuilder, ShardSpec, ShardedRatingMatrix,
    UserId,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const MAX_USERS: u32 = 14;
const MAX_ITEMS: u32 = 20;
const SHARD_COUNTS: [u32; 4] = [1, 2, 3, 8];

type Relation = BTreeMap<(u32, u32), f64>;

/// `(user, item, score, op-kind)` — the kind only disambiguates
/// update-vs-remove when the pair already exists; missing pairs insert.
type Op = (u32, u32, f64, u8);

fn arb_base() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_map((0u32..MAX_USERS, 0u32..MAX_ITEMS), 1.0f64..=5.0, 0..120)
        .prop_map(|m| {
            m.into_iter()
                .map(|(k, s)| (k, (s * 2.0).round() / 2.0))
                .collect()
        })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..MAX_USERS, 0u32..MAX_ITEMS, 1.0f64..=5.0, 0u8..3),
        1..20,
    )
}

fn build(relation: &Relation) -> RatingMatrix {
    let mut b = RatingMatrixBuilder::new().reserve_ids(MAX_USERS, MAX_ITEMS);
    for (&(u, i), &s) in relation {
        b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
    }
    b.build().unwrap()
}

/// Asserts every user's list in `sharded` carries exactly the bits of
/// the monolithic `mono` list, plus the masked group views.
fn assert_lists_match(
    sharded: &ShardedPeerIndex,
    measure: &ShardedRatingsSimilarity<&ShardedRatingMatrix>,
    mono: &PeerIndex,
    mono_measure: &RatingsSimilarity<&RatingMatrix>,
    label: &str,
) {
    for u in (0..MAX_USERS).map(UserId::new) {
        let want = mono.full_peers(mono_measure, u);
        let got = sharded.full_peers(measure, u);
        assert_eq!(got.len(), want.len(), "{label}: user {u} peer count");
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.0, w.0, "{label}: user {u} peer id");
            assert_eq!(
                g.1.to_bits(),
                w.1.to_bits(),
                "{label}: user {u}, peer {} similarity bits",
                g.0
            );
        }
    }
    let group = [UserId::new(0), UserId::new(1), UserId::new(2)];
    assert_eq!(
        sharded.group_peers(measure, &group),
        mono.group_peers(mono_measure, &group),
        "{label}: masked group views"
    );
}

/// Applies one op to the sharded matrix (owner-routed) and the shadow
/// relation; returns the affected user.
fn apply_op(sharded: &mut ShardedRatingMatrix, relation: &mut Relation, op: Op) -> UserId {
    let (u, i, s, kind) = op;
    let (user, item) = (UserId::new(u), ItemId::new(i));
    let s = (s * 2.0).round() / 2.0;
    let rating = Rating::new(s).unwrap();
    match (relation.contains_key(&(u, i)), kind) {
        (false, _) => {
            sharded.insert_rating(user, item, rating).unwrap();
            relation.insert((u, i), s);
        }
        (true, 0) => {
            sharded.remove_rating(user, item).unwrap();
            relation.remove(&(u, i));
        }
        (true, _) => {
            sharded.update_rating(user, item, rating).unwrap();
            relation.insert((u, i), s);
        }
    }
    user
}

/// Threshold / overlap / cap corners, mirroring the incremental suite.
fn selector_grid() -> Vec<(PeerSelector, usize)> {
    vec![
        (PeerSelector::new(-1.0).unwrap(), 1),
        (PeerSelector::new(0.0).unwrap(), 2),
        (PeerSelector::new(0.35).unwrap(), 3),
        (PeerSelector::new(0.0).unwrap().with_max_peers(2), 2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The per-shard-pair symmetric warm produces, for every shard
    /// count, exactly the monolithic warm's lists.
    #[test]
    fn sharded_warm_equals_monolithic(base in arb_base()) {
        let matrix = build(&base);
        for (selector, min_overlap) in selector_grid() {
            let mono_measure = RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
            let mono = PeerIndex::new(selector, MAX_USERS);
            mono.warm_symmetric(&mono_measure, Parallelism::Sequential);
            for shards in SHARD_COUNTS {
                let part = ShardedRatingMatrix::from_matrix(
                    &matrix,
                    ShardSpec::new(shards).unwrap(),
                )
                .unwrap();
                let measure =
                    ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap);
                let index = ShardedPeerIndex::new(selector, part.spec(), MAX_USERS);
                prop_assert_eq!(
                    index.warm_symmetric(&measure, Parallelism::Sequential),
                    MAX_USERS as usize
                );
                assert_lists_match(&index, &measure, &mono, &mono_measure, &format!("S={shards}"));
            }
        }
    }

    /// Lazy scatter-gather fills (no warm at all) agree with the
    /// monolithic lazy path list-for-list.
    #[test]
    fn lazy_fills_equal_monolithic(base in arb_base(), shards_idx in 0usize..SHARD_COUNTS.len()) {
        let matrix = build(&base);
        let shards = SHARD_COUNTS[shards_idx];
        let (selector, min_overlap) = (PeerSelector::new(0.0).unwrap(), 2);
        let mono_measure = RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
        let mono = PeerIndex::new(selector, MAX_USERS);
        let part =
            ShardedRatingMatrix::from_matrix(&matrix, ShardSpec::new(shards).unwrap()).unwrap();
        let measure = ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap);
        let index = ShardedPeerIndex::new(selector, part.spec(), MAX_USERS);
        assert_lists_match(&index, &measure, &mono, &mono_measure, &format!("lazy S={shards}"));
    }

    /// A warm sharded index maintained by owner-routed deltas stays
    /// bitwise equal to a cold monolithic rebuild over the final data —
    /// the sharded form of the update-path contract.
    #[test]
    fn sharded_deltas_equal_cold_rebuild(
        base in arb_base(),
        ops in arb_ops(),
        shards_idx in 0usize..SHARD_COUNTS.len(),
    ) {
        let shards = SHARD_COUNTS[shards_idx];
        for (selector, min_overlap) in selector_grid() {
            let mut relation = base.clone();
            let mut part = ShardedRatingMatrix::from_matrix(
                &build(&relation),
                ShardSpec::new(shards).unwrap(),
            )
            .unwrap();
            let index = ShardedPeerIndex::new(selector, part.spec(), MAX_USERS);
            index.warm_symmetric(
                &ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap),
                Parallelism::Sequential,
            );
            for &op in &ops {
                let user = UserId::new(op.0);
                index.prepare_delta(
                    &ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap),
                    user,
                );
                let user = apply_op(&mut part, &mut relation, op);
                let report = index.apply_delta(
                    &ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap),
                    user,
                );
                prop_assert!(
                    matches!(report.outcome, DeltaOutcome::Spliced { .. }),
                    "warm sharded index must splice exactly, got {:?}",
                    report
                );
            }
            let final_matrix = build(&relation);
            let mono_measure =
                RatingsSimilarity::new(&final_matrix).with_min_overlap(min_overlap);
            let mono = PeerIndex::new(selector, MAX_USERS);
            mono.warm_symmetric(&mono_measure, Parallelism::Sequential);
            let measure = ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap);
            assert_lists_match(
                &index,
                &measure,
                &mono,
                &mono_measure,
                &format!("deltas S={shards}"),
            );
        }
    }

    /// A brand-new user's first rating grows the universe in place: the
    /// slot lands in the correct owning shard, existing warm lists
    /// survive, and everything still matches the monolithic oracle.
    #[test]
    fn new_user_growth_lands_in_the_owning_shard(
        base in arb_base(),
        shards_idx in 0usize..SHARD_COUNTS.len(),
        item in 0u32..MAX_ITEMS,
    ) {
        let shards = SHARD_COUNTS[shards_idx];
        let (selector, min_overlap) = (PeerSelector::new(0.0).unwrap(), 2);
        let mut relation = base.clone();
        let mut part = ShardedRatingMatrix::from_matrix(
            &build(&relation),
            ShardSpec::new(shards).unwrap(),
        )
        .unwrap();
        let index = ShardedPeerIndex::new(selector, part.spec(), MAX_USERS);
        index.warm_symmetric(
            &ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap),
            Parallelism::Sequential,
        );
        let cached_before = index.num_cached();

        // The engine's growth discipline: grow in place, pre-cache (the
        // new user's empty list), mutate, delta.
        let newcomer = UserId::new(MAX_USERS);
        let index = index.grow_universe(MAX_USERS + 1);
        prop_assert_eq!(index.num_cached(), cached_before, "warm lists survive growth");
        index.prepare_delta(
            &ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap),
            newcomer,
        );
        part.insert_rating(newcomer, ItemId::new(item), Rating::new(4.0).unwrap())
            .unwrap();
        relation.insert((MAX_USERS, item), 4.0);
        let report = index.apply_delta(
            &ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap),
            newcomer,
        );
        let spliced = matches!(report.outcome, DeltaOutcome::Spliced { .. });
        prop_assert!(spliced, "expected an exact splice, got {:?}", report);
        // The serving slot lives in the hash-assigned owning shard.
        prop_assert_eq!(index.shard_of(newcomer), part.spec().shard_of(newcomer));
        prop_assert!(index.cached_full(newcomer).is_some());

        let mut b = RatingMatrixBuilder::new().reserve_ids(MAX_USERS + 1, MAX_ITEMS);
        for (&(u, i), &s) in &relation {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        let final_matrix = b.build().unwrap();
        let mono_measure = RatingsSimilarity::new(&final_matrix).with_min_overlap(min_overlap);
        let mono = PeerIndex::new(selector, MAX_USERS + 1);
        mono.warm_symmetric(&mono_measure, Parallelism::Sequential);
        let measure = ShardedRatingsSimilarity::new(&part).with_min_overlap(min_overlap);
        for u in (0..=MAX_USERS).map(UserId::new) {
            let want = mono.full_peers(&mono_measure, u);
            let got = index.full_peers(&measure, u);
            prop_assert_eq!(got.len(), want.len(), "user {} peer count", u);
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }
    }
}
