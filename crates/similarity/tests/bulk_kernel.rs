//! Property tests for the bitwise-equality contract of the inverted-index
//! Pearson kernel: on random rating matrices, every bulk entry point must
//! produce exactly the bits of the per-pair reference —
//!
//! * `peers_of_bulk` vs the all-pairs `peers_of` scan, across thresholds,
//!   `min_overlap` settings, and peer caps;
//! * group views with co-member masking;
//! * `PeerIndex::warm` (bulk kernel) vs a warm over the forced per-pair
//!   fallback ([`PairwiseOnly`]);
//! * the symmetric bulk warm (`warm_symmetric`, one upper-triangle pass
//!   per user filling both endpoints) vs the per-user warm.

use fairrec_similarity::{
    PairwiseOnly, PeerIndex, PeerSelector, RatingsSimilarity, SimScratch, UserSimilarity,
};
use fairrec_types::{ItemId, Parallelism, RatingMatrix, RatingMatrixBuilder, UserId};
use proptest::prelude::*;

const MAX_USERS: u32 = 24;

/// Random sparse rating relations: up to 24 users × 30 items, half-star
/// scores, with some users left entirely rating-less (the id space is
/// padded) so undefined-similarity cases stay represented.
fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
    proptest::collection::btree_map((0u32..MAX_USERS, 0u32..30), 1.0f64..=5.0, 0..260).prop_map(
        |cells| {
            let mut b = RatingMatrixBuilder::new().reserve_ids(MAX_USERS, 30);
            for ((u, i), s) in cells {
                let s = (s * 2.0).round() / 2.0;
                b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
            }
            b.build().unwrap()
        },
    )
}

fn selector(delta: f64, cap: Option<usize>) -> PeerSelector {
    let mut sel = PeerSelector::new(delta).unwrap();
    if let Some(cap) = cap {
        sel = sel.with_max_peers(cap);
    }
    sel
}

/// Peer lists as `(id, bits)` so equality is checked bit-for-bit, not
/// merely numerically.
fn bits(peers: &[(UserId, f64)]) -> Vec<(u32, u64)> {
    peers.iter().map(|&(v, s)| (v.raw(), s.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The kernel-backed `peers_of_bulk` equals the all-pairs scan for
    /// every user, across δ, `min_overlap`, and cap settings.
    #[test]
    fn bulk_peers_equal_pairwise_peers_bitwise(
        m in arb_matrix(),
        delta in -1.0f64..0.9,
        min_overlap in 1usize..4,
        cap in proptest::option::of(1usize..6),
    ) {
        let measure = RatingsSimilarity::new(&m).with_min_overlap(min_overlap);
        let sel = selector(delta, cap);
        let n = m.num_users();
        let mut scratch = SimScratch::new();
        for u in (0..n).map(UserId::new) {
            let pairwise = sel.peers_of(&measure, u, (0..n).map(UserId::new), &[]);
            let bulk = sel.peers_of_bulk(&measure, u, n, &[], &mut scratch);
            prop_assert_eq!(bits(&bulk), bits(&pairwise), "user {}", u);
        }
    }

    /// Group views (co-member masking + capping on the masked list) are
    /// bitwise identical between the bulk and per-pair paths.
    #[test]
    fn bulk_group_views_equal_pairwise_bitwise(
        m in arb_matrix(),
        delta in -1.0f64..0.9,
        cap in proptest::option::of(1usize..6),
        picks in proptest::collection::vec(0u32..MAX_USERS, 1..5),
    ) {
        let measure = RatingsSimilarity::new(&m);
        let sel = selector(delta, cap);
        let n = m.num_users();
        let mut group: Vec<UserId> = picks.into_iter().map(UserId::new).collect();
        group.sort_unstable();
        group.dedup();
        let pairwise = sel.peers_for_group(&measure, &group, (0..n).map(UserId::new));
        let mut scratch = SimScratch::new();
        let bulk = sel.peers_for_group_bulk(&measure, &group, n, &mut scratch);
        prop_assert_eq!(bulk.len(), pairwise.len());
        for ((bu, bp), (pu, pp)) in bulk.iter().zip(&pairwise) {
            prop_assert_eq!(bu, pu);
            prop_assert_eq!(bits(bp), bits(pp), "member {}", bu);
        }
    }

    /// A `PeerIndex` warmed through the kernel holds exactly the lists a
    /// warm over the forced per-pair fallback produces.
    #[test]
    fn kernel_warm_equals_pairwise_warm(
        m in arb_matrix(),
        delta in -1.0f64..0.9,
        min_overlap in 1usize..4,
    ) {
        let measure = RatingsSimilarity::new(&m).with_min_overlap(min_overlap);
        let sel = selector(delta, None);
        let n = m.num_users();
        let kernel_index = PeerIndex::new(sel, n);
        kernel_index.warm(&measure, Parallelism::Sequential);
        let pairwise_index = PeerIndex::new(sel, n);
        pairwise_index.warm(&PairwiseOnly::new(&measure), Parallelism::Sequential);
        for u in (0..n).map(UserId::new) {
            prop_assert_eq!(
                bits(&kernel_index.cached_full(u).unwrap()),
                bits(&pairwise_index.cached_full(u).unwrap()),
                "user {}", u
            );
        }
    }

    /// The symmetric bulk warm (one upper-triangle pass per user, both
    /// endpoints filled per edge) equals the per-user warm, including
    /// under parallel execution.
    #[test]
    fn symmetric_warm_equals_per_user_warm(
        m in arb_matrix(),
        delta in -1.0f64..0.9,
        min_overlap in 1usize..4,
    ) {
        let measure = RatingsSimilarity::new(&m).with_min_overlap(min_overlap);
        prop_assert!(fairrec_similarity::BulkUserSimilarity::is_symmetric(&measure));
        let sel = selector(delta, None);
        let n = m.num_users();
        let per_user = PeerIndex::new(sel, n);
        per_user.warm(&measure, Parallelism::Sequential);
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let symmetric = PeerIndex::new(sel, n);
            prop_assert_eq!(symmetric.warm_symmetric(&measure, parallelism), n as usize);
            for u in (0..n).map(UserId::new) {
                prop_assert_eq!(
                    bits(&symmetric.cached_full(u).unwrap()),
                    bits(&per_user.cached_full(u).unwrap()),
                    "user {} under {:?}", u, parallelism
                );
            }
        }
    }

    /// Pairwise Pearson really is bitwise symmetric — the property the
    /// symmetric warm's soundness rests on.
    #[test]
    fn pearson_is_bitwise_symmetric(
        m in arb_matrix(),
        a in 0u32..MAX_USERS,
        b in 0u32..MAX_USERS,
    ) {
        let measure = RatingsSimilarity::new(&m);
        let (ua, ub) = (UserId::new(a), UserId::new(b));
        let ab = measure.similarity(ua, ub).map(f64::to_bits);
        let ba = measure.similarity(ub, ua).map(f64::to_bits);
        prop_assert_eq!(ab, ba);
    }
}
