//! Property tests: the cached [`PeerIndex`] must be observationally
//! identical to direct [`PeerSelector`] calls — single-user views, group
//! views with co-member masking, under caps and thresholds, warm or cold.

use fairrec_similarity::{BulkUserSimilarity, PeerIndex, PeerSelector, UserSimilarity};
use fairrec_types::{Parallelism, UserId};
use proptest::prelude::*;

/// A dense random similarity table; entries below zero model undefined
/// pairs. Symmetrised so it behaves like a real measure.
#[derive(Debug, Clone)]
struct Table {
    n: usize,
    cells: Vec<f64>,
}

impl UserSimilarity for Table {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        if u.index() >= self.n || v.index() >= self.n {
            return None;
        }
        let (a, b) = (u.index().min(v.index()), u.index().max(v.index()));
        let s = self.cells[a * self.n + b];
        (s >= 0.0).then_some(s)
    }
    fn name(&self) -> &'static str {
        "random-table"
    }
}

/// The table is symmetrised by construction (both directions read the
/// same cell), so declaring bitwise symmetry is sound — it routes the
/// `warm_parallel_equals_lazy_sequential` case through the symmetric
/// bulk warm as well.
impl BulkUserSimilarity for Table {
    fn is_symmetric(&self) -> bool {
        true
    }
}

fn arb_table() -> impl Strategy<Value = Table> {
    (2usize..=12).prop_flat_map(|n| {
        proptest::collection::vec(-0.3f64..1.0, n * n).prop_map(move |cells| Table { n, cells })
    })
}

fn selector(delta: f64, cap: Option<usize>) -> PeerSelector {
    let mut s = PeerSelector::new(delta).unwrap();
    if let Some(cap) = cap {
        s = s.with_max_peers(cap);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_user_views_match_direct_calls(
        table in arb_table(),
        delta in -0.2f64..0.9,
        cap in proptest::option::of(1usize..6),
    ) {
        let sel = selector(delta, cap);
        let index = PeerIndex::new(sel, table.n as u32);
        for u in (0..table.n as u32).map(UserId::new) {
            let direct = sel.peers_of(&table, u, (0..table.n as u32).map(UserId::new), &[]);
            // Twice: first call fills the cache, second must hit it.
            prop_assert_eq!(&index.peers_of(&table, u), &direct, "cold, user {}", u);
            prop_assert_eq!(&index.peers_of(&table, u), &direct, "warm, user {}", u);
        }
    }

    #[test]
    fn group_views_mask_members_like_recomputation(
        table in arb_table(),
        delta in -0.2f64..0.9,
        cap in proptest::option::of(1usize..6),
        picks in proptest::collection::vec(0usize..12, 1..5),
    ) {
        let sel = selector(delta, cap);
        let index = PeerIndex::new(sel, table.n as u32);
        let mut group: Vec<UserId> = picks
            .into_iter()
            .map(|p| UserId::new((p % table.n) as u32))
            .collect();
        group.sort_unstable();
        group.dedup();
        let direct = sel.peers_for_group(&table, &group, (0..table.n as u32).map(UserId::new));
        prop_assert_eq!(index.group_peers(&table, &group), direct);
    }

    #[test]
    fn warm_parallel_equals_lazy_sequential(
        table in arb_table(),
        delta in -0.2f64..0.9,
    ) {
        let sel = selector(delta, None);
        let lazy = PeerIndex::new(sel, table.n as u32);
        let warmed = PeerIndex::new(sel, table.n as u32);
        warmed.warm(&table, Parallelism::Threads(4));
        for u in (0..table.n as u32).map(UserId::new) {
            prop_assert_eq!(lazy.peers_of(&table, u), warmed.peers_of(&table, u));
        }
    }

    /// The MapReduce bridge must agree with the measure-driven path even
    /// when the edge stream carries self-edges and duplicate `(user,
    /// peer)` edges — `from_edges` drops the former and collapses the
    /// latter to the max-similarity edge, exactly what a direct scan
    /// (which skips `v == u` and visits each pair once) produces.
    #[test]
    fn from_edges_with_noisy_edges_matches_measure_driven_path(
        table in arb_table(),
        delta in -0.2f64..0.9,
        cap in proptest::option::of(1usize..6),
        picks in proptest::collection::vec(0usize..12, 1..5),
    ) {
        let sel = selector(delta, cap);
        let mut members: Vec<UserId> = picks
            .into_iter()
            .map(|p| UserId::new((p % table.n) as u32))
            .collect();
        members.sort_unstable();
        members.dedup();
        let mut edges: Vec<(UserId, UserId, f64)> = Vec::new();
        for &m in &members {
            // Self-edge noise: a buggy upstream job caching a user as
            // their own (perfectly similar) peer.
            edges.push((m, m, 1.0));
            for v in (0..table.n as u32).map(UserId::new) {
                if members.contains(&v) {
                    continue; // Job 1 pairs members with non-members only
                }
                if let Some(s) = table.similarity(m, v) {
                    edges.push((m, v, s));
                    // Duplicate-edge noise at a weaker similarity; dedup
                    // must keep the true (max) edge.
                    edges.push((m, v, s - 0.4));
                }
            }
        }
        let bridged = PeerIndex::from_edges(sel, table.n as u32, &members, edges);
        let direct = PeerIndex::new(sel, table.n as u32);
        prop_assert_eq!(
            bridged.group_peers_cached(&members),
            direct.group_peers(&table, &members)
        );
    }

    #[test]
    fn invalidated_entries_recompute_to_the_same_answer(
        table in arb_table(),
        delta in -0.2f64..0.9,
        victim in 0usize..12,
    ) {
        let sel = selector(delta, Some(3));
        let index = PeerIndex::new(sel, table.n as u32);
        index.warm(&table, Parallelism::Sequential);
        let u = UserId::new((victim % table.n) as u32);
        let before = index.peers_of(&table, u);
        index.invalidate_user(u);
        prop_assert!(index.cached_full(u).is_none());
        prop_assert_eq!(index.peers_of(&table, u), before);
    }
}
