//! Seeded multi-threaded stress suite for the epoch-published peer
//! slots — the headline proof of the lock-free serving contract.
//!
//! N reader threads hammer recommend-shaped lookups (wait-free
//! `cached_full` loads plus the mask+cap serving view) while one
//! maintenance thread drives the full update-path repertoire over a
//! precomputed chain of matrix states: symmetric and lazy warms,
//! per-user and blanket invalidations, exact `apply_delta` splices, and
//! blanket state jumps (the batch-ingestion shape). The suite pins:
//!
//! * **Per-generation snapshot consistency** — a reader samples the
//!   generation token, reads a group's lists, and re-samples the token;
//!   when the token did not move, every non-cold list it observed must
//!   be bitwise the oracle list of the state published under that
//!   token. A torn warm, a stale in-flight fill landing after an
//!   invalidation, or a half-applied delta would all surface as a
//!   mixed-generation snapshot here.
//! * **No deadlock / no reader exclusion** — readers run wait-free
//!   throughout full warms and assert they actually verified windows.
//! * **Bitwise-equal final state** — after the churn, the surviving
//!   index warms to exactly what a cold rebuild over the final matrix
//!   serves, list for list.
//!
//! Runs over the monolithic [`PeerIndex`] and the sharded
//! [`ShardedPeerIndex`], uncapped and with a saturating `max_peers`
//! cap (the dense fixture pushes full lists past the cache bound, so
//! the capped runs exercise the top-cap heap and the saturated splice
//! rules under contention). Seeded via `FAIRREC_FAULT_SEED` (the CI
//! chaos matrix), defaulting to 42.

use fairrec_similarity::{
    PeerIndex, PeerSelector, Peers, RatingsSimilarity, ShardedPeerIndex, ShardedRatingsSimilarity,
};
use fairrec_types::{
    ItemId, Parallelism, Rating, RatingMatrix, RatingMatrixBuilder, ShardSpec, ShardedRatingMatrix,
    UserId,
};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Dense enough that uncapped full lists (up to 79 peers) blow past the
/// capped runs' cache bound, so stored-list saturation is actually hit.
const NUM_USERS: u32 = 80;
const NUM_ITEMS: u32 = 16;
const RATINGS_PER_USER: usize = 10;
/// States in the precomputed edit chain (state `j+1` = state `j` plus
/// one point edit by a known editor).
const NUM_STATES: usize = 16;
const READERS: usize = 4;
const MAINT_OPS: usize = 160;

fn env_seed() -> u64 {
    std::env::var("FAIRREC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A chain of matrix states differing by one rating event each — the
/// shared script both the live index (via `apply_delta`) and the
/// oracle (via cold warms) replay.
struct Chain {
    matrices: Vec<Arc<RatingMatrix>>,
    /// `editors[j]` made the edit taking state `j` to state `j + 1`.
    editors: Vec<UserId>,
}

fn build_chain(seed: u64) -> Chain {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = RatingMatrixBuilder::new().reserve_ids(NUM_USERS, NUM_ITEMS);
    for u in 0..NUM_USERS {
        let mut items: Vec<u32> = (0..NUM_ITEMS).collect();
        items.shuffle(&mut rng);
        for &i in items.iter().take(RATINGS_PER_USER) {
            let score = Rating::new(rng.gen_range(1.0..=5.0)).unwrap();
            b.add(UserId::new(u), ItemId::new(i), score);
        }
    }
    let mut matrices = vec![Arc::new(b.build().unwrap())];
    let mut editors = Vec::new();
    for _ in 1..NUM_STATES {
        let mut m = matrices.last().unwrap().as_ref().clone();
        let user = UserId::new(rng.gen_range(0..NUM_USERS));
        let item = ItemId::new(rng.gen_range(0..NUM_ITEMS));
        if m.has_rated(user, item) {
            if m.degree_of(user) > 2 && rng.gen_bool(0.4) {
                m.remove_rating(user, item).unwrap();
            } else {
                let score = Rating::new(rng.gen_range(1.0..=5.0)).unwrap();
                m.update_rating(user, item, score).unwrap();
            }
        } else {
            let score = Rating::new(rng.gen_range(1.0..=5.0)).unwrap();
            m.insert_rating(user, item, score).unwrap();
        }
        editors.push(user);
        matrices.push(Arc::new(m));
    }
    Chain { matrices, editors }
}

/// The oracle: every user's cached list after a cold symmetric warm of
/// a fresh index over `matrix` — what any generation publishing that
/// state must serve, bitwise.
fn oracle_lists(matrix: &Arc<RatingMatrix>, selector: PeerSelector) -> Vec<Arc<Peers>> {
    let index = PeerIndex::new(selector, NUM_USERS);
    index.warm_symmetric(
        &RatingsSimilarity::new(Arc::clone(matrix)),
        Parallelism::Sequential,
    );
    (0..NUM_USERS)
        .map(|u| {
            index
                .cached_full(UserId::new(u))
                .expect("warm index caches every user")
        })
        .collect()
}

/// The wait-free read surface the stress readers exercise — both index
/// shapes serve it.
trait SnapshotRead: Send + Sync + 'static {
    fn generation(&self) -> u64;
    /// The group-shaped read: every member's list under one epoch pin.
    fn cached_full_bulk(&self, users: &[UserId]) -> Vec<Option<Arc<Peers>>>;
}

impl SnapshotRead for PeerIndex {
    fn generation(&self) -> u64 {
        PeerIndex::generation(self)
    }
    fn cached_full_bulk(&self, users: &[UserId]) -> Vec<Option<Arc<Peers>>> {
        PeerIndex::cached_full_bulk(self, users)
    }
}

impl SnapshotRead for ShardedPeerIndex {
    fn generation(&self) -> u64 {
        ShardedPeerIndex::generation(self)
    }
    fn cached_full_bulk(&self, users: &[UserId]) -> Vec<Option<Arc<Peers>>> {
        ShardedPeerIndex::cached_full_bulk(self, users)
    }
}

type GenTable = Arc<Mutex<HashMap<u64, usize>>>;

/// Spawns the reader threads. Each loops until `done`: sample the
/// generation, read a random group's lists (and their serving views),
/// re-sample the generation, and — when the window was
/// generation-stable and the generation is a published one — assert
/// every observed non-cold list is bitwise the oracle list of that
/// generation's state. Returns the per-reader verified-window counts.
fn spawn_readers<I: SnapshotRead>(
    index: &Arc<I>,
    table: &GenTable,
    oracles: &Arc<Vec<Vec<Arc<Peers>>>>,
    selector: PeerSelector,
    done: &Arc<AtomicBool>,
    seed: u64,
) -> Vec<JoinHandle<usize>> {
    (0..READERS)
        .map(|r| {
            let index = Arc::clone(index);
            let table = Arc::clone(table);
            let oracles = Arc::clone(oracles);
            let done = Arc::clone(done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (0xD1F_F00D + r as u64));
                let mut verified = 0usize;
                while !done.load(Ordering::Acquire) {
                    let g1 = index.generation();
                    let Some(state) = table.lock().unwrap().get(&g1).copied() else {
                        // Mid-publication: the maintenance thread has
                        // bumped but not yet recorded. Unverifiable —
                        // but also guaranteed to fail the g2 re-check.
                        continue;
                    };
                    let group: Vec<UserId> = (0..3)
                        .map(|_| UserId::new(rng.gen_range(0..NUM_USERS)))
                        .collect();
                    let observed: Vec<(UserId, Option<Arc<Peers>>)> = group
                        .iter()
                        .copied()
                        .zip(index.cached_full_bulk(&group))
                        .collect();
                    if index.generation() != g1 {
                        // Maintenance moved mid-window: the snapshot
                        // spans generations by construction — discard.
                        continue;
                    }
                    for (u, got) in observed {
                        let Some(list) = got else { continue };
                        let want = &oracles[state][u.index()];
                        assert_eq!(
                            &list, want,
                            "mixed-generation snapshot: user {u} under generation {g1} \
                             (state {state}) served a list from another state"
                        );
                        // The recommend-shaped tail: the serving view is
                        // a pure mask+cap over the snapshot.
                        assert_eq!(selector.view(&list, &group), selector.view(want, &group));
                    }
                    verified += 1;
                }
                verified
            })
        })
        .collect()
}

/// Drives the seeded maintenance script against the monolithic index.
fn churn_mono(index: &PeerIndex, chain: &Chain, table: &GenTable, seed: u64) -> usize {
    let measure = |state: usize| RatingsSimilarity::new(Arc::clone(&chain.matrices[state]));
    let record = |state: usize| {
        table.lock().unwrap().insert(index.generation(), state);
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut state = 0usize;
    for _ in 0..MAINT_OPS {
        match rng.gen_range(0u32..10) {
            0 | 1 => {
                index.warm_symmetric(&measure(state), Parallelism::Sequential);
            }
            2 => {
                index.warm(&measure(state), Parallelism::Sequential);
            }
            3 | 4 => {
                for _ in 0..4 {
                    let u = UserId::new(rng.gen_range(0..NUM_USERS));
                    let _ = index.full_peers(&measure(state), u);
                }
            }
            5 => {
                index.invalidate_user(UserId::new(rng.gen_range(0..NUM_USERS)));
                record(state);
            }
            6 => {
                index.invalidate_all();
                record(state);
            }
            _ if state + 1 < chain.matrices.len() => {
                // One exact delta along the chain: cache the editor's
                // pre-change list (the exactness precondition), advance
                // the data, splice.
                let editor = chain.editors[state];
                if index.num_cached() > 0 {
                    let _ = index.full_peers(&measure(state), editor);
                }
                state += 1;
                let _ = index.apply_delta(&measure(state), editor);
                record(state);
            }
            _ => {
                // Chain exhausted: blanket jump back to a random state —
                // the batch-ingestion shape (drop everything, new data).
                state = rng.gen_range(0..chain.matrices.len());
                index.invalidate_all();
                record(state);
            }
        }
    }
    state
}

/// Drives the same script against the sharded index (per-user
/// invalidation degrades to the blanket — the sharded surface has no
/// single-user invalidation).
fn churn_sharded(
    index: &ShardedPeerIndex,
    chain: &[Arc<ShardedRatingMatrix>],
    editors: &[UserId],
    table: &GenTable,
    seed: u64,
) -> usize {
    let measure = |state: usize| ShardedRatingsSimilarity::new(Arc::clone(&chain[state]));
    let record = |state: usize| {
        table.lock().unwrap().insert(index.generation(), state);
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut state = 0usize;
    for _ in 0..MAINT_OPS {
        match rng.gen_range(0u32..10) {
            0 | 1 => {
                index.warm_symmetric(&measure(state), Parallelism::Sequential);
            }
            2 => {
                index.warm(&measure(state), Parallelism::Sequential);
            }
            3 | 4 => {
                for _ in 0..4 {
                    let u = UserId::new(rng.gen_range(0..NUM_USERS));
                    let _ = index.full_peers(&measure(state), u);
                }
            }
            5 | 6 => {
                index.invalidate_all();
                record(state);
            }
            _ if state + 1 < chain.len() => {
                let editor = editors[state];
                index.prepare_delta(&measure(state), editor);
                state += 1;
                let _ = index.apply_delta(&measure(state), editor);
                record(state);
            }
            _ => {
                state = rng.gen_range(0..chain.len());
                index.invalidate_all();
                record(state);
            }
        }
    }
    state
}

/// One full mono run: spawn readers, churn, assert verified windows and
/// the bitwise-equal final state.
fn stress_mono(selector: PeerSelector, seed: u64) {
    let chain = build_chain(seed);
    let oracles: Arc<Vec<Vec<Arc<Peers>>>> = Arc::new(
        chain
            .matrices
            .iter()
            .map(|m| oracle_lists(m, selector))
            .collect(),
    );
    let index = Arc::new(PeerIndex::new(selector, NUM_USERS));
    let table: GenTable = Arc::new(Mutex::new(HashMap::new()));
    table.lock().unwrap().insert(index.generation(), 0);
    let done = Arc::new(AtomicBool::new(false));
    let readers = spawn_readers(&index, &table, &oracles, selector, &done, seed);

    let final_state = churn_mono(&index, &chain, &table, seed);

    done.store(true, Ordering::Release);
    let verified: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        verified > 0,
        "readers must verify generation-stable windows, not just spin"
    );

    // Bitwise-equal final state vs a cold rebuild: fill the cold slots
    // through the ordinary lazy path and compare list for list.
    let measure = RatingsSimilarity::new(Arc::clone(&chain.matrices[final_state]));
    index.warm(&measure, Parallelism::Sequential);
    for (u, want) in oracles[final_state].iter().enumerate() {
        assert_eq!(
            index.cached_full(UserId::new(u as u32)).as_ref(),
            Some(want),
            "final list of user {u} diverged from the cold rebuild"
        );
    }
}

/// One full sharded run, against the same monolithic oracle (the
/// sharded index is bitwise interchangeable for any shard count).
fn stress_sharded(selector: PeerSelector, num_shards: u32, seed: u64) {
    let chain = build_chain(seed);
    let spec = ShardSpec::new(num_shards).unwrap();
    let sharded: Vec<Arc<ShardedRatingMatrix>> = chain
        .matrices
        .iter()
        .map(|m| Arc::new(ShardedRatingMatrix::from_matrix(m, spec).unwrap()))
        .collect();
    let oracles: Arc<Vec<Vec<Arc<Peers>>>> = Arc::new(
        chain
            .matrices
            .iter()
            .map(|m| oracle_lists(m, selector))
            .collect(),
    );
    let index = Arc::new(ShardedPeerIndex::new(selector, spec, NUM_USERS));
    let table: GenTable = Arc::new(Mutex::new(HashMap::new()));
    table.lock().unwrap().insert(index.generation(), 0);
    let done = Arc::new(AtomicBool::new(false));
    let readers = spawn_readers(&index, &table, &oracles, selector, &done, seed);

    let final_state = churn_sharded(&index, &sharded, &chain.editors, &table, seed);

    done.store(true, Ordering::Release);
    let verified: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        verified > 0,
        "readers must verify generation-stable windows, not just spin"
    );

    let measure = ShardedRatingsSimilarity::new(Arc::clone(&sharded[final_state]));
    index.warm(&measure, Parallelism::Sequential);
    for (u, want) in oracles[final_state].iter().enumerate() {
        assert_eq!(
            index.cached_full(UserId::new(u as u32)).as_ref(),
            Some(want),
            "final list of user {u} diverged from the cold rebuild"
        );
    }
}

#[test]
fn mono_readers_never_see_torn_warms_uncapped() {
    stress_mono(PeerSelector::new(0.0).unwrap(), env_seed());
}

#[test]
fn mono_readers_never_see_torn_warms_capped() {
    // Cap 3 → cache bound 67 < the dense fixture's ~79-entry lists:
    // stored lists saturate, so the capped splice rules (patch /
    // invalidate / provably-untouched) and the top-cap heap all run
    // under contention.
    stress_mono(
        PeerSelector::new(0.0).unwrap().with_max_peers(3),
        env_seed(),
    );
}

#[test]
fn sharded_readers_never_see_torn_warms_uncapped() {
    stress_sharded(PeerSelector::new(0.0).unwrap(), 3, env_seed());
}

#[test]
fn sharded_readers_never_see_torn_warms_capped() {
    stress_sharded(
        PeerSelector::new(0.0).unwrap().with_max_peers(3),
        3,
        env_seed(),
    );
}
