//! Semantic similarity over health problems (§V-C, Equation 4).
//!
//! Two phases, exactly as the paper describes:
//!
//! 1. *pair similarity* — for every pair `(p, q)` with `p` a problem of `u`
//!    and `q` a problem of `u′`, score the ontology shortest path through a
//!    [`PathScoring`] transform;
//! 2. *overall similarity* — the harmonic mean of the `n = |A|·|B|` pair
//!    scores (Equation 4): `SS(u, u′) = n / Σ 1/xᵢ`.
//!
//! The harmonic mean is dominated by the *smallest* pair scores, so two
//! patients are "semantically similar" only when **all** their condition
//! pairs are reasonably close — one shared diagnosis cannot mask an
//! otherwise disjoint medical picture. The transforms in
//! [`PathScoring`] are strictly positive, so the mean is always defined
//! when both users have at least one recorded problem; otherwise the
//! similarity is `None`.

use crate::UserSimilarity;
use fairrec_ontology::{Ontology, PathScoring};
use fairrec_phr::PhrStore;
use fairrec_types::UserId;
use std::borrow::Borrow;

/// Harmonic-mean-of-path-scores similarity.
///
/// Generic over how the PHR store and ontology are held: plain references
/// for scoped use (all historical call sites infer that), or owning
/// handles such as `Arc` so a long-lived engine can build the measure
/// once and share it across threads.
#[derive(Debug, Clone)]
pub struct SemanticSimilarity<P = std::sync::Arc<PhrStore>, O = std::sync::Arc<Ontology>> {
    store: P,
    ontology: O,
    scoring: PathScoring,
}

impl<P: Borrow<PhrStore>, O: Borrow<Ontology>> SemanticSimilarity<P, O> {
    /// Uses the default [`PathScoring::InversePath`] transform.
    pub fn new(store: P, ontology: O) -> Self {
        Self {
            store,
            ontology,
            scoring: PathScoring::default(),
        }
    }

    /// Overrides the path-length transform.
    pub fn with_scoring(mut self, scoring: PathScoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// The pairwise problem scores for two users, in row-major order
    /// (`u`'s problems × `v`'s problems) — exposed for explanations.
    pub fn pair_scores(&self, u: UserId, v: UserId) -> Option<Vec<f64>> {
        let store = self.store.borrow();
        let pu = &store.get(u)?.problems;
        let pv = &store.get(v)?.problems;
        if pu.is_empty() || pv.is_empty() {
            return None;
        }
        let mut scores = Vec::with_capacity(pu.len() * pv.len());
        for &a in pu {
            for &b in pv {
                scores.push(self.scoring.score(self.ontology.borrow(), a, b));
            }
        }
        Some(scores)
    }
}

impl<P: Borrow<PhrStore>, O: Borrow<Ontology>> UserSimilarity for SemanticSimilarity<P, O> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        let scores = self.pair_scores(u, v)?;
        let n = scores.len() as f64;
        let denom: f64 = scores.iter().map(|x| 1.0 / x).sum();
        debug_assert!(denom.is_finite(), "PathScoring must be strictly positive");
        Some(n / denom)
    }

    fn name(&self) -> &'static str {
        "semantic-harmonic"
    }
}

/// Bulk queries fall back to the per-pair scan. Note Equation 4 is
/// mathematically symmetric but the harmonic sum runs in row-major pair
/// order, which swaps with the arguments — so the measure does **not**
/// declare [`is_symmetric`](crate::BulkUserSimilarity::is_symmetric) and
/// never takes the bitwise symmetric warm path.
impl<P: Borrow<PhrStore>, O: Borrow<Ontology>> crate::bulk::BulkUserSimilarity
    for SemanticSimilarity<P, O>
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_ontology::snomed::{clinical_fragment, labels};
    use fairrec_phr::{table1, PatientProfile};

    fn fixture() -> (Ontology, PhrStore) {
        let ont = clinical_fragment();
        let store: PhrStore = table1::patients(&ont).into_iter().collect();
        (ont, store)
    }

    #[test]
    fn paper_worked_example_patient1_vs_2_and_3() {
        let (ont, store) = fixture();
        let s = SemanticSimilarity::new(&store, &ont);
        // SS(p1, p2): single pair at distance 5 ⇒ 1/6.
        let s12 = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!((s12 - 1.0 / 6.0).abs() < 1e-12);
        // SS(p1, p3): pairs (acute bronchitis, tracheobronchitis) d=2 and
        // (acute bronchitis, broken arm) d=6 ⇒ harmonic mean of 1/3, 1/7:
        // 2 / (3 + 7) = 1/5.
        let acute = ont.by_label(labels::ACUTE_BRONCHITIS).unwrap();
        let arm = ont.by_label(labels::BROKEN_ARM).unwrap();
        assert_eq!(ont.path_len(acute, arm), 6);
        let s13 = s.similarity(UserId::new(0), UserId::new(2)).unwrap();
        assert!((s13 - 0.2).abs() < 1e-12);
        // "the similarity based on the health problems between patients 1
        // and 3 is greater than the one between patients 1 and 2".
        assert!(s13 > s12);
    }

    #[test]
    fn pair_scores_are_row_major() {
        let (ont, store) = fixture();
        let s = SemanticSimilarity::new(&store, &ont);
        let scores = s.pair_scores(UserId::new(0), UserId::new(2)).unwrap();
        assert_eq!(scores.len(), 2); // 1 problem × 2 problems
        assert!((scores[0] - 1.0 / 3.0).abs() < 1e-12); // d=2
        assert!((scores[1] - 1.0 / 7.0).abs() < 1e-12); // d=6
    }

    #[test]
    fn symmetric() {
        let (ont, store) = fixture();
        let s = SemanticSimilarity::new(&store, &ont);
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert_eq!(
                    s.similarity(UserId::new(a), UserId::new(b)),
                    s.similarity(UserId::new(b), UserId::new(a)),
                    "asymmetry for ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn identical_problem_lists_score_one() {
        let ont = clinical_fragment();
        let acute = ont.by_label(labels::ACUTE_BRONCHITIS).unwrap();
        let store: PhrStore = (0..2)
            .map(|u| {
                PatientProfile::builder(UserId::new(u))
                    .problem(acute)
                    .build()
            })
            .collect();
        let s = SemanticSimilarity::new(&store, &ont);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), Some(1.0));
    }

    #[test]
    fn problemless_profiles_are_undefined() {
        let ont = clinical_fragment();
        let acute = ont.by_label(labels::ACUTE_BRONCHITIS).unwrap();
        let store: PhrStore = [
            PatientProfile::builder(UserId::new(0))
                .problem(acute)
                .build(),
            PatientProfile::builder(UserId::new(1)).build(), // no problems
        ]
        .into_iter()
        .collect();
        let s = SemanticSimilarity::new(&store, &ont);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(9)), None); // absent
    }

    #[test]
    fn harmonic_mean_is_dragged_down_by_one_distant_problem() {
        // u0: {acute bronchitis}; u1: {tracheobronchitis};
        // u2: {tracheobronchitis, leukemia (far away)}.
        let ont = clinical_fragment();
        let get = |l: &str| ont.by_label(l).unwrap();
        let store: PhrStore = [
            PatientProfile::builder(UserId::new(0))
                .problem(get(labels::ACUTE_BRONCHITIS))
                .build(),
            PatientProfile::builder(UserId::new(1))
                .problem(get(labels::TRACHEOBRONCHITIS))
                .build(),
            PatientProfile::builder(UserId::new(2))
                .problem(get(labels::TRACHEOBRONCHITIS))
                .problem(get("Leukemia"))
                .build(),
        ]
        .into_iter()
        .collect();
        let s = SemanticSimilarity::new(&store, &ont);
        let close = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        let mixed = s.similarity(UserId::new(0), UserId::new(2)).unwrap();
        assert!(mixed < close);
        // And the harmonic mean punishes the outlier harder than the
        // arithmetic mean would.
        let pairs = s.pair_scores(UserId::new(0), UserId::new(2)).unwrap();
        let arith = pairs.iter().sum::<f64>() / pairs.len() as f64;
        assert!(mixed < arith);
    }

    #[test]
    fn alternative_scoring_preserves_the_paper_ordering() {
        let (ont, store) = fixture();
        for scoring in [
            PathScoring::ExponentialDecay { lambda: 0.4 },
            PathScoring::WuPalmer,
            PathScoring::LeacockChodorow,
        ] {
            let s = SemanticSimilarity::new(&store, &ont).with_scoring(scoring);
            let s12 = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
            let s13 = s.similarity(UserId::new(0), UserId::new(2)).unwrap();
            assert!(s13 > s12, "{scoring:?}: SS(1,3)={s13} !> SS(1,2)={s12}");
        }
    }
}
