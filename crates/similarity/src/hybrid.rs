//! Weighted combination of similarity measures.
//!
//! §V motivates using health-related signals *"in addition to the
//! traditional ratings"*. [`HybridSimilarity`] combines any set of
//! measures by weighted average over the measures that are *defined* for
//! the pair; if none is defined, the hybrid is undefined too. Weights are
//! renormalised over the defined subset, so a pair with no co-rated items
//! still gets a fully-weighted profile/semantic opinion instead of a
//! silently halved score.
//!
//! Pearson lives in `[-1, 1]` while the other measures live in `[0, 1]`;
//! wrap it in [`Rescale01`] before mixing so the scales are commensurable.

use crate::bulk::{BulkUserSimilarity, SimScratch};
use crate::UserSimilarity;
use fairrec_types::UserId;

/// Affine rescaling of a `[-1, 1]` measure into `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Rescale01<S> {
    inner: S,
}

impl<S> Rescale01<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Self { inner }
    }
}

impl<S: UserSimilarity> UserSimilarity for Rescale01<S> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        self.inner.similarity(u, v).map(|s| (s + 1.0) / 2.0)
    }

    fn name(&self) -> &'static str {
        "rescaled-01"
    }
}

/// Bulk passes delegate to the inner measure's (possibly specialised)
/// kernel and apply the same affine map to each emitted similarity — the
/// exact operation the per-pair path performs, so bitwise equality is
/// preserved through the wrapper. The map is injective, so symmetry of
/// the inner measure carries over.
impl<S: BulkUserSimilarity> BulkUserSimilarity for Rescale01<S> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        let start = out.len();
        self.inner.similarities_from(u, num_users, scratch, out);
        for entry in &mut out[start..] {
            entry.1 = (entry.1 + 1.0) / 2.0;
        }
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        let start = out.len();
        self.inner.similarities_above(u, num_users, scratch, out);
        for entry in &mut out[start..] {
            entry.1 = (entry.1 + 1.0) / 2.0;
        }
    }

    fn is_symmetric(&self) -> bool {
        self.inner.is_symmetric()
    }
}

/// Weighted combination of boxed measures.
///
/// Components are required to be `Send + Sync` so a hybrid over owned
/// (`Arc`-holding) measures can serve parallel request fan-out; every
/// measure in this crate satisfies that.
pub struct HybridSimilarity<'a> {
    components: Vec<(Box<dyn UserSimilarity + Send + Sync + 'a>, f64)>,
}

impl std::fmt::Debug for HybridSimilarity<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(m, w)| format!("{}×{w}", m.name()))
            .collect();
        write!(f, "HybridSimilarity[{}]", parts.join(", "))
    }
}

impl<'a> HybridSimilarity<'a> {
    /// Starts an empty hybrid.
    pub fn new() -> Self {
        Self {
            components: Vec::new(),
        }
    }

    /// Adds a component with the given non-negative weight. Zero-weight
    /// components are accepted but never influence the result.
    ///
    /// # Panics
    /// Panics if `weight` is negative or non-finite — weights are
    /// experiment constants, not data.
    pub fn with(mut self, measure: impl UserSimilarity + Send + Sync + 'a, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative, got {weight}"
        );
        self.components.push((Box::new(measure), weight));
        self
    }

    /// Number of component measures.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the hybrid has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Default for HybridSimilarity<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl UserSimilarity for HybridSimilarity<'_> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for (measure, weight) in &self.components {
            if *weight == 0.0 {
                continue;
            }
            if let Some(s) = measure.similarity(u, v) {
                weighted_sum += weight * s;
                weight_total += weight;
            }
        }
        (weight_total > 0.0).then(|| weighted_sum / weight_total)
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

/// Bulk queries fall back to the per-pair scan: a weighted mix over
/// heterogeneous components has no single candidate-generating index,
/// and renormalisation over the defined subset is inherently per-pair.
impl BulkUserSimilarity for HybridSimilarity<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Constant test measure: defined only for pairs whose raw ids are both
    /// below `cutoff`.
    struct Fixed {
        value: f64,
        cutoff: u32,
    }

    impl UserSimilarity for Fixed {
        fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
            (u.raw() < self.cutoff && v.raw() < self.cutoff).then_some(self.value)
        }

        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn weighted_average_of_defined_components() {
        let h = HybridSimilarity::new()
            .with(
                Fixed {
                    value: 1.0,
                    cutoff: 10,
                },
                3.0,
            )
            .with(
                Fixed {
                    value: 0.0,
                    cutoff: 10,
                },
                1.0,
            );
        let s = h.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weights_renormalise_over_defined_subset() {
        let h = HybridSimilarity::new()
            .with(
                Fixed {
                    value: 0.8,
                    cutoff: 10,
                },
                1.0,
            )
            .with(
                Fixed {
                    value: 0.0,
                    cutoff: 1,
                },
                9.0,
            ); // undefined for u1
        let s = h.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!(
            (s - 0.8).abs() < 1e-12,
            "undefined component must not dilute"
        );
    }

    #[test]
    fn undefined_when_all_components_undefined() {
        let h = HybridSimilarity::new().with(
            Fixed {
                value: 0.5,
                cutoff: 1,
            },
            1.0,
        );
        assert_eq!(h.similarity(UserId::new(5), UserId::new(6)), None);
    }

    #[test]
    fn empty_hybrid_is_always_undefined() {
        let h = HybridSimilarity::new();
        assert!(h.is_empty());
        assert_eq!(h.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn zero_weight_components_are_ignored() {
        let h = HybridSimilarity::new()
            .with(
                Fixed {
                    value: 0.2,
                    cutoff: 10,
                },
                1.0,
            )
            .with(
                Fixed {
                    value: 1.0,
                    cutoff: 10,
                },
                0.0,
            );
        let s = h.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!((s - 0.2).abs() < 1e-12);
        assert_eq!(h.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        let _ = HybridSimilarity::new().with(
            Fixed {
                value: 0.2,
                cutoff: 1,
            },
            -1.0,
        );
    }

    #[test]
    fn rescale01_maps_pearson_range() {
        struct Pear(f64);
        impl UserSimilarity for Pear {
            fn similarity(&self, _: UserId, _: UserId) -> Option<f64> {
                Some(self.0)
            }
            fn name(&self) -> &'static str {
                "pear"
            }
        }
        let r = Rescale01::new(Pear(-1.0));
        assert_eq!(r.similarity(UserId::new(0), UserId::new(1)), Some(0.0));
        let r = Rescale01::new(Pear(1.0));
        assert_eq!(r.similarity(UserId::new(0), UserId::new(1)), Some(1.0));
        let r = Rescale01::new(Pear(0.0));
        assert_eq!(r.similarity(UserId::new(0), UserId::new(1)), Some(0.5));
    }

    #[test]
    fn debug_lists_components() {
        let h = HybridSimilarity::new().with(
            Fixed {
                value: 0.1,
                cutoff: 1,
            },
            2.0,
        );
        assert!(format!("{h:?}").contains("fixed×2"));
    }
}
