//! User clustering for fast peer pre-selection (extension).
//!
//! The paper's related work (§VII, its ref. \[17\]) pre-partitions users
//! into clusters of similar users and draws recommendations from cluster
//! members instead of scanning the full user base. This module implements
//! that design: seeded **k-medoids** over any [`UserSimilarity`] (distance
//! `1 − sim`, undefined pairs maximally distant) plus a
//! [`ClusteredPeerSelector`] that restricts Definition 1's peer search to
//! the query user's own cluster.
//!
//! The trade-off quantified by experiment A6 (`fairrec-bench --bin
//! clustering_peers`): peer search drops from O(|U|) to O(|cluster|)
//! similarity evaluations per user, in exchange for missing cross-cluster
//! peers.
//!
//! Measures with negative ranges (Pearson) should be wrapped in
//! [`Rescale01`](crate::Rescale01) first so `1 − sim` is a proper
//! dissimilarity in `[0, 1]`.

use crate::peers::{PeerSelector, Peers};
use crate::UserSimilarity;
use fairrec_types::{FairrecError, Result, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// K-medoids configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMedoids {
    /// Number of clusters (≥ 1).
    pub k: usize,
    /// Maximum refinement iterations.
    pub max_iters: usize,
    /// RNG seed for medoid initialisation.
    pub seed: u64,
}

impl Default for KMedoids {
    fn default() -> Self {
        Self {
            k: 8,
            max_iters: 20,
            seed: 42,
        }
    }
}

/// A fitted clustering of a user universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    users: Vec<UserId>,
    /// Parallel to `users`: cluster index per user.
    assignment: Vec<u32>,
    medoids: Vec<UserId>,
}

impl Clustering {
    /// The cluster medoids.
    pub fn medoids(&self) -> &[UserId] {
        &self.medoids
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.medoids.len()
    }

    /// The cluster index of `user`, if the user was part of the universe.
    pub fn cluster_of(&self, user: UserId) -> Option<u32> {
        let slot = self.users.binary_search(&user).ok()?;
        Some(self.assignment[slot])
    }

    /// All members of one cluster, ascending.
    pub fn members_of(&self, cluster: u32) -> Vec<UserId> {
        self.users
            .iter()
            .zip(&self.assignment)
            .filter(|&(_, &c)| c == cluster)
            .map(|(&u, _)| u)
            .collect()
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.medoids.len()];
        for &c in &self.assignment {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

impl KMedoids {
    /// Clusters `universe` under `measure`.
    ///
    /// # Errors
    /// [`FairrecError::InvalidParameter`] when `k == 0` or the universe is
    /// empty. `k` larger than the universe is clamped.
    pub fn fit<S: UserSimilarity>(
        &self,
        measure: &S,
        universe: impl IntoIterator<Item = UserId>,
    ) -> Result<Clustering> {
        if self.k == 0 {
            return Err(FairrecError::invalid_parameter(
                "k",
                "need at least 1 cluster",
            ));
        }
        let mut users: Vec<UserId> = universe.into_iter().collect();
        users.sort_unstable();
        users.dedup();
        if users.is_empty() {
            return Err(FairrecError::invalid_parameter(
                "universe",
                "cannot cluster zero users",
            ));
        }
        let k = self.k.min(users.len());
        let distance = |a: UserId, b: UserId| -> f64 {
            if a == b {
                0.0
            } else {
                1.0 - measure.similarity(a, b).unwrap_or(0.0)
            }
        };

        // Seeded random initial medoids.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut medoids: Vec<UserId> = {
            let mut pool = users.clone();
            pool.shuffle(&mut rng);
            pool.truncate(k);
            pool.sort_unstable();
            pool
        };

        let mut assignment = vec![0u32; users.len()];
        for _ in 0..self.max_iters {
            // Assignment step: nearest medoid, ties to the lowest index.
            for (slot, &u) in users.iter().enumerate() {
                let mut best = (0u32, f64::INFINITY);
                for (c, &m) in medoids.iter().enumerate() {
                    let d = distance(u, m);
                    if d < best.1 {
                        best = (c as u32, d);
                    }
                }
                assignment[slot] = best.0;
            }
            // Update step: medoid = member minimising total in-cluster
            // distance (ties to the smallest user id via iteration order).
            let mut changed = false;
            for (c, medoid) in medoids.iter_mut().enumerate() {
                let members: Vec<UserId> = users
                    .iter()
                    .zip(&assignment)
                    .filter(|&(_, &a)| a == c as u32)
                    .map(|(&u, _)| u)
                    .collect();
                if members.is_empty() {
                    continue; // keep the old medoid for empty clusters
                }
                let mut best = (*medoid, f64::INFINITY);
                for &candidate in &members {
                    let total: f64 = members.iter().map(|&m| distance(candidate, m)).sum();
                    if total < best.1 {
                        best = (candidate, total);
                    }
                }
                if best.0 != *medoid {
                    *medoid = best.0;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Final assignment against the converged medoids.
        for (slot, &u) in users.iter().enumerate() {
            let mut best = (0u32, f64::INFINITY);
            for (c, &m) in medoids.iter().enumerate() {
                let d = distance(u, m);
                if d < best.1 {
                    best = (c as u32, d);
                }
            }
            assignment[slot] = best.0;
        }
        Ok(Clustering {
            users,
            assignment,
            medoids,
        })
    }
}

/// Peer selection restricted to the query user's cluster — the ref. \[17\]
/// acceleration.
#[derive(Debug, Clone)]
pub struct ClusteredPeerSelector {
    selector: PeerSelector,
    clustering: Clustering,
}

impl ClusteredPeerSelector {
    /// Wraps a base selector with a fitted clustering.
    pub fn new(selector: PeerSelector, clustering: Clustering) -> Self {
        Self {
            selector,
            clustering,
        }
    }

    /// The underlying clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Peers of `u` among `u`'s cluster members only. Users outside the
    /// clustered universe get no peers.
    pub fn peers_of<S: UserSimilarity>(&self, measure: &S, u: UserId, exclude: &[UserId]) -> Peers {
        match self.clustering.cluster_of(u) {
            Some(cluster) => {
                self.selector
                    .peers_of(measure, u, self.clustering.members_of(cluster), exclude)
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block-diagonal similarity: users 0–4 and 5–9 form two tight groups.
    struct TwoBlocks;
    impl UserSimilarity for TwoBlocks {
        fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
            let (a, b) = (u.raw() / 5, v.raw() / 5);
            Some(if a == b { 0.9 } else { 0.1 })
        }
        fn name(&self) -> &'static str {
            "two-blocks"
        }
    }

    fn universe(n: u32) -> Vec<UserId> {
        (0..n).map(UserId::new).collect()
    }

    #[test]
    fn recovers_block_structure() {
        let clustering = KMedoids {
            k: 2,
            max_iters: 10,
            seed: 3,
        }
        .fit(&TwoBlocks, universe(10))
        .unwrap();
        assert_eq!(clustering.num_clusters(), 2);
        // All of 0–4 share a cluster; all of 5–9 share the other.
        let c0 = clustering.cluster_of(UserId::new(0)).unwrap();
        for u in 1..5 {
            assert_eq!(clustering.cluster_of(UserId::new(u)), Some(c0));
        }
        let c5 = clustering.cluster_of(UserId::new(5)).unwrap();
        assert_ne!(c0, c5);
        for u in 6..10 {
            assert_eq!(clustering.cluster_of(UserId::new(u)), Some(c5));
        }
        assert_eq!(clustering.sizes(), vec![5, 5]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = KMedoids {
            k: 3,
            max_iters: 10,
            seed: 7,
        };
        let a = cfg.fit(&TwoBlocks, universe(10)).unwrap();
        let b = cfg.fit(&TwoBlocks, universe(10)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_clamped_to_universe() {
        let clustering = KMedoids {
            k: 50,
            max_iters: 5,
            seed: 1,
        }
        .fit(&TwoBlocks, universe(4))
        .unwrap();
        assert_eq!(clustering.num_clusters(), 4);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(KMedoids {
            k: 0,
            max_iters: 5,
            seed: 1
        }
        .fit(&TwoBlocks, universe(5))
        .is_err());
        assert!(KMedoids::default().fit(&TwoBlocks, []).is_err());
    }

    #[test]
    fn clustered_peers_stay_in_cluster() {
        let clustering = KMedoids {
            k: 2,
            max_iters: 10,
            seed: 3,
        }
        .fit(&TwoBlocks, universe(10))
        .unwrap();
        let selector = ClusteredPeerSelector::new(PeerSelector::new(0.0).unwrap(), clustering);
        let peers = selector.peers_of(&TwoBlocks, UserId::new(2), &[]);
        assert_eq!(peers.len(), 4, "own block minus self");
        for &(p, s) in &peers {
            assert!(p.raw() < 5, "peer {p} escaped the cluster");
            assert!((s - 0.9).abs() < 1e-12);
        }
        // Excludes work inside the cluster too.
        let peers = selector.peers_of(&TwoBlocks, UserId::new(2), &[UserId::new(0)]);
        assert_eq!(peers.len(), 3);
        // Users outside the universe get nothing.
        let peers = selector.peers_of(&TwoBlocks, UserId::new(99), &[]);
        assert!(peers.is_empty());
    }

    #[test]
    fn duplicate_universe_entries_are_deduplicated() {
        let mut us = universe(6);
        us.extend(universe(6));
        let clustering = KMedoids {
            k: 2,
            max_iters: 5,
            seed: 2,
        }
        .fit(&TwoBlocks, us)
        .unwrap();
        assert_eq!(clustering.sizes().iter().sum::<usize>(), 6);
    }
}
