//! User similarity measures (§V of the paper).
//!
//! Collaborative filtering stands or falls with the choice of similar
//! users. The paper proposes three measures and this crate implements all
//! of them behind one object-safe trait, [`UserSimilarity`]:
//!
//! * [`RatingsSimilarity`] — `RS(u, u′)`: Pearson correlation over co-rated
//!   items (Equation 2),
//! * [`ProfileSimilarity`] — `CS(u, u′)`: cosine similarity of tf-idf
//!   profile vectors (§V-B, Equation 3),
//! * [`SemanticSimilarity`] — `SS(u, u′)`: harmonic mean of pairwise
//!   ontology-path similarities between the users' health problems
//!   (§V-C, Equation 4),
//! * [`HybridSimilarity`] — a weighted combination (the paper exploits
//!   health-related information *"in addition to the traditional
//!   ratings"*; the hybrid is the natural way to use several signals at
//!   once),
//! * [`PeerSelector`] — Definition 1: `P_u = {u′ ∈ U : simU(u, u′) ≥ δ}`,
//! * [`PeerIndex`] — the cached, thread-safe serving form of Definition 1:
//!   memoized full peer lists with masked group views, explicit
//!   invalidation, and exact incremental maintenance on rating changes
//!   ([`PeerIndex::apply_delta`] — see the module docs for the
//!   update-path contract),
//! * [`BulkUserSimilarity`] — the one-vs-all form of `simU` used for cold
//!   peer builds: every measure gets a per-pair fallback, and
//!   [`RatingsSimilarity`] ships an inverted-index Pearson kernel whose
//!   output is bitwise identical to the per-pair path (see the `bulk`
//!   and `ratings` module docs),
//! * [`ShardedPeerIndex`] / [`ShardedRatingsSimilarity`] — the
//!   scale-out form of the two above: the user universe hash-partitioned
//!   into shards, cold warms decomposed into per-shard-pair kernel
//!   tasks, lookups routed to each user's owning shard — bitwise
//!   identical to the monolithic index for any shard count (see the
//!   `sharded` module docs).
//!
//! A similarity may be *undefined* for a pair (no co-rated items, empty
//! profiles, no recorded problems); measures return `Option<f64>` and
//! undefined pairs simply never become peers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bulk;
pub mod clustering;
mod hybrid;
mod peer_index;
mod peers;
mod profile;
mod ratings;
mod semantic;
mod sharded;

pub use bulk::{BulkUserSimilarity, PairwiseOnly, SimScratch};
pub use clustering::{ClusteredPeerSelector, Clustering, KMedoids};
pub use hybrid::{HybridSimilarity, Rescale01};
pub use peer_index::{DeltaOutcome, PeerIndex};
pub use peers::{PeerSelector, Peers};
pub use profile::ProfileSimilarity;
pub use ratings::RatingsSimilarity;
pub use semantic::SemanticSimilarity;
pub use sharded::{
    shard_pair_edges, ShardedDeltaReport, ShardedPeerIndex, ShardedRatingsSimilarity,
};

use fairrec_types::UserId;

/// An object-safe user-to-user similarity measure `simU`.
pub trait UserSimilarity {
    /// Similarity of `u` and `v`, or `None` when undefined for this pair.
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64>;

    /// Short name for reports and benchmark labels.
    fn name(&self) -> &'static str;
}

impl<T: UserSimilarity + ?Sized> UserSimilarity for &T {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        (**self).similarity(u, v)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: UserSimilarity + ?Sized> UserSimilarity for Box<T> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        (**self).similarity(u, v)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: UserSimilarity + ?Sized> UserSimilarity for std::sync::Arc<T> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        (**self).similarity(u, v)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}
