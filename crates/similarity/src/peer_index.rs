//! Cached peer lists — the serving-path form of Definition 1.
//!
//! [`PeerSelector`] answers "who are `u`'s peers?" by scanning the whole
//! user universe per call. That is the right primitive for one-off
//! queries, but a serving engine answers the same question for the same
//! users over and over: every group request needs the peer list of every
//! member, and batched serving multiplies that by the number of groups.
//!
//! [`PeerIndex`] memoizes, per user, the **full** peer list — threshold-
//! filtered, canonically sorted (similarity descending, id ascending),
//! *uncapped* and *unmasked*. Request-time views are then pure list
//! operations:
//!
//! * the single-user view truncates to the selector's `max_peers` cap;
//! * the group view first masks the group's co-members (the Job 1 rule:
//!   members pair only with non-members), then truncates.
//!
//! Masking before capping on the cached list is exactly equivalent to
//! recomputing with the exclusion set, because threshold admission is
//! per-pair and the canonical order is deterministic — the property tests
//! in `tests/peer_index.rs` assert this against direct [`PeerSelector`]
//! calls. This is why the cache stores the uncapped list: a capped cache
//! could not restore the peers a mask frees up.
//!
//! ## Cold fills take the bulk kernel
//!
//! Computing a cold entry no longer scans the whole universe per pair:
//! [`full_peers`](PeerIndex::full_peers), [`warm`](PeerIndex::warm) and
//! [`warm_symmetric`](PeerIndex::warm_symmetric) route through the
//! measure's [`BulkUserSimilarity`] path — one one-vs-all pass per user,
//! which for `RatingsSimilarity` is the inverted-index Pearson kernel
//! (cost proportional to co-rating mass, `Σ_{i∈I(u)} |U(i)|`, instead of
//! `O(U·d)` per user). Eager warms chunk the users so each parallel task
//! reuses one [`SimScratch`] across its chunk — and the O(num_users)
//! scratch arrays are dropped when the warm returns instead of living in
//! the shared worker pool's thread-locals.
//! The bulk contract guarantees bitwise-identical similarities, so cached
//! entries are exactly what the per-pair scan would have produced.
//! `warm_symmetric` additionally exploits bitwise-symmetric measures: one
//! upper-triangle pass per user fills **both** endpoints' lists, halving
//! the arithmetic of a full cold build.
//!
//! ## Caching, invalidation & the update-path contract
//!
//! An index is built for one `(measure, selector, universe)` triple. The
//! measure is passed per call (so one index can serve borrowed or
//! `Arc`-owned backends alike) but **must be logically the same function**
//! between maintenance calls; memoized entries are never revalidated.
//! When the underlying data changes, callers pick one of three
//! maintenance paths, ordered from cheapest to bluntest:
//!
//! 1. [`apply_delta`](PeerIndex::apply_delta) — the **exact incremental
//!    path** for a point change to one user's data (a rating insert,
//!    update, or removal). One bulk kernel pass recomputes that user's
//!    full list, and the refreshed `(user, simU)` edges are spliced into
//!    both endpoints' cached lists. The result is bitwise identical to
//!    dropping everything and re-warming against the changed data —
//!    see the method docs for its two preconditions (bitwise-symmetric
//!    measure; the user's pre-change list cached whenever any list is).
//! 2. [`invalidate_user`](PeerIndex::invalidate_user) — drops one user's
//!    list for lazy recomputation. **Not sufficient on its own** after a
//!    rating change: a changed rating moves `simU(user, ·)` for every
//!    co-rating peer, so the *other* endpoints' cached lists go stale
//!    too. It is the right call when only request-time properties of one
//!    user changed (e.g. an entry cached from a now-retracted edge
//!    stream).
//! 3. [`invalidate_all`](PeerIndex::invalidate_all) — drops every list.
//!    The blanket fallback after bulk changes, and what `apply_delta`
//!    degrades to when its preconditions fail (so callers may treat
//!    `apply_delta` as always-safe).
//!
//! Every maintenance call — all three above — bumps
//! [`generation`](PeerIndex::generation) **before** touching any slot.
//! Downstream caches use the token as their freshness check (the serving
//! front-end keys request coalescing on it). Maintenance calls must be
//! externally serialized with each other (the engine does this by taking
//! `&mut self` on its ingest path); concurrent *readers* are always safe
//! and simply see each list pre- or post-change.
//!
//! ## Epoch publication: the lock-free slot protocol
//!
//! Slots are *not* locks. Each one is a versioned atomic `Arc` cell
//! (`crossbeam::atomic::ArcCell` over epoch-based reclamation), so the
//! read path — serving traffic — is **wait-free**: one epoch pin, one
//! pointer load, one `Arc` clone. No reader ever blocks on a warm, an
//! invalidation, or a delta splice; it sees each slot's list entirely
//! pre- or entirely post-publication, never a torn intermediate.
//!
//! Writers build replacement lists off to the side and publish each with
//! a single pointer swap. Two write shapes exist:
//!
//! * **Optimistic fills** (lazy [`full_peers`](PeerIndex::full_peers)
//!   misses, eager [`warm`](PeerIndex::warm)/
//!   [`warm_symmetric`](PeerIndex::warm_symmetric) installs) observe the
//!   slot's version *before* computing and publish with a version
//!   compare-and-swap. The invariant making this sound: **every
//!   maintenance write that can change a slot's correct content bumps
//!   that slot's version** — invalidations swap every cleared slot (even
//!   `None` over `None`), and a delta splice refreshes *cold* affected
//!   slots too. A fill computed against pre-change data therefore always
//!   fails its CAS; a fill racing another fill of the same slot loses
//!   benignly (both computed the identical list). Slot versions are
//!   strictly monotonic, so a matching version names exactly the node
//!   that was observed (no ABA).
//! * **Serialized maintenance** (invalidations, delta splices) swaps
//!   unconditionally — external serialization means the only concurrent
//!   writers are fills, and a splice landing over a just-filled list
//!   patches data the fill computed from the same current state.
//!
//! Capped selectors cache a *bounded* full list — the canonical top
//! [`PeerSelector::cache_bound`] (`max_peers + 64` mask slack) — so power
//! users cannot blow up warm-list sizes; the delta path splices exactly
//! while lists are unsaturated and degrades to per-slot (or, for the
//! changed user's own saturated list, full) invalidation when a
//! saturated list's beyond-boundary promotion would be needed.

use crate::bulk::{BulkUserSimilarity, SimScratch};
use crate::peers::{PeerSelector, Peers};
use crate::UserSimilarity;
use crossbeam::atomic::ArcCell;
use fairrec_types::{Parallelism, UserId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Chunk size for eager warms: each parallel task computes one chunk of
/// users with a single [`SimScratch`], so scratch reuse matches worker
/// granularity while the O(num_users) scratch arrays live only as long
/// as the warm itself (a persistent per-thread scratch would pin that
/// memory in the shared worker pool for the process lifetime). Sized
/// from the *configured* parallelism, not the machine: several chunks
/// per executing worker keep the pool load-balanced, and a sequential
/// warm gets one chunk — one scratch — total.
fn warm_chunk_size(total: usize, parallelism: Parallelism) -> usize {
    let workers = parallelism.num_workers();
    if workers <= 1 {
        return total.max(1);
    }
    total.div_ceil(4 * workers).max(1)
}

/// What [`PeerIndex::apply_delta`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The exact splice ran: the user's full list was recomputed with one
    /// bulk kernel pass and the refreshed edges were spliced into
    /// `touched` warm endpoint lists. Every cached list is now bitwise
    /// identical to a cold rebuild against the current data.
    Spliced {
        /// Warm peer lists (other than the user's own) modified: patched
        /// in place, or — for saturated bounded lists whose exact patch
        /// would need beyond-boundary entries — cleared for lazy refill.
        touched: usize,
    },
    /// Every slot was cold — nothing to splice. The generation was still
    /// bumped, so in-flight fills against pre-change data cannot land.
    ColdIndex,
    /// The user lies outside this index's universe. Similarities between
    /// in-universe users never read an out-of-universe user's data, so no
    /// cached list is affected and the index is left untouched.
    OutOfUniverse,
    /// The delta could not be applied exactly — the measure is not
    /// bitwise symmetric, or the user's pre-change list was not cached in
    /// a partially warm index — so every list was invalidated instead
    /// (the safe blanket fallback).
    InvalidatedAll,
}

/// What a single [`PeerIndex::splice_peer`] call did to its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpliceOutcome {
    /// The slot was cold; its version was bumped (a `None`-over-`None`
    /// swap) so an in-flight fill computed against pre-delta data cannot
    /// land, and it will refill lazily from current data.
    ColdRefreshed,
    /// The warm list was patched exactly.
    Patched,
    /// The warm list was saturated at the cache bound and the exact patch
    /// would need an entry beyond the boundary — the slot was cleared for
    /// lazy recomputation instead.
    Invalidated,
    /// The slot's bounded top list is provably unchanged by this edge
    /// (the edge sits beyond a saturated list's boundary both before and
    /// after); nothing was written.
    Untouched,
}

/// Memoized Definition-1 peer lists over a fixed user universe
/// `0..num_users`. See the module docs for the caching contract and the
/// epoch-publication slot protocol.
#[derive(Debug)]
pub struct PeerIndex {
    selector: PeerSelector,
    slots: Vec<ArcCell<Peers>>,
    generation: AtomicU64,
    /// O(1) count of `Some` slots, kept in sync by the slot-write helpers
    /// [`Self::swap_slot`]/[`Self::cas_slot`] — `num_cached` sits on the
    /// per-ingest hot path (the engine checks it before every delta), so
    /// it must not scan `slots`.
    cached: AtomicUsize,
}

impl PeerIndex {
    /// An empty (cold) index for `num_users` users answering with
    /// `selector`'s threshold and cap.
    pub fn new(selector: PeerSelector, num_users: u32) -> Self {
        Self {
            selector,
            slots: (0..num_users).map(|_| ArcCell::new(None)).collect(),
            generation: AtomicU64::new(0),
            cached: AtomicUsize::new(0),
        }
    }

    /// Keeps the O(1) cached count in sync after a successful slot write
    /// that displaced `displaced_some` with `stored_some`.
    fn adjust_cached(&self, displaced_some: bool, stored_some: bool) {
        match (displaced_some, stored_some) {
            (false, true) => {
                self.cached.fetch_add(1, Ordering::AcqRel);
            }
            (true, false) => {
                self.cached.fetch_sub(1, Ordering::AcqRel);
            }
            _ => {}
        }
    }

    /// Unconditional slot publication (serialized-maintenance writes).
    /// Returns the displaced value.
    fn swap_slot(&self, idx: usize, value: Option<Arc<Peers>>) -> Option<Arc<Peers>> {
        let stored_some = value.is_some();
        let displaced = self.slots[idx].swap(value);
        self.adjust_cached(displaced.is_some(), stored_some);
        displaced
    }

    /// Optimistic slot publication: installs `value` only if the slot is
    /// still at `expected_version` (as observed by the caller's
    /// `load_versioned`, whose value had someness `displaced_some` —
    /// version uniqueness guarantees that observation *is* the displaced
    /// node). Returns whether the install happened.
    fn cas_slot(
        &self,
        idx: usize,
        displaced_some: bool,
        expected_version: u64,
        value: Option<Arc<Peers>>,
    ) -> bool {
        let stored_some = value.is_some();
        if self.slots[idx].compare_version_swap(expected_version, value) {
            self.adjust_cached(displaced_some, stored_some);
            true
        } else {
            false
        }
    }

    /// Builds an index whose entries come from precomputed similarity
    /// edges `(user, peer, simU)` instead of a measure — the bridge for
    /// the MapReduce pipeline, whose Job 2 emits exactly such edges.
    ///
    /// Every user in `populate` gets an entry (empty when no edge
    /// mentions them); users outside `populate` stay cold. Edges below
    /// the selector's δ and **self-edges** (`user == peer`) are dropped,
    /// duplicate `(user, peer)` edges collapse to the one with the
    /// highest similarity, and each list is canonicalised — so downstream
    /// views behave identically to the measure-driven path, which never
    /// admits a user as their own peer and scans each pair exactly once.
    pub fn from_edges(
        selector: PeerSelector,
        num_users: u32,
        populate: &[UserId],
        edges: impl IntoIterator<Item = (UserId, UserId, f64)>,
    ) -> Self {
        let index = Self::new(selector, num_users);
        let mut lists: Vec<(UserId, Peers)> = populate.iter().map(|&u| (u, Peers::new())).collect();
        lists.sort_by_key(|(u, _)| *u);
        for (user, peer, sim) in edges {
            if peer == user || sim < selector.delta {
                continue;
            }
            if let Ok(slot) = lists.binary_search_by_key(&user, |(u, _)| *u) {
                lists[slot].1.push((peer, sim));
            }
        }
        for (user, mut list) in lists {
            // Collapse duplicate peers to the max-similarity edge: group
            // by peer id with the best similarity first, keep the first
            // occurrence of each peer.
            list.sort_by(|a, b| {
                a.0.cmp(&b.0)
                    .then(b.1.partial_cmp(&a.1).expect("similarities are finite"))
            });
            list.dedup_by_key(|&mut (peer, _)| peer);
            PeerSelector::canonicalize(&mut list);
            if let Some(bound) = selector.cache_bound() {
                list.truncate(bound);
            }
            if user.index() < index.slots.len() {
                index.swap_slot(user.index(), Some(Arc::new(list)));
            }
        }
        index
    }

    /// Builds an index whose entries are precomputed **finished** full
    /// peer lists: already δ-filtered, self-edge-free, duplicate-free,
    /// and in canonical order (similarity descending, id ascending).
    /// This is the fast path for swap-based warms that scatter edges
    /// into per-user lists and canonicalise them once up front — unlike
    /// [`from_edges`](Self::from_edges) there is no per-list sort, dedup,
    /// or δ re-filter here, so the per-shard build is a pure move of the
    /// lists into slots. Debug builds assert the canonical-order
    /// contract; release builds trust the caller.
    pub fn from_full_lists(
        selector: PeerSelector,
        num_users: u32,
        lists: impl IntoIterator<Item = (UserId, Peers)>,
    ) -> Self {
        Self::from_mapped_full_lists(
            selector,
            num_users,
            lists.into_iter().inspect(|(user, list)| {
                debug_assert!(
                    list.iter().all(|&(v, _)| v != *user),
                    "from_full_lists requires self-edge-free lists for user {user}"
                );
            }),
        )
    }

    /// [`from_full_lists`](Self::from_full_lists) for indexes whose slot
    /// ids live in a *different* id space than the peer ids inside the
    /// lists — the compacted sharded index stores shard-local slots whose
    /// lists carry **global** peer ids, so the slot-vs-content self-edge
    /// check of `from_full_lists` does not apply (the producing kernel
    /// already skipped the self pair in global space). Canonical order
    /// and δ-filtering are still asserted in debug builds.
    pub(crate) fn from_mapped_full_lists(
        selector: PeerSelector,
        num_users: u32,
        lists: impl IntoIterator<Item = (UserId, Peers)>,
    ) -> Self {
        let index = Self::new(selector, num_users);
        for (user, mut list) in lists {
            debug_assert!(
                list.windows(2)
                    .all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)),
                "from_full_lists requires canonical order (sim desc, id asc) for user {user}"
            );
            debug_assert!(
                list.iter().all(|&(_, s)| s >= selector.delta),
                "from_full_lists requires δ-filtered lists for user {user}"
            );
            if let Some(bound) = selector.cache_bound() {
                list.truncate(bound);
            }
            if user.index() < index.slots.len() {
                index.swap_slot(user.index(), Some(Arc::new(list)));
            }
        }
        index
    }

    /// Returns an index over a larger universe that keeps this index's
    /// cached lists and generation; the new slots start cold.
    ///
    /// Only sound when every cached list is already correct over the
    /// *grown* universe — i.e. the newly added ids cannot have had a
    /// defined similarity to any existing user at growth time. That
    /// holds for rating-derived measures when growth is triggered by a
    /// brand-new user's first rating (before the event they had no
    /// ratings, hence no defined pairs, so no cached list could mention
    /// them). Measures whose similarities do not derive from the rating
    /// relation (profile, semantic) can score a newly added id against
    /// existing users, so growing *their* index this way would leave
    /// every cached list stale — rebuild or invalidate instead.
    ///
    /// # Panics
    /// Panics if `num_users` is smaller than the current universe.
    pub fn grow_universe(&self, num_users: u32) -> Self {
        assert!(
            num_users >= self.num_users(),
            "universe can only grow ({} -> {num_users})",
            self.num_users()
        );
        let mut cached = 0usize;
        let mut slots: Vec<ArcCell<Peers>> = Vec::with_capacity(num_users as usize);
        for slot in &self.slots {
            let value = slot.load();
            cached += usize::from(value.is_some());
            slots.push(ArcCell::new(value));
        }
        slots.resize_with(num_users as usize, || ArcCell::new(None));
        Self {
            selector: self.selector,
            slots,
            generation: AtomicU64::new(self.generation()),
            cached: AtomicUsize::new(cached),
        }
    }

    /// Like [`grow_universe`](Self::grow_universe), but sound for
    /// measures that **can** score the newly added ids against existing
    /// users (profile, semantic): every cached list is *revalidated*
    /// against the new ids instead of being trusted as-is. For each warm
    /// user `v` the measure is asked for `simU(v, new)` for every new id;
    /// qualifying edges are inserted at their canonical position, so each
    /// preserved list is bitwise identical to a cold recompute over the
    /// grown universe (same similarity bits, canonical order is a total
    /// order over distinct ids). New slots start cold and fill lazily.
    ///
    /// Unlike `grow_universe` this **bumps** the generation: cached list
    /// *contents* may change, so downstream caches keyed on the token
    /// must revalidate.
    ///
    /// # Panics
    /// Panics if `num_users` is smaller than the current universe.
    pub fn grow_universe_revalidated<S: UserSimilarity + ?Sized>(
        &self,
        measure: &S,
        num_users: u32,
    ) -> Self {
        let old_n = self.num_users();
        assert!(
            num_users >= old_n,
            "universe can only grow ({old_n} -> {num_users})"
        );
        let delta = self.selector.delta;
        let bound = self.selector.cache_bound();
        let mut cached = 0usize;
        let mut slots: Vec<ArcCell<Peers>> = Vec::with_capacity(num_users as usize);
        for (idx, slot) in self.slots.iter().enumerate() {
            let v = UserId::new(idx as u32);
            let revalidated = slot.load().map(|list| {
                let mut list: Peers = list.as_ref().clone();
                for u in (old_n..num_users).map(UserId::new) {
                    let Some(s) = measure.similarity(v, u).filter(|&s| s >= delta) else {
                        continue;
                    };
                    let pos = list.partition_point(|&(w, sw)| sw > s || (sw == s && w < u));
                    list.insert(pos, (u, s));
                }
                // New edges only add entries, so the bounded top list of
                // the grown universe is a prefix of this merged list —
                // re-truncating keeps the cache bitwise equal to a cold
                // bounded recompute.
                if let Some(bound) = bound {
                    list.truncate(bound);
                }
                Arc::new(list)
            });
            cached += usize::from(revalidated.is_some());
            slots.push(ArcCell::new(revalidated));
        }
        slots.resize_with(num_users as usize, || ArcCell::new(None));
        Self {
            selector: self.selector,
            slots,
            generation: AtomicU64::new(self.generation() + 1),
            cached: AtomicUsize::new(cached),
        }
    }

    /// Returns a fully cold index over `num_users` (any size) carrying
    /// this index's selector and a **bumped** generation — the
    /// replacement form of [`invalidate_all`](Self::invalidate_all) for
    /// when the universe must change size and warm lists cannot be kept
    /// (see [`grow_universe`](Self::grow_universe) for when they can).
    /// Carrying the token forward keeps it monotonic across the swap, so
    /// downstream caches keyed on [`generation`](Self::generation) can
    /// never revalidate pre-rebuild entries as fresh.
    pub fn rebuild_cold(&self, num_users: u32) -> Self {
        Self {
            selector: self.selector,
            slots: (0..num_users).map(|_| ArcCell::new(None)).collect(),
            generation: AtomicU64::new(self.generation() + 1),
            cached: AtomicUsize::new(0),
        }
    }

    /// Returns `self` with its generation token set to `generation` —
    /// for swap-based maintenance flows that assemble a **replacement**
    /// index (e.g. the sharded symmetric warm builds each shard's fresh
    /// index from kernel edges via [`from_edges`](Self::from_edges), then
    /// swaps it in) and must carry the replaced index's token forward so
    /// downstream freshness checks stay monotonic, exactly as
    /// [`rebuild_cold`](Self::rebuild_cold) does for the cold-rebuild
    /// flow.
    #[must_use]
    pub fn with_generation(self, generation: u64) -> Self {
        self.generation.store(generation, Ordering::Release);
        self
    }

    /// The selector whose δ / cap this index answers with.
    pub fn selector(&self) -> &PeerSelector {
        &self.selector
    }

    /// Size of the user universe.
    pub fn num_users(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Number of users whose peer list is currently cached. O(1): the
    /// count is maintained on every slot transition, not derived by
    /// scanning — this sits on the per-rating ingest hot path.
    pub fn num_cached(&self) -> usize {
        self.cached.load(Ordering::Acquire)
    }

    /// Freshness token: bumped by every invalidation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Drops the cached list of one user for lazy recomputation.
    ///
    /// This is **not** the rating-change path: a changed rating moves
    /// `simU(user, ·)` for every co-rating peer, leaving *other* users'
    /// cached lists stale — use [`apply_delta`](Self::apply_delta) (exact
    /// splice) or [`invalidate_all`](Self::invalidate_all) (blanket) for
    /// data changes. See the module-level update-path contract.
    ///
    /// The generation is bumped *before* the slot is cleared, and the
    /// clear is a version-bumping swap even when the slot was already
    /// cold: an in-flight fill computed against pre-invalidation data
    /// CASes on the pre-swap version and can never land afterwards.
    pub fn invalidate_user(&self, user: UserId) {
        if user.index() < self.slots.len() {
            self.generation.fetch_add(1, Ordering::AcqRel);
            self.swap_slot(user.index(), None);
        }
    }

    /// Drops every cached list (call after bulk data changes). Bumps the
    /// generation before clearing, like
    /// [`invalidate_user`](Self::invalidate_user).
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.clear_all_slots();
    }

    /// The raw cached full list of `user`, if present. Full = uncapped
    /// and unmasked; most callers want [`peers_of`](Self::peers_of) or
    /// [`group_peers`](Self::group_peers) instead.
    pub fn cached_full(&self, user: UserId) -> Option<Arc<Peers>> {
        self.slots.get(user.index())?.load()
    }

    /// [`cached_full`](Self::cached_full) under a caller-held epoch pin
    /// — the building block of the bulk accessors.
    pub(crate) fn cached_full_with(
        &self,
        user: UserId,
        guard: &crossbeam::epoch::Guard,
    ) -> Option<Arc<Peers>> {
        self.slots.get(user.index())?.load_with(guard)
    }

    /// The cached full lists of every user in `users` under **one**
    /// epoch pin. The pin (a seqcst announcement round-trip) is the
    /// dominant cost of a snapshot load, so group-shaped reads — the
    /// request path reads every member's list — pay it once here
    /// instead of once per member. Bitwise the same answers as
    /// per-member [`cached_full`](Self::cached_full) calls.
    pub fn cached_full_bulk(&self, users: &[UserId]) -> Vec<Option<Arc<Peers>>> {
        let guard = crossbeam::epoch::pin();
        users
            .iter()
            .map(|&u| self.cached_full_with(u, &guard))
            .collect()
    }

    /// The memoized full peer list of `user`, computing and caching it on
    /// first access. Users outside the universe get an empty list.
    pub fn full_peers<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        user: UserId,
    ) -> Arc<Peers> {
        let Some(slot) = self.slots.get(user.index()) else {
            return Arc::new(Peers::new());
        };
        let (cached, version) = slot.load_versioned();
        if let Some(cached) = cached {
            return cached;
        }
        // Optimistic fill: compute off to the side, publish with a
        // version CAS against the pre-compute observation. A concurrent
        // filler computes the identical list, so losing that race is
        // benign; any *maintenance* write in between bumped the slot
        // version (invalidations and delta refreshes swap even cold
        // slots), so a list computed against pre-change data always fails
        // the CAS. The value is still returned either way — it was
        // correct when computed — it just isn't cached.
        let full = Arc::new(self.compute_full(measure, user));
        let _ = self.cas_slot(user.index(), false, version, Some(Arc::clone(&full)));
        full
    }

    /// Definition 1 for one user: the capped peer list, identical to
    /// `selector.peers_of(measure, user, universe, &[])`.
    pub fn peers_of<S: BulkUserSimilarity + ?Sized>(&self, measure: &S, user: UserId) -> Peers {
        self.selector.view(&self.full_peers(measure, user), &[])
    }

    /// Peer lists for every member of `group` with co-members masked —
    /// identical to `selector.peers_for_group(measure, group, universe)`
    /// but served from the cache without recomputation.
    pub fn group_peers<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        group: &[UserId],
    ) -> Vec<(UserId, Peers)> {
        // One pinned pass over the warm slots; only misses fall back to
        // the (pin-per-call) computing path.
        let cached = self.cached_full_bulk(group);
        group
            .iter()
            .zip(cached)
            .map(|(&member, cached)| {
                let full = cached.unwrap_or_else(|| self.full_peers(measure, member));
                (member, self.selector.view(&full, group))
            })
            .collect()
    }

    /// Like [`group_peers`](Self::group_peers) but served purely from
    /// cached entries (cold users answer with no peers). This is the
    /// accessor for indexes built with [`from_edges`](Self::from_edges),
    /// where no measure exists to fill misses.
    pub fn group_peers_cached(&self, group: &[UserId]) -> Vec<(UserId, Peers)> {
        let cached = self.cached_full_bulk(group);
        group
            .iter()
            .zip(cached)
            .map(|(&member, cached)| {
                let view = match cached {
                    Some(full) => self.selector.view(&full, group),
                    None => Peers::new(),
                };
                (member, view)
            })
            .collect()
    }

    /// Eagerly fills every cold slot, fanning the per-user bulk kernel
    /// passes out across the configured parallelism (each worker thread
    /// reuses one kernel scratch). Returns the number of lists computed.
    pub fn warm<S: BulkUserSimilarity + Sync + ?Sized>(
        &self,
        measure: &S,
        parallelism: Parallelism,
    ) -> usize {
        // Scan the cold slots *with their versions*: each install below
        // CASes against its scan-time observation, so any maintenance
        // write in between (which always bumps the touched slot's
        // version) makes the stale install fail — the same guard as
        // `full_peers`, per slot instead of global.
        let cold: Vec<(UserId, u64)> = (0..self.num_users())
            .map(UserId::new)
            .filter_map(|u| {
                let (value, version) = self.slots[u.index()].load_versioned();
                value.is_none().then_some((u, version))
            })
            .collect();
        let computed = cold.len();
        let chunks: Vec<Vec<(UserId, u64)>> = cold
            .chunks(warm_chunk_size(cold.len(), parallelism))
            .map(<[(UserId, u64)]>::to_vec)
            .collect();
        let lists = parallelism.map(chunks, |chunk| {
            let mut scratch = SimScratch::new();
            chunk
                .into_iter()
                .map(|(u, version)| {
                    (
                        u,
                        version,
                        Arc::new(self.compute_full_with(measure, u, &mut scratch)),
                    )
                })
                .collect::<Vec<_>>()
        });
        for (user, version, full) in lists.into_iter().flatten() {
            let _ = self.cas_slot(user.index(), false, version, Some(full));
        }
        computed
    }

    /// Symmetric bulk warm: fills a **fully cold** index with one
    /// upper-triangle kernel pass per user
    /// ([`similarities_above`](BulkUserSimilarity::similarities_above)),
    /// then scatters every qualifying edge to both endpoints' lists —
    /// each pair is evaluated exactly once, halving the arithmetic of
    /// [`warm`](Self::warm). Only sound for measures whose similarity is
    /// **bitwise** symmetric, so it falls back to the per-user warm when
    /// [`is_symmetric`](BulkUserSimilarity::is_symmetric) is `false` or
    /// when any slot is already cached (a partial triangle cannot be
    /// restricted to the cold subset). The resulting lists are bitwise
    /// identical to `warm`'s either way; returns the number of lists
    /// computed.
    pub fn warm_symmetric<S: BulkUserSimilarity + Sync + ?Sized>(
        &self,
        measure: &S,
        parallelism: Parallelism,
    ) -> usize {
        if !measure.is_symmetric() || self.num_cached() != 0 {
            return self.warm(measure, parallelism);
        }
        let n = self.num_users();
        // Per-slot scan-time snapshots: installs CAS against these, so a
        // concurrent invalidation (or a fill that raced in — whose list
        // is bitwise identical, making the overwrite benign) is detected
        // per slot.
        let snapshots: Vec<(bool, u64)> = self
            .slots
            .iter()
            .map(|slot| {
                let (value, version) = slot.load_versioned();
                (value.is_some(), version)
            })
            .collect();
        let delta = self.selector.delta;
        // Upper-triangle pass: Definition-1 admission (simU ≥ δ) is
        // per-pair, so the threshold can be applied per edge here. One
        // scratch per chunk, dropped when the warm returns.
        let users: Vec<UserId> = (0..n).map(UserId::new).collect();
        let chunks: Vec<Vec<UserId>> = users
            .chunks(warm_chunk_size(users.len(), parallelism))
            .map(<[UserId]>::to_vec)
            .collect();
        // Per user: `(u, upper-triangle edges of u)`.
        type UserEdges = (UserId, Vec<(UserId, f64)>);
        let triangle: Vec<Vec<UserEdges>> = parallelism.map(chunks, |chunk| {
            let mut scratch = SimScratch::new();
            chunk
                .into_iter()
                .map(|u| {
                    let mut edges = Vec::new();
                    measure.similarities_above(u, n, &mut scratch, &mut edges);
                    edges.retain(|&(_, s)| s >= delta);
                    (u, edges)
                })
                .collect::<Vec<_>>()
        });
        // Scatter both endpoints, then canonicalize each list. The
        // canonical order (sim desc, id asc) is a total order over
        // distinct peer ids, so the scatter order cannot leak into the
        // final lists.
        let mut lists: Vec<Peers> = vec![Peers::new(); n as usize];
        for (u, edges) in triangle.into_iter().flatten() {
            for (v, s) in edges {
                lists[u.index()].push((v, s));
                lists[v.index()].push((u, s));
            }
        }
        let bound = self.selector.cache_bound();
        let lists = parallelism.map(lists, |mut list| {
            PeerSelector::canonicalize(&mut list);
            if let Some(bound) = bound {
                list.truncate(bound);
            }
            Arc::new(list)
        });
        for (idx, full) in lists.into_iter().enumerate() {
            let (was_some, version) = snapshots[idx];
            let _ = self.cas_slot(idx, was_some, version, Some(full));
        }
        n as usize
    }

    /// Incrementally repairs the cache after a point change to `user`'s
    /// underlying data (one rating inserted, updated, or removed —
    /// *after* the data mutation has been applied). This is the
    /// delta-kernel update path: instead of dropping warm lists it
    ///
    /// 1. bumps the [`generation`](Self::generation) (so in-flight fills
    ///    computed against pre-change data can never be stored),
    /// 2. recomputes `user`'s full peer list with one bulk kernel pass
    ///    over the **current** data,
    /// 3. splices the refreshed `(user, simU)` edge into every warm
    ///    endpoint list — removed where the pair no longer qualifies,
    ///    inserted at its canonical position where it does — touching
    ///    exactly the union of `user`'s old and new peer sets (a rating
    ///    change moves `µ_user`, so *every* co-rating peer's edge can
    ///    move, not merely the raters of the touched item), and
    /// 4. stores the recomputed list in `user`'s own slot.
    ///
    /// The result is **bitwise identical** to [`invalidate_all`] followed
    /// by a fresh [`warm`]/[`warm_symmetric`] against the changed data
    /// (pinned by proptests in `tests/incremental.rs`), at the cost of
    /// one kernel pass plus O(affected lists) splices instead of a full
    /// universe re-warm. Cold slots are skipped — they lazily fill from
    /// current data anyway.
    ///
    /// ## Exactness preconditions
    ///
    /// * The measure is **bitwise symmetric**
    ///   ([`is_symmetric`](BulkUserSimilarity::is_symmetric)): splicing
    ///   writes `user`-side similarities into other users' lists.
    /// * `user`'s **pre-change** list is cached whenever *any* list is
    ///   (callers that cannot guarantee a fully warm index should read
    ///   [`full_peers`](Self::full_peers) for `user` *before* mutating
    ///   the data, as `RecommenderEngine::ingest_rating` does). Without
    ///   it, the stale `(v, user)` edges cannot be enumerated.
    ///
    /// When either precondition fails the call degrades to
    /// [`invalidate_all`] and reports it — callers may therefore treat
    /// `apply_delta` as always-safe. Like all maintenance calls it must
    /// be externally serialized with other mutations; a concurrent
    /// invalidation supersedes the splice (detected via the generation
    /// token, remaining writes are abandoned).
    ///
    /// [`invalidate_all`]: Self::invalidate_all
    /// [`warm`]: Self::warm
    /// [`warm_symmetric`]: Self::warm_symmetric
    pub fn apply_delta<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        user: UserId,
    ) -> DeltaOutcome {
        if user.index() >= self.slots.len() {
            return DeltaOutcome::OutOfUniverse;
        }
        // Bump first, exactly like the invalidation paths: the underlying
        // data already changed, so any fill still in flight computed
        // against stale data and must not be stored.
        self.generation.fetch_add(1, Ordering::AcqRel);
        let generation = self.generation();
        if self.num_cached() == 0 {
            return DeltaOutcome::ColdIndex;
        }
        let Some(old) = self.cached_full(user) else {
            // A partially warm index without the user's pre-change list:
            // the warm lists holding stale (v, user) edges cannot be
            // enumerated, so fall back to the blanket invalidation.
            self.clear_all_slots();
            return DeltaOutcome::InvalidatedAll;
        };
        if !measure.is_symmetric() {
            self.clear_all_slots();
            return DeltaOutcome::InvalidatedAll;
        }
        if self.selector.cache_bound().is_some_and(|b| old.len() >= b) {
            // The user's own stored list is saturated at the cache bound:
            // peers beyond the boundary were dropped, so the stale
            // (v, user) edges cannot all be enumerated. Blanket fallback.
            self.clear_all_slots();
            return DeltaOutcome::InvalidatedAll;
        }
        // The *uncapped* new list: affected-endpoint enumeration and the
        // per-endpoint splices need every qualifying edge, not just the
        // bounded top (an edge below the user's own boundary can still
        // sit inside another endpoint's bounded list).
        let new = self.compute_full_uncapped(measure, user);

        // The affected endpoints: every peer the user had or now has.
        // Cached lists are symmetric-consistent (same measure, same δ,
        // bitwise-symmetric values), so a warm list contains a stale
        // `user` edge iff its owner appears in the user's old list. (The
        // saturation check above guarantees `old` is the complete old
        // edge set.)
        let mut affected: Vec<UserId> = old.iter().chain(new.iter()).map(|&(v, _)| v).collect();
        affected.sort_unstable();
        affected.dedup();
        // Id-sorted copy of the new list for O(log n) edge lookups.
        let mut new_by_id: Vec<(UserId, f64)> = new.clone();
        new_by_id.sort_unstable_by_key(|&(v, _)| v);

        let mut touched = 0usize;
        for v in affected {
            let sim = new_by_id
                .binary_search_by_key(&v, |&(w, _)| w)
                .ok()
                .map(|slot| new_by_id[slot].1);
            match self.splice_peer(v, user, sim, generation) {
                None => {
                    // A concurrent invalidation supersedes this splice.
                    return DeltaOutcome::Spliced { touched };
                }
                Some(SpliceOutcome::Patched | SpliceOutcome::Invalidated) => touched += 1,
                Some(SpliceOutcome::ColdRefreshed | SpliceOutcome::Untouched) => {}
            }
        }
        let mut own = new;
        if let Some(bound) = self.selector.cache_bound() {
            own.truncate(bound);
        }
        self.store_full_list(user, Arc::new(own), generation);
        DeltaOutcome::Spliced { touched }
    }

    /// Bumps the generation token and returns the **new** value — the
    /// entry point for maintenance flows coordinated *outside* this type
    /// (the sharded index bumps every shard before splicing any). The
    /// returned token is what the coordinating caller passes back as
    /// `expected_generation` to the splice primitives below.
    pub(crate) fn bump_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Splices one refreshed `(peer, sim)` edge into `slot`'s cached
    /// list: removes any existing `peer` entry, then — when `new_sim` is
    /// `Some` — inserts it at its canonical position. The slot id and the
    /// peer id may live in different id spaces (shard-local slots, global
    /// contents). Returns `None` when a concurrent invalidation changed
    /// the generation (the caller must abandon its remaining splices);
    /// otherwise reports what happened via [`SpliceOutcome`].
    ///
    /// Bounded (capped-selector) lists are handled exactly: an
    /// unsaturated list is the endpoint's complete edge set, so the
    /// splice is exact as in the uncapped case. A *saturated* list (at
    /// the cache bound) is a truncation, so only edges ranking at or
    /// above its boundary key can be patched exactly — a new edge
    /// outranking the boundary splices in (re-truncated), an edge beyond
    /// the boundary provably leaves the bounded top unchanged, and a
    /// removal *from within* the list would need the unknown
    /// beyond-boundary promotion, so the slot is cleared for lazy
    /// recomputation instead.
    pub(crate) fn splice_peer(
        &self,
        slot: UserId,
        peer: UserId,
        new_sim: Option<f64>,
        expected_generation: u64,
    ) -> Option<SpliceOutcome> {
        let idx = slot.index();
        let bound = self.selector.cache_bound();
        loop {
            let (cur, version) = self.slots[idx].load_versioned();
            if self.generation() != expected_generation {
                return None;
            }
            let Some(list) = cur else {
                // Refresh the cold slot: the None-over-None CAS bumps its
                // version so an in-flight fill computed against pre-delta
                // data cannot land; the slot refills lazily from current
                // data.
                if self.cas_slot(idx, false, version, None) {
                    return Some(SpliceOutcome::ColdRefreshed);
                }
                continue; // lost to a concurrent fill; re-observe
            };
            let saturated = bound.is_some_and(|b| list.len() >= b);
            let (value, outcome) = if saturated {
                let &(last_peer, last_sim) = list.last().expect("saturated list is non-empty");
                let outranks_boundary =
                    new_sim.is_some_and(|s| s > last_sim || (s == last_sim && peer < last_peer));
                if outranks_boundary {
                    let sim = new_sim.expect("outranking edge exists");
                    let mut patched: Peers =
                        list.iter().copied().filter(|&(w, _)| w != peer).collect();
                    let pos = patched.partition_point(|&(w, s)| s > sim || (s == sim && w < peer));
                    patched.insert(pos, (peer, sim));
                    patched.truncate(bound.expect("saturated implies bounded"));
                    (Some(Arc::new(patched)), SpliceOutcome::Patched)
                } else if list.iter().any(|&(w, _)| w == peer) {
                    // The edge leaves (or falls below) the boundary: the
                    // promotion from beyond the bound is unknown.
                    (None, SpliceOutcome::Invalidated)
                } else {
                    // Beyond the boundary before and after: the bounded
                    // top is unchanged, leave the slot (and version) be.
                    return Some(SpliceOutcome::Untouched);
                }
            } else {
                let mut patched: Peers = list.iter().copied().filter(|&(w, _)| w != peer).collect();
                if let Some(sim) = new_sim {
                    let pos = patched.partition_point(|&(w, s)| s > sim || (s == sim && w < peer));
                    patched.insert(pos, (peer, sim));
                }
                (Some(Arc::new(patched)), SpliceOutcome::Patched)
            };
            if self.cas_slot(idx, true, version, value) {
                return Some(outcome);
            }
            // Lost a race with a concurrent fill (or a superseding
            // invalidation — the generation re-check above catches that
            // next turn). Re-observe and retry.
        }
    }

    /// Stores a complete recomputed full list into `slot`, guarded by the
    /// generation token like every other deferred write.
    pub(crate) fn store_full_list(&self, slot: UserId, list: Arc<Peers>, expected_generation: u64) {
        if slot.index() >= self.slots.len() {
            return;
        }
        loop {
            let (cur, version) = self.slots[slot.index()].load_versioned();
            if self.generation() != expected_generation {
                return;
            }
            if self.cas_slot(
                slot.index(),
                cur.is_some(),
                version,
                Some(Arc::clone(&list)),
            ) {
                return;
            }
        }
    }

    /// Installs a complete full list into `slot` iff the generation still
    /// matches — the per-slot form of a swap-based warm install (the
    /// sharded symmetric warm publishes each computed list through here,
    /// so a whole-shard warm never excludes concurrent readers). The
    /// version-load → generation-check → CAS order makes every
    /// interleaving with an invalidation safe: an invalidation bumps the
    /// generation *before* swapping slots, so either the check here fails
    /// or the invalidation's swap bumps the version after our load and
    /// the CAS fails. Returns whether the install happened.
    pub(crate) fn try_install_list(
        &self,
        slot: UserId,
        list: Arc<Peers>,
        expected_generation: u64,
    ) -> bool {
        if slot.index() >= self.slots.len() {
            return false;
        }
        let (cur, version) = self.slots[slot.index()].load_versioned();
        if self.generation() != expected_generation {
            return false;
        }
        // A concurrent fill may have landed the identical list already;
        // overwriting it is benign (same data) and keeps one code path.
        self.cas_slot(slot.index(), cur.is_some(), version, Some(list))
    }

    /// Clears every slot without bumping the generation (callers on the
    /// maintenance paths have already bumped it). Every clear is a
    /// version-bumping swap — including `None` over `None` — so no
    /// in-flight fill computed against pre-change data can land.
    pub(crate) fn clear_all_slots(&self) {
        for idx in 0..self.slots.len() {
            self.swap_slot(idx, None);
        }
    }

    /// One-off form of [`compute_full_with`](Self::compute_full_with)
    /// for lazy single-user fills: the scratch lives for one kernel
    /// pass, whose cost dominates the allocation.
    fn compute_full<S: BulkUserSimilarity + ?Sized>(&self, measure: &S, user: UserId) -> Peers {
        self.compute_full_with(measure, user, &mut SimScratch::new())
    }

    /// The cached form of a user's full list: δ-filtered, canonical, and
    /// truncated to the selector's [`PeerSelector::cache_bound`] (the
    /// whole list when uncapped). Capped selectors go through the
    /// kernel-side top-cap heap, so a power user's list costs
    /// O(n log bound), not a full sort.
    fn compute_full_with<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        user: UserId,
        scratch: &mut SimScratch,
    ) -> Peers {
        let bounded = PeerSelector {
            delta: self.selector.delta,
            max_peers: self.selector.cache_bound(),
        };
        bounded.peers_of_bulk(measure, user, self.num_users(), &[], scratch)
    }

    /// The truly uncapped full list — the delta path's edge enumeration,
    /// which must see every qualifying edge regardless of the cache
    /// bound.
    fn compute_full_uncapped<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        user: UserId,
    ) -> Peers {
        let uncapped = PeerSelector {
            delta: self.selector.delta,
            max_peers: None,
        };
        uncapped.peers_of_bulk(measure, user, self.num_users(), &[], &mut SimScratch::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UserSimilarity;

    /// Similarity fixed by a dense table; `None` where negative.
    struct Table(Vec<Vec<f64>>);

    impl UserSimilarity for Table {
        fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
            let s = *self.0.get(u.index())?.get(v.index())?;
            (s >= 0.0).then_some(s)
        }
        fn name(&self) -> &'static str {
            "table"
        }
    }

    /// The test tables are symmetric matrices of shared constants, so
    /// declaring bitwise symmetry is sound and exercises the symmetric
    /// warm path.
    impl BulkUserSimilarity for Table {
        fn is_symmetric(&self) -> bool {
            true
        }
    }

    fn table5() -> Table {
        Table(vec![
            vec![1.0, 0.9, 0.2, 0.9, 0.5],
            vec![0.9, 1.0, 0.3, 0.4, 0.6],
            vec![0.2, 0.3, 1.0, 0.8, 0.7],
            vec![0.9, 0.4, 0.8, 1.0, 0.1],
            vec![0.5, 0.6, 0.7, 0.1, 1.0],
        ])
    }

    #[test]
    fn matches_direct_selector_calls() {
        let m = table5();
        let sel = PeerSelector::new(0.3).unwrap();
        let index = PeerIndex::new(sel, 5);
        for u in (0..5).map(UserId::new) {
            let direct = sel.peers_of(&m, u, (0..5).map(UserId::new), &[]);
            assert_eq!(index.peers_of(&m, u), direct, "user {u}");
        }
    }

    #[test]
    fn group_masking_matches_recomputation_with_cap() {
        let m = table5();
        // Cap of 2 is the interesting case: masking a member must promote
        // the next-best peer into the capped window.
        let sel = PeerSelector::new(0.0).unwrap().with_max_peers(2);
        let index = PeerIndex::new(sel, 5);
        let group = [UserId::new(0), UserId::new(1)];
        let direct = sel.peers_for_group(&m, &group, (0..5).map(UserId::new));
        assert_eq!(index.group_peers(&m, &group), direct);
    }

    #[test]
    fn lazy_fill_then_cache_hit() {
        let m = table5();
        let index = PeerIndex::new(PeerSelector::new(0.5).unwrap(), 5);
        assert_eq!(index.num_cached(), 0);
        let first = index.peers_of(&m, UserId::new(0));
        assert_eq!(index.num_cached(), 1);
        let full_a = index.cached_full(UserId::new(0)).unwrap();
        let again = index.peers_of(&m, UserId::new(0));
        let full_b = index.cached_full(UserId::new(0)).unwrap();
        assert_eq!(first, again);
        assert!(
            Arc::ptr_eq(&full_a, &full_b),
            "second read must hit the cache"
        );
    }

    #[test]
    fn warm_fills_everything_and_counts() {
        let m = table5();
        let index = PeerIndex::new(PeerSelector::new(0.0).unwrap(), 5);
        let _ = index.peers_of(&m, UserId::new(2));
        assert_eq!(index.warm(&m, Parallelism::Sequential), 4);
        assert_eq!(index.num_cached(), 5);
        assert_eq!(index.warm(&m, Parallelism::Sequential), 0, "already warm");
    }

    #[test]
    fn warm_symmetric_matches_per_user_warm() {
        let m = table5();
        let sel = PeerSelector::new(0.3).unwrap();
        let per_user = PeerIndex::new(sel, 5);
        per_user.warm(&m, Parallelism::Sequential);
        let symmetric = PeerIndex::new(sel, 5);
        assert_eq!(symmetric.warm_symmetric(&m, Parallelism::Sequential), 5);
        for u in (0..5).map(UserId::new) {
            assert_eq!(
                symmetric.cached_full(u).unwrap(),
                per_user.cached_full(u).unwrap(),
                "user {u}"
            );
        }
    }

    #[test]
    fn warm_symmetric_falls_back_on_partial_or_asymmetric() {
        let m = table5();
        let sel = PeerSelector::new(0.3).unwrap();
        let reference = PeerIndex::new(sel, 5);
        reference.warm(&m, Parallelism::Sequential);

        // Partially warm: the triangle cannot be restricted, so the
        // per-user path finishes the job — identical lists either way.
        let partial = PeerIndex::new(sel, 5);
        let _ = partial.peers_of(&m, UserId::new(2));
        assert_eq!(partial.warm_symmetric(&m, Parallelism::Sequential), 4);
        // A measure that does not declare bitwise symmetry never takes
        // the triangle path.
        let pairwise = crate::bulk::PairwiseOnly::new(&m);
        let asymmetric = PeerIndex::new(sel, 5);
        assert_eq!(
            asymmetric.warm_symmetric(&pairwise, Parallelism::Sequential),
            5
        );
        for u in (0..5).map(UserId::new) {
            let want = reference.cached_full(u).unwrap();
            assert_eq!(partial.cached_full(u).unwrap(), want, "partial, user {u}");
            assert_eq!(asymmetric.cached_full(u).unwrap(), want, "asym, user {u}");
        }
    }

    #[test]
    fn invalidation_drops_entries_and_bumps_generation() {
        let m = table5();
        let index = PeerIndex::new(PeerSelector::new(0.0).unwrap(), 5);
        index.warm(&m, Parallelism::Sequential);
        let g0 = index.generation();
        index.invalidate_user(UserId::new(3));
        assert_eq!(index.num_cached(), 4);
        assert!(index.generation() > g0);
        index.invalidate_all();
        assert_eq!(index.num_cached(), 0);
        assert!(index.generation() > g0 + 1);
    }

    #[test]
    fn out_of_universe_users_answer_empty() {
        let m = table5();
        let index = PeerIndex::new(PeerSelector::new(0.0).unwrap(), 5);
        assert!(index.peers_of(&m, UserId::new(99)).is_empty());
        assert!(index.cached_full(UserId::new(99)).is_none());
        index.invalidate_user(UserId::new(99)); // must not panic
    }

    #[test]
    fn from_edges_builds_canonical_capped_lists() {
        let sel = PeerSelector::new(0.5).unwrap().with_max_peers(2);
        let member = UserId::new(0);
        let edges = vec![
            (member, UserId::new(2), 0.6),
            (member, UserId::new(3), 0.9),
            (member, UserId::new(4), 0.9), // ties break by ascending id
            (member, UserId::new(1), 0.2), // below δ — dropped
        ];
        let index = PeerIndex::from_edges(sel, 5, &[member], edges);
        let views = index.group_peers_cached(&[member]);
        assert_eq!(
            views,
            vec![(member, vec![(UserId::new(3), 0.9), (UserId::new(4), 0.9)])]
        );
        // The cached full list keeps the uncapped tail for re-views.
        assert_eq!(index.cached_full(member).unwrap().len(), 3);
        // Unpopulated users are cold, and cached views answer empty.
        assert!(index.cached_full(UserId::new(1)).is_none());
        assert!(index.group_peers_cached(&[UserId::new(1)])[0].1.is_empty());
    }

    #[test]
    fn from_edges_drops_self_edges_and_dedups_to_max() {
        let sel = PeerSelector::new(0.0).unwrap();
        let member = UserId::new(0);
        let edges = vec![
            (member, member, 1.0),         // self-edge — never a peer
            (member, UserId::new(1), 0.4), // duplicate, lower sim
            (member, UserId::new(1), 0.7), // kept: the max-sim edge
            (member, UserId::new(1), 0.2), // duplicate, lower sim
            (member, UserId::new(2), 0.5),
        ];
        let index = PeerIndex::from_edges(sel, 3, &[member], edges);
        assert_eq!(
            index.cached_full(member).unwrap().as_ref(),
            &vec![(UserId::new(1), 0.7), (UserId::new(2), 0.5)]
        );
    }

    #[test]
    fn apply_delta_splices_to_a_cold_rebuild() {
        // "Mutate" the measure by swapping tables: warm against t1, then
        // change row/column 2 and delta user 2. Every warm list must end
        // up exactly as a cold rebuild against t2 would produce it.
        let t1 = table5();
        let mut rows = t1.0.clone();
        for (v, s) in [(0usize, 0.85), (1, 0.05), (3, 0.6)] {
            rows[2][v] = s;
            rows[v][2] = s;
        }
        rows[2][4] = -1.0; // (2, 4) becomes undefined
        rows[4][2] = -1.0;
        let t2 = Table(rows);

        let sel = PeerSelector::new(0.3).unwrap();
        let index = PeerIndex::new(sel, 5);
        index.warm(&t1, Parallelism::Sequential);
        let g0 = index.generation();
        let outcome = index.apply_delta(&t2, UserId::new(2));
        // u2's old peers {1, 3, 4} ∪ new peers {0, 3} = {0, 1, 3, 4}.
        assert_eq!(outcome, DeltaOutcome::Spliced { touched: 4 });
        assert!(index.generation() > g0, "delta must bump the generation");
        assert_eq!(index.num_cached(), 5, "no slot goes cold");

        let cold = PeerIndex::new(sel, 5);
        cold.warm(&t2, Parallelism::Sequential);
        for u in (0..5).map(UserId::new) {
            assert_eq!(
                index.cached_full(u).unwrap(),
                cold.cached_full(u).unwrap(),
                "user {u}"
            );
        }
    }

    #[test]
    fn apply_delta_outcomes_cover_the_contract() {
        let m = table5();
        let sel = PeerSelector::new(0.3).unwrap();

        // Fully cold: nothing to splice, generation still bumps.
        let cold = PeerIndex::new(sel, 5);
        let g0 = cold.generation();
        assert_eq!(
            cold.apply_delta(&m, UserId::new(1)),
            DeltaOutcome::ColdIndex
        );
        assert!(cold.generation() > g0);

        // Out of universe: untouched, generation untouched.
        cold.warm(&m, Parallelism::Sequential);
        let g1 = cold.generation();
        assert_eq!(
            cold.apply_delta(&m, UserId::new(99)),
            DeltaOutcome::OutOfUniverse
        );
        assert_eq!(cold.generation(), g1);
        assert_eq!(cold.num_cached(), 5);

        // Asymmetric measure: blanket fallback.
        let warm = PeerIndex::new(sel, 5);
        warm.warm(&m, Parallelism::Sequential);
        let pairwise = crate::bulk::PairwiseOnly::new(&m);
        assert_eq!(
            warm.apply_delta(&pairwise, UserId::new(1)),
            DeltaOutcome::InvalidatedAll
        );
        assert_eq!(warm.num_cached(), 0);

        // Partially warm without the user's own list: blanket fallback.
        let partial = PeerIndex::new(sel, 5);
        let _ = partial.peers_of(&m, UserId::new(0));
        assert_eq!(
            partial.apply_delta(&m, UserId::new(2)),
            DeltaOutcome::InvalidatedAll
        );
        assert_eq!(partial.num_cached(), 0);
    }

    #[test]
    fn grow_and_rebuild_preserve_the_generation_token() {
        let m = table5();
        let sel = PeerSelector::new(0.3).unwrap();
        let index = PeerIndex::new(sel, 5);
        index.warm(&m, Parallelism::Sequential);
        index.invalidate_user(UserId::new(0)); // bump the token
        let g = index.generation();

        let grown = index.grow_universe(8);
        assert_eq!(grown.num_users(), 8);
        assert_eq!(grown.generation(), g, "growth carries the token over");
        assert_eq!(
            grown.num_cached(),
            4,
            "warm lists carry over; new slots start cold"
        );
        assert_eq!(
            grown.cached_full(UserId::new(1)),
            index.cached_full(UserId::new(1))
        );
        assert!(grown.cached_full(UserId::new(7)).is_none());

        let rebuilt = grown.rebuild_cold(3);
        assert_eq!(rebuilt.num_users(), 3);
        assert_eq!(rebuilt.num_cached(), 0);
        assert!(
            rebuilt.generation() > g,
            "a rebuild bumps the token — it never restarts at zero"
        );
    }

    #[test]
    fn grow_revalidated_matches_a_cold_rebuild() {
        // A measure that can score the new ids against existing users
        // (the profile/semantic case): revalidated growth must leave
        // every preserved list bitwise identical to a cold rebuild over
        // the grown universe, while new slots start cold.
        let mut rows = vec![vec![0.0; 7]; 7];
        for (u, row) in rows.iter_mut().enumerate() {
            for (v, cell) in row.iter_mut().enumerate() {
                // Symmetric, some pairs undefined, some below δ, ties.
                *cell = match (u + v) % 5 {
                    0 => -1.0, // undefined
                    1 => 0.15, // below δ = 0.3
                    2 => 0.6,
                    3 => 0.6, // ties exercise the id tiebreak
                    _ => 0.9,
                };
            }
        }
        let m = Table(rows);
        let sel = PeerSelector::new(0.3).unwrap();

        let index = PeerIndex::new(sel, 4);
        index.warm(&m, Parallelism::Sequential);
        index.invalidate_user(UserId::new(3)); // one cold slot stays cold
        let g = index.generation();

        let grown = index.grow_universe_revalidated(&m, 7);
        assert_eq!(grown.num_users(), 7);
        assert!(grown.generation() > g, "contents changed: token must bump");
        assert_eq!(grown.num_cached(), 3, "warm lists preserved, rest cold");

        let cold = PeerIndex::new(sel, 7);
        cold.warm(&m, Parallelism::Sequential);
        for u in (0..3).map(UserId::new) {
            assert_eq!(
                grown.cached_full(u).unwrap(),
                cold.cached_full(u).unwrap(),
                "user {u}"
            );
        }
        for u in (3..7).map(UserId::new) {
            assert!(grown.cached_full(u).is_none(), "user {u} must be cold");
        }
    }

    #[test]
    fn apply_delta_skips_cold_slots() {
        let m = table5();
        let sel = PeerSelector::new(0.3).unwrap();
        let index = PeerIndex::new(sel, 5);
        // Warm only u2 (the delta user) and u0: u2's peers at δ=0.3 are
        // {3, 4}, so u3/u4 are affected but cold and must stay cold.
        let _ = index.peers_of(&m, UserId::new(2));
        let _ = index.peers_of(&m, UserId::new(0));
        let outcome = index.apply_delta(&m, UserId::new(2));
        assert_eq!(outcome, DeltaOutcome::Spliced { touched: 0 });
        assert_eq!(index.num_cached(), 2);
        assert!(index.cached_full(UserId::new(3)).is_none());
    }

    #[test]
    fn concurrent_reads_agree() {
        let m = table5();
        let sel = PeerSelector::new(0.0).unwrap();
        let index = PeerIndex::new(sel, 5);
        let expected: Vec<Peers> = (0..5)
            .map(|u| sel.peers_of(&m, UserId::new(u), (0..5).map(UserId::new), &[]))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for u in 0..5 {
                        assert_eq!(index.peers_of(&m, UserId::new(u)), expected[u as usize]);
                    }
                });
            }
        });
        assert_eq!(index.num_cached(), 5);
    }
}
