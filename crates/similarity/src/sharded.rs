//! Sharded Definition-1 serving: the peer index and kernel dispatch over
//! a hash-partitioned user universe with **compacted shard-local id
//! spaces**.
//!
//! The monolithic [`PeerIndex`] holds every user's peer list in one
//! process; past ~10⁶ users both the warm-time arithmetic and the list
//! memory have to spread across shards. This module is that layer:
//!
//! * [`ShardedRatingsSimilarity`] — the Pearson measure over a
//!   [`ShardedRatingMatrix`]. Its one-vs-all pass **scatters** one
//!   shard-scoped kernel pass per shard (source row from the owning
//!   shard's compacted CSR, candidates from each shard's local CSC) and
//!   **gathers** the per-shard edge lists into one ascending-id stream.
//!   Each candidate is owned by exactly one shard and its accumulator
//!   sees the same co-rating contributions in the same ascending-item
//!   order as the monolithic kernel — the shard's monotone
//!   [`IdRemap`] keeps local iteration order identical to global order —
//!   so the merged output is **bitwise identical** to
//!   [`RatingsSimilarity`](crate::RatingsSimilarity) over the unsharded
//!   matrix (pinned by `tests/sharded.rs`).
//! * [`ShardedPeerIndex`] — one [`PeerIndex`] per shard over the shard's
//!   **owned** users only: slot `l` of shard `s` is the `l`-th owned
//!   user, so per-shard slot arrays are O(U/S), not O(U). The cached
//!   lists still carry **global** peer ids (they are served verbatim);
//!   translation happens only at this type's boundary. Lookups route to
//!   the owning shard, so serving reads stay one cache hit.
//!
//! ## The shard-pair symmetric warm
//!
//! [`ShardedPeerIndex::warm_symmetric`] decomposes the upper-triangle
//! warm into `S·(S+1)/2` independent shard-pair tasks on the worker
//! pool: pair `(a, a)` runs the above-only kernel (each same-shard pair
//! once), pair `(a, b)` with `a < b` runs the full shard-scoped kernel
//! from `a`'s sources into `b`'s candidates (each cross-shard pair
//! once). One pair's work is [`shard_pair_edges`] — a free function over
//! `(matrix, a, b, universe, overlap, δ)` precisely so the schedule can
//! be serialized into self-contained task descriptors and executed
//! remotely (the MapReduce pipeline's distributed warm rehearses this);
//! [`ShardedPeerIndex::adopt_full_lists`] is the matching install path
//! for lists assembled elsewhere. Qualifying edges are scattered
//! straight into both endpoints' per-user lists and canonicalised once —
//! exactly the monolithic scatter — then each shard's index is assembled
//! from its owned users' finished lists via the sort-free mapped
//! `from_full_lists` build, under each shard's recorded generation token
//! (a concurrent invalidation makes that shard's swap a no-op). The
//! result is bitwise identical to the monolithic
//! [`PeerIndex::warm_symmetric`] for **any** shard count.
//!
//! ## The delta path
//!
//! The delta is coordinated **centrally** instead of once per shard:
//! [`ShardedPeerIndex::prepare_delta`] caches the changed user's full
//! pre-change list in its owning slot (a cache hit on a warm index);
//! after the mutation, [`ShardedPeerIndex::apply_delta`] bumps every
//! shard's token, recomputes the user's full list with one scatter-gather
//! pass, and splices the refreshed `(user, simU)` edges into the
//! affected endpoints' lists, each routed to its owning shard's slot.
//! Total kernel work is about two global passes regardless of `S`, no
//! shard ever stores a non-owned user's list, and every warm list ends
//! up bitwise identical to a cold rebuild against the current data.

use crate::bulk::{BulkUserSimilarity, SimScratch};
use crate::peer_index::{DeltaOutcome, PeerIndex, SpliceOutcome};
use crate::peers::{PeerSelector, Peers};
use crate::ratings::{cross_kernel, cross_similarity, KernelSide};
use crate::UserSimilarity;
use fairrec_types::{IdRemap, Parallelism, ShardMatrix, ShardSpec, ShardedRatingMatrix, UserId};
use std::borrow::Borrow;
use std::sync::Arc;

/// Pearson over a [`ShardedRatingMatrix`]: the scatter-gather bulk
/// measure of the sharding layer. Bitwise interchangeable with
/// [`RatingsSimilarity`](crate::RatingsSimilarity) over the equivalent
/// unsharded matrix — see the module docs.
#[derive(Debug, Clone)]
pub struct ShardedRatingsSimilarity<M = Arc<ShardedRatingMatrix>> {
    matrix: M,
    min_overlap: usize,
}

impl<M: Borrow<ShardedRatingMatrix>> ShardedRatingsSimilarity<M> {
    /// Sharded Pearson with the default minimum overlap of 2.
    pub fn new(matrix: M) -> Self {
        Self {
            matrix,
            min_overlap: 2,
        }
    }

    /// Overrides the minimum number of co-rated items (clamped to ≥ 1).
    pub fn with_min_overlap(mut self, min_overlap: usize) -> Self {
        self.min_overlap = min_overlap.max(1);
        self
    }

    /// The underlying sharded matrix.
    pub fn matrix(&self) -> &ShardedRatingMatrix {
        self.matrix.borrow()
    }

    /// The minimum number of co-rated items for a defined correlation.
    pub fn min_overlap(&self) -> usize {
        self.min_overlap
    }

    /// One shard-scoped pass per shard, gathered and re-sorted into the
    /// ascending-candidate order the bulk contract promises.
    fn scatter_gather(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
        above_only: bool,
    ) {
        let sharded = self.matrix.borrow();
        let from = out.len();
        let source = sharded.owning_shard(u);
        for t in 0..sharded.num_shards() as usize {
            let scoped = ShardScopedRatings {
                source,
                candidates: sharded.shard(t),
                min_overlap: self.min_overlap,
            };
            if above_only {
                scoped.similarities_above(u, num_users, scratch, out);
            } else {
                scoped.similarities_from(u, num_users, scratch, out);
            }
        }
        // Each candidate came from exactly its owning shard's pass, so
        // the gather is a pure id re-sort — values untouched.
        out[from..].sort_unstable_by_key(|&(v, _)| v);
    }
}

impl<M: Borrow<ShardedRatingMatrix>> UserSimilarity for ShardedRatingsSimilarity<M> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        let sharded = self.matrix.borrow();
        if u == v {
            // Same existence rule as the monolithic measure: rating-less
            // users have no defined similarity, themselves included.
            return sharded.owning_shard(u).user_mean(u).map(|_| 1.0);
        }
        cross_similarity(
            KernelSide::shard(sharded.owning_shard(u)),
            KernelSide::shard(sharded.owning_shard(v)),
            u,
            v,
            self.min_overlap,
        )
    }

    fn name(&self) -> &'static str {
        "sharded-ratings-pearson"
    }
}

impl<M: Borrow<ShardedRatingMatrix>> BulkUserSimilarity for ShardedRatingsSimilarity<M> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.scatter_gather(u, num_users, scratch, out, false);
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.scatter_gather(u, num_users, scratch, out, true);
    }

    /// Pearson is bitwise symmetric, and the partition does not change
    /// the per-pair arithmetic.
    fn is_symmetric(&self) -> bool {
        true
    }
}

/// One leg of the scatter: source row from one compacted shard,
/// candidates from (possibly) another. Only users owned by the candidate
/// shard can ever be emitted, as **global** ids in ascending order.
#[derive(Debug, Clone, Copy)]
struct ShardScopedRatings<'a> {
    source: &'a ShardMatrix,
    candidates: &'a ShardMatrix,
    min_overlap: usize,
}

impl UserSimilarity for ShardScopedRatings<'_> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        if u == v {
            return self.source.user_mean(u).map(|_| 1.0);
        }
        cross_similarity(
            KernelSide::shard(self.source),
            KernelSide::shard(self.candidates),
            u,
            v,
            self.min_overlap,
        )
    }

    fn name(&self) -> &'static str {
        "shard-scoped-pearson"
    }
}

impl BulkUserSimilarity for ShardScopedRatings<'_> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        cross_kernel(
            KernelSide::shard(self.source),
            KernelSide::shard(self.candidates),
            u,
            num_users,
            self.min_overlap,
            scratch,
            out,
            false,
        );
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        cross_kernel(
            KernelSide::shard(self.source),
            KernelSide::shard(self.candidates),
            u,
            num_users,
            self.min_overlap,
            scratch,
            out,
            true,
        );
    }

    /// Where both directions are defined (both users in scope), the
    /// values are the same bits.
    fn is_symmetric(&self) -> bool {
        true
    }
}

/// One shard pair's slice of the symmetric warm: every qualifying
/// Definition-1 edge `(u, v, simU)` with `u` owned by shard `a` and `v`
/// owned by shard `b`, each unordered pair exactly once (the diagonal
/// pair runs the above-only kernel; `a ≠ b` must be called with the
/// pair once, not both orders). Edges are δ-filtered here because
/// Definition-1 admission is per-pair.
///
/// This free function is the **unit of distribution**: it depends only
/// on values a task descriptor can carry (`a`, `b`, the universe bound,
/// `min_overlap`, `δ`) plus the partitioned matrix each worker holds, so
/// the in-repo MapReduce engine can execute the same schedule off-process
/// and [`ShardedPeerIndex::adopt_full_lists`] can install the result —
/// bitwise identical to the in-process warm.
pub fn shard_pair_edges(
    matrix: &ShardedRatingMatrix,
    a: usize,
    b: usize,
    num_users: u32,
    min_overlap: usize,
    delta: f64,
) -> Vec<(UserId, UserId, f64)> {
    let scoped = ShardScopedRatings {
        source: matrix.shard(a),
        candidates: matrix.shard(b),
        min_overlap,
    };
    let mut scratch = SimScratch::new();
    let mut buf: Peers = Vec::new();
    let mut edges = Vec::new();
    for &u in matrix.users_of_shard(a) {
        if u.raw() >= num_users {
            // Owned lists ascend: nothing further is in the universe.
            break;
        }
        buf.clear();
        if a == b {
            scoped.similarities_above(u, num_users, &mut scratch, &mut buf);
        } else {
            scoped.similarities_from(u, num_users, &mut scratch, &mut buf);
        }
        edges.extend(
            buf.iter()
                .filter(|&&(_, s)| s >= delta)
                .map(|&(v, s)| (u, v, s)),
        );
    }
    edges
}

/// Adapts a **global**-universe bulk measure to one shard's local slot
/// space: the per-shard [`PeerIndex`] computes slot `l`'s list by asking
/// this adapter, which translates the slot to its global id and runs the
/// inner measure over the full global universe — so the cached list
/// contents stay global, exactly what serving returns verbatim.
struct Localized<'a, S: ?Sized> {
    inner: &'a S,
    remap: &'a IdRemap,
    /// The **global** universe bound substituted for the local one the
    /// per-shard index passes down.
    num_users: u32,
}

impl<S: UserSimilarity + ?Sized> UserSimilarity for Localized<'_, S> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        self.inner
            .similarity(self.remap.global_of(u), self.remap.global_of(v))
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl<S: BulkUserSimilarity + ?Sized> BulkUserSimilarity for Localized<'_, S> {
    fn similarities_from(
        &self,
        u: UserId,
        _local_universe: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.inner
            .similarities_from(self.remap.global_of(u), self.num_users, scratch, out);
    }

    fn similarities_above(
        &self,
        u: UserId,
        _local_universe: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.inner
            .similarities_above(self.remap.global_of(u), self.num_users, scratch, out);
    }

    fn is_symmetric(&self) -> bool {
        self.inner.is_symmetric()
    }
}

/// What a sharded maintenance call did, per shard plus the aggregate.
/// The aggregate is what the engine's `IngestReport` surfaces; the
/// per-shard counts exist for tests and operational introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedDeltaReport {
    /// Aggregate outcome: `Spliced` when the central splice ran (touched
    /// = total endpoint lists patched across shards), `InvalidatedAll`
    /// when the exactness preconditions failed and every shard was
    /// cleared, `ColdIndex` when every shard was cold.
    pub outcome: DeltaOutcome,
    /// Per-shard outcomes, in shard order.
    pub per_shard: Vec<DeltaOutcome>,
}

/// Hash-partitioned [`PeerIndex`] with compacted per-shard universes:
/// shard `s` holds one slot per **owned** user (O(U/S) metadata), each
/// slot caching that user's full **global** peer list under the shard's
/// own generation token. See the module docs for the warm, serving, and
/// delta contracts.
#[derive(Debug)]
pub struct ShardedPeerIndex {
    spec: ShardSpec,
    selector: PeerSelector,
    /// Size of the global user universe — no shard stores a
    /// global-length array; this scalar is the only global-sized fact.
    num_users: u32,
    /// Per-shard owned-user tables (the same partition the compacted
    /// matrix uses), translating slot ↔ global id at the boundary.
    remaps: Vec<IdRemap>,
    shards: Vec<PeerIndex>,
}

impl ShardedPeerIndex {
    /// An empty (cold) sharded index over `0..num_users` with
    /// `spec.num_shards()` shards, answering with `selector`.
    pub fn new(selector: PeerSelector, spec: ShardSpec, num_users: u32) -> Self {
        let remaps = spec.partition(num_users);
        let shards = remaps
            .iter()
            .map(|remap| PeerIndex::new(selector, remap.len()))
            .collect();
        Self {
            spec,
            selector,
            num_users,
            remaps,
            shards,
        }
    }

    /// The partitioning spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The selector whose δ / cap every shard answers with.
    pub fn selector(&self) -> &PeerSelector {
        &self.selector
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.spec.num_shards()
    }

    /// Size of the (global) user universe.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// The shard owning `user`'s serving slot.
    pub fn shard_of(&self, user: UserId) -> usize {
        self.spec.shard_of(user)
    }

    /// Total cached lists across shards — every one an owned user's
    /// global serving list (the compacted layout has no bookkeeping
    /// slots).
    pub fn num_cached(&self) -> usize {
        self.shards.iter().map(PeerIndex::num_cached).sum()
    }

    /// Per-shard slot-universe sizes, in shard order — each shard's
    /// owned-user count. These sum to [`num_users`](Self::num_users):
    /// the compacted layout keeps every shard's metadata O(U/S), with no
    /// global-length arrays anywhere (what the scale-out tests pin).
    pub fn shard_universes(&self) -> Vec<u32> {
        self.remaps.iter().map(IdRemap::len).collect()
    }

    /// Per-shard freshness tokens, in shard order.
    pub fn generations(&self) -> Vec<u64> {
        self.shards.iter().map(PeerIndex::generation).collect()
    }

    /// Aggregate freshness token: the sum of the per-shard tokens. Every
    /// maintenance call bumps at least one shard token before touching
    /// any slot, so the sum is monotone and usable exactly like
    /// [`PeerIndex::generation`].
    pub fn generation(&self) -> u64 {
        self.generations().iter().sum()
    }

    fn shard(&self, s: usize) -> &PeerIndex {
        &self.shards[s]
    }

    /// `user`'s owning shard and local slot, when in the universe.
    fn slot_of(&self, user: UserId) -> Option<(usize, UserId)> {
        if user.raw() >= self.num_users {
            return None;
        }
        let s = self.shard_of(user);
        let local = self.remaps[s]
            .local_of(user)
            .expect("every in-universe user has a slot in its owning shard");
        Some((s, local))
    }

    /// The raw cached full (global) list of `user` from its owning
    /// shard's slot, if present.
    pub fn cached_full(&self, user: UserId) -> Option<Arc<Peers>> {
        let (s, local) = self.slot_of(user)?;
        self.shard(s).cached_full(local)
    }

    /// The cached full lists of every user in `users` under **one**
    /// epoch pin, owner-routed per user — see
    /// [`PeerIndex::cached_full_bulk`] for why group-shaped reads
    /// amortise the pin. The pin is process-global, so one announcement
    /// covers slot loads across every shard.
    pub fn cached_full_bulk(&self, users: &[UserId]) -> Vec<Option<Arc<Peers>>> {
        let guard = crossbeam::epoch::pin();
        users
            .iter()
            .map(|&u| {
                let (s, local) = self.slot_of(u)?;
                self.shard(s).cached_full_with(local, &guard)
            })
            .collect()
    }

    /// The memoized **full global** peer list of `user`, served by (and
    /// cached in) the owning shard's slot; a cold slot runs one
    /// one-vs-all pass of `measure` over the global universe. Users
    /// outside the universe answer empty.
    pub fn full_peers<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        user: UserId,
    ) -> Arc<Peers> {
        let Some((s, local)) = self.slot_of(user) else {
            return Arc::new(Peers::new());
        };
        let localized = Localized {
            inner: measure,
            remap: &self.remaps[s],
            num_users: self.num_users,
        };
        self.shard(s).full_peers(&localized, local)
    }

    /// Definition 1 for one user — identical to the monolithic
    /// [`PeerIndex::peers_of`].
    pub fn peers_of<S: BulkUserSimilarity + ?Sized>(&self, measure: &S, user: UserId) -> Peers {
        self.selector.view(&self.full_peers(measure, user), &[])
    }

    /// Peer lists for every member of `group` with co-members masked —
    /// the serving fan-out: each member's lookup routes to its owning
    /// shard, and the group view is a pure mask+cap over the cached full
    /// list, identical to [`PeerIndex::group_peers`].
    pub fn group_peers<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        group: &[UserId],
    ) -> Vec<(UserId, Peers)> {
        // One pinned pass over the warm slots (owner-routed); only
        // misses fall back to the computing path.
        let cached = self.cached_full_bulk(group);
        group
            .iter()
            .zip(cached)
            .map(|(&member, cached)| {
                let full = cached.unwrap_or_else(|| self.full_peers(measure, member));
                (member, self.selector.view(&full, group))
            })
            .collect()
    }

    /// Eagerly fills every cold slot through the ordinary lazy path,
    /// fanned out across the configured parallelism. Returns the number
    /// of lists computed. This is also the fallback
    /// [`warm_symmetric`](Self::warm_symmetric) takes when any shard is
    /// partially warm (a partial triangle cannot be restricted to the
    /// cold subset, exactly as in the monolithic index).
    pub fn warm<M: Borrow<ShardedRatingMatrix> + Sync>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        parallelism: Parallelism,
    ) -> usize {
        let cold: Vec<UserId> = (0..self.num_users)
            .map(UserId::new)
            .filter(|&u| self.cached_full(u).is_none())
            .collect();
        let computed = cold.len();
        parallelism.map(cold, |u| {
            let _ = self.full_peers(measure, u);
        });
        computed
    }

    /// Symmetric bulk warm decomposed into per-shard-pair
    /// [`shard_pair_edges`] tasks on the worker pool; see the module docs
    /// for the schedule. Only runs the triangle on a fully cold index
    /// (falls back to [`warm`](Self::warm) otherwise); the per-shard
    /// installs happen under each shard's recorded generation token, so a
    /// concurrent invalidation of a shard skips that shard's swap.
    /// Returns the number of lists computed. Bitwise identical to the
    /// monolithic [`PeerIndex::warm_symmetric`] for any shard count.
    pub fn warm_symmetric<M: Borrow<ShardedRatingMatrix> + Sync>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        parallelism: Parallelism,
    ) -> usize {
        let num_shards = self.shards.len();
        if self.shards.iter().any(|shard| shard.num_cached() != 0) {
            return self.warm(measure, parallelism);
        }
        let sharded = measure.matrix();
        let n = self.num_users;
        let delta = self.selector.delta;
        let generations = self.generations();

        // One task per shard pair (a ≤ b): the diagonal runs the
        // above-only kernel (each same-shard pair once), off-diagonal
        // pairs run the full scoped kernel from a's sources into b's
        // candidates (each cross-shard pair once).
        let pairs: Vec<(usize, usize)> = (0..num_shards)
            .flat_map(|a| (a..num_shards).map(move |b| (a, b)))
            .collect();
        let edge_sets = parallelism.map(pairs, |(a, b)| {
            shard_pair_edges(sharded, a, b, n, measure.min_overlap(), delta)
        });

        // Scatter every qualifying edge to both endpoints' per-user
        // lists and canonicalise each list exactly once, in parallel —
        // the same funnel as the monolithic scatter. The shard-pair
        // schedule emits each unordered pair exactly once and δ was
        // applied per edge, so the lists arrive duplicate-free,
        // self-edge-free, and filtered.
        let mut lists: Vec<Peers> = vec![Peers::new(); n as usize];
        for (u, v, sim) in edge_sets.into_iter().flatten() {
            lists[u.index()].push((v, sim));
            lists[v.index()].push((u, sim));
        }
        let lists = parallelism.map(lists, |mut list| {
            PeerSelector::canonicalize(&mut list);
            list
        });
        self.install_lists(lists, &generations)
    }

    /// Installs externally computed **finished** full lists — indexed by
    /// global user id over the whole universe, canonical, δ-filtered,
    /// self-edge-free — into the owning shards' slots: the adoption path
    /// for warms executed off-process (the MapReduce distributed warm
    /// assembles exactly this shape from reduced edges). Same
    /// preconditions as the triangle itself: the index must be fully
    /// cold and `lists` must cover the universe; returns `None` without
    /// touching anything otherwise. `Some(count)` is the number of lists
    /// installed (shards whose generation moved concurrently are
    /// skipped, exactly like the in-process warm).
    pub fn adopt_full_lists(&self, lists: Vec<Peers>) -> Option<usize> {
        if lists.len() != self.num_users as usize {
            return None;
        }
        if self.shards.iter().any(|shard| shard.num_cached() != 0) {
            return None;
        }
        let generations = self.generations();
        Some(self.install_lists(lists, &generations))
    }

    /// Publishes finished global-id-indexed lists into the per-shard
    /// indexes (slot `l` of shard `s` ← list of the `l`-th owned user),
    /// one epoch-swapped slot at a time: each install is a per-slot
    /// pointer CAS under that shard's recorded token, so concurrent
    /// readers keep serving throughout — they see either the cold slot
    /// (and fill it lazily with the identical list) or the published
    /// one, never a lock. A shard whose token moved mid-install skips
    /// its remaining slots' swaps (the CAS-internal generation check),
    /// exactly like the monolithic warm. Returns the number of lists
    /// actually installed.
    fn install_lists(&self, mut lists: Vec<Peers>, generations: &[u64]) -> usize {
        let bound = self.selector.cache_bound();
        let mut computed = 0usize;
        for (s, (shard, &generation)) in self.shards.iter().zip(generations).enumerate() {
            for (local, &u) in self.remaps[s].owned().iter().enumerate() {
                let mut list = std::mem::take(&mut lists[u.index()]);
                if let Some(bound) = bound {
                    list.truncate(bound);
                }
                if shard.try_install_list(UserId::new(local as u32), Arc::new(list), generation) {
                    computed += 1;
                }
            }
        }
        computed
    }

    /// Establishes [`apply_delta`](Self::apply_delta)'s exactness
    /// precondition **before** the underlying data changes: caches
    /// `user`'s full pre-change list in its owning slot (a cache hit on
    /// a warm index). A fully cold index is left cold (its delta
    /// degrades to the cold no-op).
    pub fn prepare_delta<S: BulkUserSimilarity + ?Sized>(&self, measure: &S, user: UserId) {
        if user.raw() >= self.num_users || self.num_cached() == 0 {
            return;
        }
        let _ = self.full_peers(measure, user);
    }

    /// Incrementally repairs the whole sharded index after a point change
    /// to `user`'s ratings (call **after** the matrix mutation, with
    /// [`prepare_delta`](Self::prepare_delta) called before it). One
    /// central coordinator: every shard's token is bumped first (in-flight
    /// fills against pre-change data can never land), then `user`'s full
    /// list is recomputed with one one-vs-all pass of `measure` and the
    /// refreshed edges are spliced into the affected endpoints' lists,
    /// each routed to its owning shard's slot — about two global kernel
    /// passes total, independent of `S`. Degrades to a blanket
    /// invalidation when the measure is not bitwise symmetric or the
    /// pre-change list is missing from a partially warm index, exactly
    /// like [`PeerIndex::apply_delta`].
    pub fn apply_delta<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        user: UserId,
    ) -> ShardedDeltaReport {
        let num_shards = self.shards.len();
        let Some((owning, local_u)) = self.slot_of(user) else {
            return ShardedDeltaReport {
                outcome: DeltaOutcome::OutOfUniverse,
                per_shard: vec![DeltaOutcome::OutOfUniverse; num_shards],
            };
        };
        // Bump every shard before touching any slot, exactly like the
        // monolithic delta bumps its one token: the data already
        // changed, so any fill still in flight is stale everywhere.
        let tokens: Vec<u64> = self.shards.iter().map(PeerIndex::bump_generation).collect();
        if self.num_cached() == 0 {
            return ShardedDeltaReport {
                outcome: DeltaOutcome::ColdIndex,
                per_shard: vec![DeltaOutcome::ColdIndex; num_shards],
            };
        }
        let old = self.shard(owning).cached_full(local_u);
        let usable = old
            .as_ref()
            .is_some_and(|old| self.selector.cache_bound().is_none_or(|b| old.len() < b));
        let (Some(old), true) = (old.filter(|_| usable), measure.is_symmetric()) else {
            // Missing pre-change list in a partially warm index, a
            // saturated (bound-truncated) own list whose beyond-boundary
            // edges cannot be enumerated, or an asymmetric measure: the
            // stale `(v, user)` edges are unknowable — blanket fallback.
            for shard in &self.shards {
                shard.clear_all_slots();
            }
            return ShardedDeltaReport {
                outcome: DeltaOutcome::InvalidatedAll,
                per_shard: vec![DeltaOutcome::InvalidatedAll; num_shards],
            };
        };
        // One global pass over the current data: the user's refreshed
        // full list, uncapped and δ-filtered — bitwise what a monolithic
        // `compute_full` would produce.
        let uncapped = PeerSelector {
            delta: self.selector.delta,
            max_peers: None,
        };
        let new = Arc::new(uncapped.peers_of_bulk(
            measure,
            user,
            self.num_users,
            &[],
            &mut SimScratch::new(),
        ));

        // The affected endpoints: every peer the user had or now has.
        let mut affected: Vec<UserId> = old.iter().chain(new.iter()).map(|&(v, _)| v).collect();
        affected.sort_unstable();
        affected.dedup();
        let mut new_by_id: Vec<(UserId, f64)> = new.as_ref().clone();
        new_by_id.sort_unstable_by_key(|&(v, _)| v);

        let mut touched = vec![0usize; num_shards];
        for v in affected {
            let (s, local_v) = self
                .slot_of(v)
                .expect("peer lists only mention in-universe users");
            let sim = new_by_id
                .binary_search_by_key(&v, |&(w, _)| w)
                .ok()
                .map(|idx| new_by_id[idx].1);
            // `Patched`/`Invalidated` changed the slot's contents and
            // count as touched; a cold refresh or a provably unchanged
            // bounded top does not, and `None` means a concurrent
            // invalidation of that one shard superseded its splices
            // (other shards proceed under their own tokens).
            if matches!(
                self.shard(s).splice_peer(local_v, user, sim, tokens[s]),
                Some(SpliceOutcome::Patched | SpliceOutcome::Invalidated)
            ) {
                touched[s] += 1;
            }
        }
        let own = match self.selector.cache_bound() {
            Some(bound) if new.len() > bound => {
                let mut truncated = new.as_ref().clone();
                truncated.truncate(bound);
                Arc::new(truncated)
            }
            _ => Arc::clone(&new),
        };
        self.shard(owning)
            .store_full_list(local_u, own, tokens[owning]);
        ShardedDeltaReport {
            outcome: DeltaOutcome::Spliced {
                touched: touched.iter().sum(),
            },
            per_shard: touched
                .into_iter()
                .map(|t| DeltaOutcome::Spliced { touched: t })
                .collect(),
        }
    }

    /// Drops every cached list in every shard (each under its own bumped
    /// token) — the blanket maintenance path.
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            shard.invalidate_all();
        }
    }

    /// Returns a sharded index over a larger universe, carrying every
    /// shard's cached lists and token forward: each new id is appended to
    /// its owning shard's remap (hash owners never change, so existing
    /// slots keep their positions) and that shard's local universe grows
    /// by its share of the new ids ([`PeerIndex::grow_universe`] per
    /// shard — same soundness condition: only for growth triggered by a
    /// brand-new user's first rating).
    ///
    /// # Panics
    /// Panics if `num_users` is smaller than the current universe.
    pub fn grow_universe(&self, num_users: u32) -> Self {
        assert!(
            num_users >= self.num_users,
            "universe can only grow ({} -> {num_users})",
            self.num_users
        );
        let remaps = self.spec.partition(num_users);
        let shards = remaps
            .iter()
            .enumerate()
            .map(|(s, remap)| self.shard(s).grow_universe(remap.len()))
            .collect();
        Self {
            spec: self.spec,
            selector: self.selector,
            num_users,
            remaps,
            shards,
        }
    }

    /// Returns a fully cold sharded index over `num_users` with every
    /// shard's token bumped ([`PeerIndex::rebuild_cold`] per shard).
    pub fn rebuild_cold(&self, num_users: u32) -> Self {
        let remaps = self.spec.partition(num_users);
        let shards = remaps
            .iter()
            .enumerate()
            .map(|(s, remap)| self.shard(s).rebuild_cold(remap.len()))
            .collect();
        Self {
            spec: self.spec,
            selector: self.selector,
            num_users,
            remaps,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RatingsSimilarity;
    use fairrec_types::{ItemId, Rating, RatingMatrix, RatingMatrixBuilder};

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    /// Six users with overlapping histories across several items.
    fn fixture() -> RatingMatrix {
        matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (0, 2, 5.0),
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 2, 4.0),
            (2, 0, 3.0),
            (2, 1, 3.5),
            (2, 3, 2.0),
            (3, 1, 4.0),
            (3, 2, 2.0),
            (3, 3, 4.5),
            (4, 0, 1.0),
            (4, 2, 3.0),
            (4, 3, 5.0),
            (5, 4, 2.5),
        ])
    }

    fn sharded(m: &RatingMatrix, s: u32) -> ShardedRatingMatrix {
        ShardedRatingMatrix::from_matrix(m, ShardSpec::new(s).unwrap()).unwrap()
    }

    #[test]
    fn scatter_gather_measure_matches_monolithic_bitwise() {
        let m = fixture();
        let mono = RatingsSimilarity::new(&m);
        for s in [1u32, 2, 3, 8] {
            let part = sharded(&m, s);
            let measure = ShardedRatingsSimilarity::new(&part);
            let mut scratch = SimScratch::new();
            for u in m.user_ids() {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                mono.similarities_from(u, m.num_users(), &mut scratch, &mut a);
                measure.similarities_from(u, m.num_users(), &mut scratch, &mut b);
                assert_eq!(a.len(), b.len(), "S={s}, user {u}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.0, y.0, "S={s}, user {u}");
                    assert_eq!(x.1.to_bits(), y.1.to_bits(), "S={s}, user {u}");
                }
                for v in m.user_ids() {
                    assert_eq!(
                        mono.similarity(u, v),
                        measure.similarity(u, v),
                        "S={s}, pair ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_warm_matches_monolithic_lists() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let mono = PeerIndex::new(sel, m.num_users());
        mono.warm_symmetric(&RatingsSimilarity::new(&m), Parallelism::Sequential);
        for s in [1u32, 2, 3, 8] {
            let part = sharded(&m, s);
            let measure = ShardedRatingsSimilarity::new(&part);
            let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
            assert_eq!(
                index.warm_symmetric(&measure, Parallelism::Sequential),
                m.num_users() as usize
            );
            for u in m.user_ids() {
                assert_eq!(index.cached_full(u), mono.cached_full(u), "S={s}, user {u}");
            }
        }
    }

    #[test]
    fn shard_universes_are_owned_sized_not_global_sized() {
        let m = fixture();
        let part = sharded(&m, 3);
        let sel = PeerSelector::new(0.0).unwrap();
        let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
        let mut total = 0u32;
        for s in 0..3usize {
            let local = index.shard(s).num_users();
            assert_eq!(
                local,
                part.users_of_shard(s).len() as u32,
                "shard {s} universe must be its owned count"
            );
            total += local;
        }
        assert_eq!(total, m.num_users(), "slots partition the universe");
    }

    #[test]
    fn adopted_lists_serve_like_the_in_process_warm() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        for s in [1u32, 2, 3, 8] {
            let part = sharded(&m, s);
            let measure = ShardedRatingsSimilarity::new(&part);
            let warmed = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
            warmed.warm_symmetric(&measure, Parallelism::Sequential);

            // Rebuild the finished lists from the distributable unit —
            // the per-pair edge tasks — and adopt them cold.
            let mut lists: Vec<Peers> = vec![Peers::new(); m.num_users() as usize];
            for a in 0..s as usize {
                for b in a..s as usize {
                    for (u, v, sim) in shard_pair_edges(&part, a, b, m.num_users(), 2, sel.delta) {
                        lists[u.index()].push((v, sim));
                        lists[v.index()].push((u, sim));
                    }
                }
            }
            for list in &mut lists {
                PeerSelector::canonicalize(list);
            }
            let adopted = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
            assert_eq!(
                adopted.adopt_full_lists(lists.clone()),
                Some(m.num_users() as usize)
            );
            for u in m.user_ids() {
                assert_eq!(
                    adopted.cached_full(u),
                    warmed.cached_full(u),
                    "S={s}, user {u}"
                );
            }
            // A non-cold index refuses adoption.
            assert_eq!(adopted.adopt_full_lists(lists), None);
            // So does a universe-size mismatch.
            let fresh = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
            assert_eq!(fresh.adopt_full_lists(Vec::new()), None);
        }
    }

    #[test]
    fn lookups_route_to_the_owning_shard() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let part = sharded(&m, 3);
        let measure = ShardedRatingsSimilarity::new(&part);
        let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
        let u = UserId::new(2);
        let first = index.full_peers(&measure, u);
        // Only the owning shard gained a cached slot — at the user's
        // *local* position.
        assert_eq!(index.num_cached(), 1);
        let s = index.shard_of(u);
        assert_eq!(index.shard(s).num_cached(), 1);
        assert!(index.cached_full(u).is_some());
        let again = index.full_peers(&measure, u);
        assert!(Arc::ptr_eq(&first, &again), "second read is a cache hit");
        // Out-of-universe users answer empty without caching anything.
        assert!(index.full_peers(&measure, UserId::new(99)).is_empty());
        assert_eq!(index.num_cached(), 1);
    }

    #[test]
    fn partially_warm_index_falls_back_and_still_matches() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let part = sharded(&m, 2);
        let measure = ShardedRatingsSimilarity::new(&part);
        let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
        let _ = index.full_peers(&measure, UserId::new(1));
        // One slot is warm: the triangle cannot run, the per-user path
        // finishes the job with identical lists.
        assert_eq!(
            index.warm_symmetric(&measure, Parallelism::Sequential),
            m.num_users() as usize - 1
        );
        let mono = PeerIndex::new(sel, m.num_users());
        mono.warm_symmetric(&RatingsSimilarity::new(&m), Parallelism::Sequential);
        for u in m.user_ids() {
            assert_eq!(index.cached_full(u), mono.cached_full(u), "user {u}");
        }
    }

    #[test]
    fn delta_stream_matches_cold_rebuild_bitwise() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        for s in [1u32, 2, 3, 8] {
            let mut part = sharded(&m, s);
            let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
            index.warm_symmetric(
                &ShardedRatingsSimilarity::new(&part),
                Parallelism::Sequential,
            );
            let events: [(u32, u32, Option<f64>); 4] = [
                (0, 3, Some(3.0)), // insert
                (2, 1, Some(1.0)), // update
                (4, 2, None),      // remove
                (5, 0, Some(4.5)), // insert giving u5 real overlap
            ];
            for &(u, i, score) in &events {
                let (user, item) = (UserId::new(u), ItemId::new(i));
                index.prepare_delta(&ShardedRatingsSimilarity::new(&part), user);
                match score {
                    Some(v) if part.rating(user, item).is_some() => {
                        part.update_rating(user, item, Rating::new(v).unwrap())
                            .unwrap();
                    }
                    Some(v) => {
                        part.insert_rating(user, item, Rating::new(v).unwrap())
                            .unwrap();
                    }
                    None => {
                        part.remove_rating(user, item).unwrap();
                    }
                }
                let report = index.apply_delta(&ShardedRatingsSimilarity::new(&part), user);
                assert!(
                    matches!(report.outcome, DeltaOutcome::Spliced { .. }),
                    "S={s}, event ({u}, {i}): {report:?}"
                );
            }
            // Oracle: a cold monolithic warm over the final relation.
            let final_matrix = RatingMatrix::from_triples(part.to_triples()).unwrap();
            let mono = PeerIndex::new(sel, m.num_users());
            mono.warm_symmetric(
                &RatingsSimilarity::new(&final_matrix),
                Parallelism::Sequential,
            );
            for u in m.user_ids() {
                assert_eq!(index.cached_full(u), mono.cached_full(u), "S={s}, user {u}");
            }
        }
    }

    #[test]
    fn growth_and_rebuild_mirror_the_monolithic_semantics() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let part = sharded(&m, 3);
        let measure = ShardedRatingsSimilarity::new(&part);
        let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
        index.warm_symmetric(&measure, Parallelism::Sequential);
        let gens = index.generations();

        let grown = index.grow_universe(m.num_users() + 4);
        assert_eq!(grown.num_users(), m.num_users() + 4);
        assert_eq!(grown.generations(), gens, "growth carries tokens over");
        for u in m.user_ids() {
            assert_eq!(grown.cached_full(u), index.cached_full(u), "user {u}");
        }
        assert!(grown.cached_full(UserId::new(m.num_users() + 1)).is_none());

        let rebuilt = grown.rebuild_cold(m.num_users());
        assert_eq!(rebuilt.num_cached(), 0);
        assert!(rebuilt
            .generations()
            .iter()
            .zip(&gens)
            .all(|(now, then)| now > then));

        index.invalidate_all();
        assert_eq!(index.num_cached(), 0);
    }
}
