//! Sharded Definition-1 serving: the peer index and kernel dispatch over
//! a hash-partitioned user universe.
//!
//! The monolithic [`PeerIndex`] holds every user's peer list in one
//! process; past ~10⁶ users both the warm-time arithmetic and the list
//! memory have to spread across shards. This module is that layer:
//!
//! * [`ShardedRatingsSimilarity`] — the Pearson measure over a
//!   [`ShardedRatingMatrix`]. Its one-vs-all pass **scatters** one
//!   shard-scoped kernel pass per shard (source row from the owning
//!   shard's CSR, candidates from each shard's local CSC) and
//!   **gathers** the per-shard edge lists into one ascending-id stream.
//!   Each candidate is owned by exactly one shard and its accumulator
//!   sees the same co-rating contributions in the same ascending-item
//!   order as the monolithic kernel, so the merged output is **bitwise
//!   identical** to [`RatingsSimilarity`](crate::RatingsSimilarity) over
//!   the unsharded matrix (pinned by `tests/sharded.rs`).
//! * [`ShardedPeerIndex`] — one [`PeerIndex`] per shard, each over the
//!   **global** universe under its own generation token. A shard's index
//!   caches the **full global** peer lists of the users it owns; lookups
//!   route to the owning shard, so serving reads stay one cache hit.
//!
//! ## The shard-pair symmetric warm
//!
//! [`ShardedPeerIndex::warm_symmetric`] decomposes the upper-triangle
//! warm into `S·(S+1)/2` independent shard-pair tasks on the worker
//! pool: pair `(a, a)` runs the above-only kernel (each same-shard pair
//! once), pair `(a, b)` with `a < b` runs the full shard-scoped kernel
//! from `a`'s sources into `b`'s candidates (each cross-shard pair
//! once). Qualifying edges are scattered straight into both endpoints'
//! per-user lists and canonicalised once — exactly the monolithic
//! scatter — then each shard's index is assembled from its owned users'
//! finished lists via the sort-free [`PeerIndex::from_full_lists`]
//! build, under each shard's recorded generation token (a concurrent
//! invalidation makes that shard's swap a no-op). The result is bitwise
//! identical to the monolithic [`PeerIndex::warm_symmetric`] for
//! **any** shard count.
//!
//! ## The delta path
//!
//! [`ShardedPeerIndex::apply_delta`] reuses [`PeerIndex::apply_delta`]
//! unchanged, once per shard: the owning shard takes the delta under the
//! full (scatter-gather) measure — its lists are full global lists — and
//! every other shard `t` takes it under the shard-scoped measure
//! (candidates restricted to `t`), so `t`'s spliced endpoint lists
//! receive exactly the edges they own and the total kernel work stays
//! O(two global passes) instead of O(S) of them. The exactness
//! precondition (the changed user's pre-change list cached wherever any
//! list is) is established by [`ShardedPeerIndex::prepare_delta`], which
//! the engine calls *before* mutating the matrix: the owning shard
//! pre-caches the user's full list, every other shard its shard-scoped
//! restriction. Those restricted lists live in non-owning shards purely
//! as delta bookkeeping — serving lookups never read a non-owned slot.

use crate::bulk::{BulkUserSimilarity, SimScratch};
use crate::peer_index::{DeltaOutcome, PeerIndex};
use crate::peers::{PeerSelector, Peers};
use crate::ratings::{cross_kernel, cross_similarity};
use crate::UserSimilarity;
use fairrec_types::{Parallelism, ShardSpec, ShardedRatingMatrix, UserId};
use std::borrow::Borrow;
use std::sync::{Arc, RwLock};

/// Pearson over a [`ShardedRatingMatrix`]: the scatter-gather bulk
/// measure of the sharding layer. Bitwise interchangeable with
/// [`RatingsSimilarity`](crate::RatingsSimilarity) over the equivalent
/// unsharded matrix — see the module docs.
#[derive(Debug, Clone)]
pub struct ShardedRatingsSimilarity<M = Arc<ShardedRatingMatrix>> {
    matrix: M,
    min_overlap: usize,
}

impl<M: Borrow<ShardedRatingMatrix>> ShardedRatingsSimilarity<M> {
    /// Sharded Pearson with the default minimum overlap of 2.
    pub fn new(matrix: M) -> Self {
        Self {
            matrix,
            min_overlap: 2,
        }
    }

    /// Overrides the minimum number of co-rated items (clamped to ≥ 1).
    pub fn with_min_overlap(mut self, min_overlap: usize) -> Self {
        self.min_overlap = min_overlap.max(1);
        self
    }

    /// The underlying sharded matrix.
    pub fn matrix(&self) -> &ShardedRatingMatrix {
        self.matrix.borrow()
    }

    /// The minimum number of co-rated items for a defined correlation.
    pub fn min_overlap(&self) -> usize {
        self.min_overlap
    }

    /// The shard-scoped measure for pair `(source shard of u, candidate
    /// shard t)` — one kernel pass of the scatter.
    fn scoped<'a>(&'a self, user: UserId, candidate_shard: usize) -> ShardScopedRatings<'a> {
        let sharded = self.matrix.borrow();
        ShardScopedRatings {
            source: sharded.owning_shard(user),
            candidates: sharded.shard(candidate_shard),
            min_overlap: self.min_overlap,
        }
    }

    /// One shard-scoped pass per shard, gathered and re-sorted into the
    /// ascending-candidate order the bulk contract promises.
    fn scatter_gather(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
        above_only: bool,
    ) {
        let sharded = self.matrix.borrow();
        let from = out.len();
        for t in 0..sharded.num_shards() as usize {
            let scoped = self.scoped(u, t);
            if above_only {
                scoped.similarities_above(u, num_users, scratch, out);
            } else {
                scoped.similarities_from(u, num_users, scratch, out);
            }
        }
        // Each candidate came from exactly its owning shard's pass, so
        // the gather is a pure id re-sort — values untouched.
        out[from..].sort_unstable_by_key(|&(v, _)| v);
    }
}

impl<M: Borrow<ShardedRatingMatrix>> UserSimilarity for ShardedRatingsSimilarity<M> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        let sharded = self.matrix.borrow();
        if u == v {
            // Same existence rule as the monolithic measure: rating-less
            // users have no defined similarity, themselves included.
            return sharded.owning_shard(u).user_mean(u).map(|_| 1.0);
        }
        cross_similarity(
            sharded.owning_shard(u),
            sharded.owning_shard(v),
            u,
            v,
            self.min_overlap,
        )
    }

    fn name(&self) -> &'static str {
        "sharded-ratings-pearson"
    }
}

impl<M: Borrow<ShardedRatingMatrix>> BulkUserSimilarity for ShardedRatingsSimilarity<M> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.scatter_gather(u, num_users, scratch, out, false);
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.scatter_gather(u, num_users, scratch, out, true);
    }

    /// Pearson is bitwise symmetric, and the partition does not change
    /// the per-pair arithmetic.
    fn is_symmetric(&self) -> bool {
        true
    }
}

/// One leg of the scatter: source row from one shard matrix, candidates
/// from (possibly) another. Only users owned by the candidate matrix can
/// ever be emitted, in ascending id order.
#[derive(Debug, Clone, Copy)]
struct ShardScopedRatings<'a> {
    source: &'a fairrec_types::RatingMatrix,
    candidates: &'a fairrec_types::RatingMatrix,
    min_overlap: usize,
}

impl UserSimilarity for ShardScopedRatings<'_> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        if u == v {
            return self.source.user_mean(u).map(|_| 1.0);
        }
        cross_similarity(self.source, self.candidates, u, v, self.min_overlap)
    }

    fn name(&self) -> &'static str {
        "shard-scoped-pearson"
    }
}

impl BulkUserSimilarity for ShardScopedRatings<'_> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        cross_kernel(
            self.source,
            self.candidates,
            u,
            num_users,
            self.min_overlap,
            scratch,
            out,
            false,
        );
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        cross_kernel(
            self.source,
            self.candidates,
            u,
            num_users,
            self.min_overlap,
            scratch,
            out,
            true,
        );
    }

    /// Where both directions are defined (both users in scope), the
    /// values are the same bits — which is all
    /// [`PeerIndex::apply_delta`]'s splice relies on.
    fn is_symmetric(&self) -> bool {
        true
    }
}

/// What a sharded maintenance call did, per shard plus the aggregate.
/// The aggregate is what the engine's `IngestReport` surfaces; the
/// per-shard counts exist for tests and operational introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedDeltaReport {
    /// Aggregate outcome over every shard: `Spliced` only when **every**
    /// warm shard spliced exactly (touched = total endpoint lists
    /// patched across shards), `InvalidatedAll` when any shard had to
    /// fall back, `ColdIndex` when every shard was cold.
    pub outcome: DeltaOutcome,
    /// Per-shard outcomes, in shard order.
    pub per_shard: Vec<DeltaOutcome>,
}

/// Hash-partitioned [`PeerIndex`]: one per-shard index over the global
/// universe, each owning its users' full peer lists under its own
/// generation token. See the module docs for the warm, serving, and
/// delta contracts.
#[derive(Debug)]
pub struct ShardedPeerIndex {
    spec: ShardSpec,
    selector: PeerSelector,
    shards: Vec<RwLock<PeerIndex>>,
}

impl ShardedPeerIndex {
    /// An empty (cold) sharded index over `0..num_users` with
    /// `spec.num_shards()` shards, answering with `selector`.
    pub fn new(selector: PeerSelector, spec: ShardSpec, num_users: u32) -> Self {
        Self {
            spec,
            selector,
            shards: (0..spec.num_shards())
                .map(|_| RwLock::new(PeerIndex::new(selector, num_users)))
                .collect(),
        }
    }

    /// The partitioning spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The selector whose δ / cap every shard answers with.
    pub fn selector(&self) -> &PeerSelector {
        &self.selector
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.spec.num_shards()
    }

    /// Size of the (global) user universe.
    pub fn num_users(&self) -> u32 {
        self.read_shard(0).num_users()
    }

    /// The shard owning `user`'s serving slot.
    pub fn shard_of(&self, user: UserId) -> usize {
        self.spec.shard_of(user)
    }

    /// Total cached lists across shards. Counts both the owned serving
    /// lists and any shard-scoped bookkeeping lists the delta path has
    /// seeded into non-owning shards.
    pub fn num_cached(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.read_shard(s).num_cached())
            .sum()
    }

    /// Per-shard freshness tokens, in shard order.
    pub fn generations(&self) -> Vec<u64> {
        (0..self.shards.len())
            .map(|s| self.read_shard(s).generation())
            .collect()
    }

    /// Aggregate freshness token: the sum of the per-shard tokens. Every
    /// maintenance call bumps at least one shard token before touching
    /// any slot, so the sum is monotone and usable exactly like
    /// [`PeerIndex::generation`].
    pub fn generation(&self) -> u64 {
        self.generations().iter().sum()
    }

    fn read_shard(&self, s: usize) -> std::sync::RwLockReadGuard<'_, PeerIndex> {
        self.shards[s].read().expect("shard index poisoned")
    }

    /// The raw cached full list of `user` from its owning shard, if
    /// present.
    pub fn cached_full(&self, user: UserId) -> Option<Arc<Peers>> {
        if user.raw() >= self.num_users() {
            return None;
        }
        self.read_shard(self.shard_of(user)).cached_full(user)
    }

    /// The memoized **full global** peer list of `user`, served by (and
    /// cached in) the owning shard; a cold slot scatters one shard-scoped
    /// kernel pass per shard and gathers the merged list. Users outside
    /// the universe answer empty.
    pub fn full_peers<M: Borrow<ShardedRatingMatrix>>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        user: UserId,
    ) -> Arc<Peers> {
        if user.raw() >= self.num_users() {
            return Arc::new(Peers::new());
        }
        self.read_shard(self.shard_of(user))
            .full_peers(measure, user)
    }

    /// Definition 1 for one user — identical to the monolithic
    /// [`PeerIndex::peers_of`].
    pub fn peers_of<M: Borrow<ShardedRatingMatrix>>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        user: UserId,
    ) -> Peers {
        self.selector.view(&self.full_peers(measure, user), &[])
    }

    /// Peer lists for every member of `group` with co-members masked —
    /// the serving fan-out: each member's lookup routes to its owning
    /// shard, and the group view is a pure mask+cap over the cached full
    /// list, identical to [`PeerIndex::group_peers`].
    pub fn group_peers<M: Borrow<ShardedRatingMatrix>>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        group: &[UserId],
    ) -> Vec<(UserId, Peers)> {
        group
            .iter()
            .map(|&member| {
                (
                    member,
                    self.selector.view(&self.full_peers(measure, member), group),
                )
            })
            .collect()
    }

    /// Eagerly fills every cold **owned** slot through the ordinary
    /// scatter-gather lazy path, fanned out across the configured
    /// parallelism. Returns the number of lists computed. This is also
    /// the fallback [`warm_symmetric`](Self::warm_symmetric) takes when
    /// any shard is partially warm (a partial triangle cannot be
    /// restricted to the cold subset, exactly as in the monolithic
    /// index).
    pub fn warm<M: Borrow<ShardedRatingMatrix> + Sync>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        parallelism: Parallelism,
    ) -> usize {
        let cold: Vec<UserId> = (0..self.num_users())
            .map(UserId::new)
            .filter(|&u| self.cached_full(u).is_none())
            .collect();
        let computed = cold.len();
        parallelism.map(cold, |u| {
            let _ = self.full_peers(measure, u);
        });
        computed
    }

    /// Symmetric bulk warm decomposed into per-shard-pair kernel tasks on
    /// the worker pool; see the module docs for the schedule. Only runs
    /// the triangle on a fully cold index (falls back to
    /// [`warm`](Self::warm) otherwise); the per-shard splices happen
    /// under each shard's recorded generation token, so a concurrent
    /// invalidation of a shard skips that shard's splice. Returns the
    /// number of lists computed. Bitwise identical to the monolithic
    /// [`PeerIndex::warm_symmetric`] for any shard count.
    pub fn warm_symmetric<M: Borrow<ShardedRatingMatrix> + Sync>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        parallelism: Parallelism,
    ) -> usize {
        let num_shards = self.shards.len();
        if (0..num_shards).any(|s| self.read_shard(s).num_cached() != 0) {
            return self.warm(measure, parallelism);
        }
        let sharded = measure.matrix();
        let n = self.num_users();
        let delta = self.selector.delta;
        let generations: Vec<u64> = (0..num_shards)
            .map(|s| self.read_shard(s).generation())
            .collect();

        // One task per shard pair (a ≤ b): the diagonal runs the
        // above-only kernel (each same-shard pair once), off-diagonal
        // pairs run the full scoped kernel from a's sources into b's
        // candidates (each cross-shard pair once).
        let pairs: Vec<(usize, usize)> = (0..num_shards)
            .flat_map(|a| (a..num_shards).map(move |b| (a, b)))
            .collect();
        type Edge = (UserId, UserId, f64);
        let edge_sets: Vec<Vec<Edge>> = parallelism.map(pairs, |(a, b)| {
            let scoped = ShardScopedRatings {
                source: sharded.shard(a),
                candidates: sharded.shard(b),
                min_overlap: measure.min_overlap(),
            };
            let mut scratch = SimScratch::new();
            let mut buf: Peers = Vec::new();
            let mut edges: Vec<Edge> = Vec::new();
            for u in sharded.users_of_shard(a) {
                if u.raw() >= n {
                    break;
                }
                buf.clear();
                if a == b {
                    scoped.similarities_above(u, n, &mut scratch, &mut buf);
                } else {
                    scoped.similarities_from(u, n, &mut scratch, &mut buf);
                }
                // Definition-1 admission is per-pair, so δ applies per
                // edge here, exactly as in the monolithic triangle.
                edges.extend(
                    buf.iter()
                        .filter(|&&(_, s)| s >= delta)
                        .map(|&(v, s)| (u, v, s)),
                );
            }
            edges
        });

        // Scatter every qualifying edge to both endpoints' per-user
        // lists and canonicalise each list exactly once, in parallel —
        // the same funnel as the monolithic scatter. The shard-pair
        // schedule emits each unordered pair exactly once (diagonal
        // pairs via the above-only kernel, cross pairs from the lower
        // shard's sources) and δ was applied per edge above, so the
        // lists are already duplicate-free, self-edge-free, and
        // filtered: each shard's index is then assembled from its owned
        // users' finished lists via the sort-free `from_full_lists`
        // build under its recorded token. Earlier revisions re-funnelled
        // the edges through `from_edges`, paying a second sort + dedup
        // pass per list — the ×1.3 single-thread overhead over the
        // monolithic warm.
        let mut lists: Vec<Peers> = vec![Peers::new(); n as usize];
        for (u, v, sim) in edge_sets.into_iter().flatten() {
            lists[u.index()].push((v, sim));
            lists[v.index()].push((u, sim));
        }
        let mut lists = parallelism.map(lists, |mut list| {
            PeerSelector::canonicalize(&mut list);
            list
        });
        let mut computed = 0usize;
        for (s, (shard, &generation)) in self.shards.iter().zip(&generations).enumerate() {
            let owned = self.spec.users_of_shard(s, n);
            let shard_lists = owned
                .iter()
                .map(|&u| (u, std::mem::take(&mut lists[u.index()])));
            let built = PeerIndex::from_full_lists(self.selector, n, shard_lists)
                .with_generation(generation);
            let mut guard = shard.write().expect("shard index poisoned");
            if guard.generation() == generation {
                computed += owned.len();
                *guard = built;
            }
        }
        computed
    }

    /// Establishes [`PeerIndex::apply_delta`]'s exactness precondition on
    /// every shard **before** the underlying data changes: the owning
    /// shard caches `user`'s full pre-change list (a cache hit on a warm
    /// index), every other warm shard its shard-scoped restriction. Cold
    /// shards are left cold (their delta degrades to the cold no-op).
    pub fn prepare_delta<M: Borrow<ShardedRatingMatrix>>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        user: UserId,
    ) {
        if user.raw() >= self.num_users() {
            return;
        }
        let owning = self.shard_of(user);
        for t in 0..self.shards.len() {
            let shard = self.read_shard(t);
            if shard.num_cached() == 0 {
                continue;
            }
            if t == owning {
                let _ = shard.full_peers(measure, user);
            } else {
                let _ = shard.full_peers(&measure.scoped(user, t), user);
            }
        }
    }

    /// Incrementally repairs every shard after a point change to `user`'s
    /// ratings (call **after** the matrix mutation, with
    /// [`prepare_delta`](Self::prepare_delta) called before it). Each
    /// shard runs [`PeerIndex::apply_delta`] unchanged — the owning shard
    /// under the full scatter-gather measure, the rest under their
    /// shard-scoped measure — so the total kernel work is about two
    /// global passes regardless of `S`, and every warm list ends up
    /// bitwise identical to a cold rebuild against the current data.
    pub fn apply_delta<M: Borrow<ShardedRatingMatrix>>(
        &self,
        measure: &ShardedRatingsSimilarity<M>,
        user: UserId,
    ) -> ShardedDeltaReport {
        if user.raw() >= self.num_users() {
            return ShardedDeltaReport {
                outcome: DeltaOutcome::OutOfUniverse,
                per_shard: vec![DeltaOutcome::OutOfUniverse; self.shards.len()],
            };
        }
        let owning = self.shard_of(user);
        let per_shard: Vec<DeltaOutcome> = (0..self.shards.len())
            .map(|t| {
                let shard = self.read_shard(t);
                if t == owning {
                    shard.apply_delta(measure, user)
                } else {
                    shard.apply_delta(&measure.scoped(user, t), user)
                }
            })
            .collect();
        let outcome = if per_shard
            .iter()
            .any(|o| matches!(o, DeltaOutcome::InvalidatedAll))
        {
            DeltaOutcome::InvalidatedAll
        } else if per_shard
            .iter()
            .all(|o| matches!(o, DeltaOutcome::ColdIndex))
        {
            DeltaOutcome::ColdIndex
        } else {
            DeltaOutcome::Spliced {
                touched: per_shard
                    .iter()
                    .map(|o| match o {
                        DeltaOutcome::Spliced { touched } => *touched,
                        _ => 0,
                    })
                    .sum(),
            }
        };
        ShardedDeltaReport { outcome, per_shard }
    }

    /// Drops every cached list in every shard (each under its own bumped
    /// token) — the blanket maintenance path.
    pub fn invalidate_all(&self) {
        for s in 0..self.shards.len() {
            self.read_shard(s).invalidate_all();
        }
    }

    /// Returns a sharded index over a larger universe, carrying every
    /// shard's cached lists and token forward ([`PeerIndex::grow_universe`]
    /// per shard — same soundness condition: only for growth triggered by
    /// a brand-new user's first rating).
    ///
    /// # Panics
    /// Panics if `num_users` is smaller than the current universe.
    pub fn grow_universe(&self, num_users: u32) -> Self {
        Self {
            spec: self.spec,
            selector: self.selector,
            shards: (0..self.shards.len())
                .map(|s| RwLock::new(self.read_shard(s).grow_universe(num_users)))
                .collect(),
        }
    }

    /// Returns a fully cold sharded index over `num_users` with every
    /// shard's token bumped ([`PeerIndex::rebuild_cold`] per shard).
    pub fn rebuild_cold(&self, num_users: u32) -> Self {
        Self {
            spec: self.spec,
            selector: self.selector,
            shards: (0..self.shards.len())
                .map(|s| RwLock::new(self.read_shard(s).rebuild_cold(num_users)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RatingsSimilarity;
    use fairrec_types::{ItemId, Rating, RatingMatrix, RatingMatrixBuilder};

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    /// Six users with overlapping histories across several items.
    fn fixture() -> RatingMatrix {
        matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (0, 2, 5.0),
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 2, 4.0),
            (2, 0, 3.0),
            (2, 1, 3.5),
            (2, 3, 2.0),
            (3, 1, 4.0),
            (3, 2, 2.0),
            (3, 3, 4.5),
            (4, 0, 1.0),
            (4, 2, 3.0),
            (4, 3, 5.0),
            (5, 4, 2.5),
        ])
    }

    fn sharded(m: &RatingMatrix, s: u32) -> ShardedRatingMatrix {
        ShardedRatingMatrix::from_matrix(m, ShardSpec::new(s).unwrap()).unwrap()
    }

    #[test]
    fn scatter_gather_measure_matches_monolithic_bitwise() {
        let m = fixture();
        let mono = RatingsSimilarity::new(&m);
        for s in [1u32, 2, 3, 8] {
            let part = sharded(&m, s);
            let measure = ShardedRatingsSimilarity::new(&part);
            let mut scratch = SimScratch::new();
            for u in m.user_ids() {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                mono.similarities_from(u, m.num_users(), &mut scratch, &mut a);
                measure.similarities_from(u, m.num_users(), &mut scratch, &mut b);
                assert_eq!(a.len(), b.len(), "S={s}, user {u}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.0, y.0, "S={s}, user {u}");
                    assert_eq!(x.1.to_bits(), y.1.to_bits(), "S={s}, user {u}");
                }
                for v in m.user_ids() {
                    assert_eq!(
                        mono.similarity(u, v),
                        measure.similarity(u, v),
                        "S={s}, pair ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_warm_matches_monolithic_lists() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let mono = PeerIndex::new(sel, m.num_users());
        mono.warm_symmetric(&RatingsSimilarity::new(&m), Parallelism::Sequential);
        for s in [1u32, 2, 3, 8] {
            let part = sharded(&m, s);
            let measure = ShardedRatingsSimilarity::new(&part);
            let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
            assert_eq!(
                index.warm_symmetric(&measure, Parallelism::Sequential),
                m.num_users() as usize
            );
            for u in m.user_ids() {
                assert_eq!(index.cached_full(u), mono.cached_full(u), "S={s}, user {u}");
            }
        }
    }

    #[test]
    fn lookups_route_to_the_owning_shard() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let part = sharded(&m, 3);
        let measure = ShardedRatingsSimilarity::new(&part);
        let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
        let u = UserId::new(2);
        let first = index.full_peers(&measure, u);
        // Only the owning shard gained a cached slot.
        assert_eq!(index.num_cached(), 1);
        assert!(index.read_shard(index.shard_of(u)).cached_full(u).is_some());
        let again = index.full_peers(&measure, u);
        assert!(Arc::ptr_eq(&first, &again), "second read is a cache hit");
        // Out-of-universe users answer empty without caching anything.
        assert!(index.full_peers(&measure, UserId::new(99)).is_empty());
        assert_eq!(index.num_cached(), 1);
    }

    #[test]
    fn partially_warm_index_falls_back_and_still_matches() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let part = sharded(&m, 2);
        let measure = ShardedRatingsSimilarity::new(&part);
        let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
        let _ = index.full_peers(&measure, UserId::new(1));
        // One slot is warm: the triangle cannot run, the per-user path
        // finishes the job with identical lists.
        assert_eq!(
            index.warm_symmetric(&measure, Parallelism::Sequential),
            m.num_users() as usize - 1
        );
        let mono = PeerIndex::new(sel, m.num_users());
        mono.warm_symmetric(&RatingsSimilarity::new(&m), Parallelism::Sequential);
        for u in m.user_ids() {
            assert_eq!(index.cached_full(u), mono.cached_full(u), "user {u}");
        }
    }

    #[test]
    fn delta_stream_matches_cold_rebuild_bitwise() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        for s in [1u32, 2, 3, 8] {
            let mut part = sharded(&m, s);
            let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
            index.warm_symmetric(
                &ShardedRatingsSimilarity::new(&part),
                Parallelism::Sequential,
            );
            let events: [(u32, u32, Option<f64>); 4] = [
                (0, 3, Some(3.0)), // insert
                (2, 1, Some(1.0)), // update
                (4, 2, None),      // remove
                (5, 0, Some(4.5)), // insert giving u5 real overlap
            ];
            for &(u, i, score) in &events {
                let (user, item) = (UserId::new(u), ItemId::new(i));
                index.prepare_delta(&ShardedRatingsSimilarity::new(&part), user);
                match score {
                    Some(v) if part.rating(user, item).is_some() => {
                        part.update_rating(user, item, Rating::new(v).unwrap())
                            .unwrap();
                    }
                    Some(v) => {
                        part.insert_rating(user, item, Rating::new(v).unwrap())
                            .unwrap();
                    }
                    None => {
                        part.remove_rating(user, item).unwrap();
                    }
                }
                let report = index.apply_delta(&ShardedRatingsSimilarity::new(&part), user);
                assert!(
                    matches!(report.outcome, DeltaOutcome::Spliced { .. }),
                    "S={s}, event ({u}, {i}): {report:?}"
                );
            }
            // Oracle: a cold monolithic warm over the final relation.
            let final_matrix = RatingMatrix::from_triples(part.to_triples()).unwrap();
            let mono = PeerIndex::new(sel, m.num_users());
            mono.warm_symmetric(
                &RatingsSimilarity::new(&final_matrix),
                Parallelism::Sequential,
            );
            for u in m.user_ids() {
                assert_eq!(index.cached_full(u), mono.cached_full(u), "S={s}, user {u}");
            }
        }
    }

    #[test]
    fn growth_and_rebuild_mirror_the_monolithic_semantics() {
        let m = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let part = sharded(&m, 3);
        let measure = ShardedRatingsSimilarity::new(&part);
        let index = ShardedPeerIndex::new(sel, part.spec(), m.num_users());
        index.warm_symmetric(&measure, Parallelism::Sequential);
        let gens = index.generations();

        let grown = index.grow_universe(m.num_users() + 4);
        assert_eq!(grown.num_users(), m.num_users() + 4);
        assert_eq!(grown.generations(), gens, "growth carries tokens over");
        for u in m.user_ids() {
            assert_eq!(grown.cached_full(u), index.cached_full(u), "user {u}");
        }
        assert!(grown.cached_full(UserId::new(m.num_users() + 1)).is_none());

        let rebuilt = grown.rebuild_cold(m.num_users());
        assert_eq!(rebuilt.num_cached(), 0);
        assert!(rebuilt
            .generations()
            .iter()
            .zip(&gens)
            .all(|(now, then)| now > then));

        index.invalidate_all();
        assert_eq!(index.num_cached(), 0);
    }
}
