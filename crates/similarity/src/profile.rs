//! Profile-based similarity: tf-idf cosine (§V-B).
//!
//! Pipeline: render every registered profile into its §V-B document, build
//! the tf-idf corpus over those documents (Definition 4), vectorise each,
//! and compare users by cosine (Equation 3). Vectors are precomputed once
//! at construction — similarity queries are then a sparse dot product.

use crate::UserSimilarity;
use fairrec_ontology::Ontology;
use fairrec_phr::{render_profile, PhrStore};
use fairrec_text::{cosine, CorpusBuilder, SparseVector, TfWeighting, Tokenizer};
use fairrec_types::UserId;

/// Cosine-over-tf-idf similarity of patient profiles.
#[derive(Debug, Clone)]
pub struct ProfileSimilarity {
    /// Vector per user id slot; `None` for users without a profile or with
    /// an all-zero vector source (empty document).
    vectors: Vec<Option<SparseVector>>,
}

impl ProfileSimilarity {
    /// Builds vectors for every profile in `store` with default
    /// tokenisation and raw-count tf.
    pub fn build(store: &PhrStore, ontology: &Ontology) -> Self {
        Self::build_with(store, ontology, &Tokenizer::new(), TfWeighting::RawCount)
    }

    /// Builds with explicit tokenizer and tf weighting.
    pub fn build_with(
        store: &PhrStore,
        ontology: &Ontology,
        tokenizer: &Tokenizer,
        tf: TfWeighting,
    ) -> Self {
        // Pass 1: render + tokenise every profile, feeding the corpus.
        let mut corpus = CorpusBuilder::new().with_tf_weighting(tf);
        let docs: Vec<(UserId, Vec<String>)> = store
            .iter()
            .map(|p| (p.user, tokenizer.tokenize(&render_profile(p, ontology))))
            .collect();
        for (_, tokens) in &docs {
            corpus.add_document(tokens);
        }
        let model = corpus.build();

        // Pass 2: vectorise.
        let max_user = docs
            .iter()
            .map(|(u, _)| u.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut vectors: Vec<Option<SparseVector>> = vec![None; max_user];
        for (user, tokens) in &docs {
            let v = model.vectorize(tokens);
            if !v.is_empty() {
                vectors[user.index()] = Some(v);
            }
        }
        Self { vectors }
    }

    /// The tf-idf vector of a user, when defined.
    pub fn vector(&self, u: UserId) -> Option<&SparseVector> {
        self.vectors.get(u.index())?.as_ref()
    }

    /// Number of users with a defined vector.
    pub fn num_vectorized(&self) -> usize {
        self.vectors.iter().filter(|v| v.is_some()).count()
    }
}

impl UserSimilarity for ProfileSimilarity {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        let (a, b) = (self.vector(u)?, self.vector(v)?);
        Some(cosine(a, b))
    }

    fn name(&self) -> &'static str {
        "profile-cosine"
    }
}

/// Bulk queries fall back to the per-pair scan: tf-idf cosine has no
/// candidate-generating index here (and `cosine` is not guaranteed to be
/// bitwise symmetric, so the symmetric warm stays off).
impl crate::bulk::BulkUserSimilarity for ProfileSimilarity {}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_ontology::snomed::clinical_fragment;
    use fairrec_phr::table1;
    use fairrec_phr::{Gender, PatientProfile};

    fn table1_similarity() -> ProfileSimilarity {
        let ont = clinical_fragment();
        let store: PhrStore = table1::patients(&ont).into_iter().collect();
        ProfileSimilarity::build(&store, &ont)
    }

    #[test]
    fn patient1_profile_closer_to_patient3_than_patient2() {
        // Patients 1 and 3 share a medication (Ramipril 10 MG Oral
        // Capsule); 1 and 2 share nothing distinctive.
        let s = table1_similarity();
        let s13 = s.similarity(UserId::new(0), UserId::new(2)).unwrap();
        let s12 = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!(s13 > s12, "CS(1,3)={s13} should exceed CS(1,2)={s12}");
    }

    #[test]
    fn cosine_in_unit_interval_and_symmetric() {
        let s = table1_similarity();
        for a in 0..3u32 {
            for b in 0..3u32 {
                let ab = s.similarity(UserId::new(a), UserId::new(b)).unwrap();
                let ba = s.similarity(UserId::new(b), UserId::new(a)).unwrap();
                assert!((0.0..=1.0).contains(&ab));
                assert!((ab - ba).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn self_similarity_is_one() {
        let s = table1_similarity();
        let ss = s.similarity(UserId::new(0), UserId::new(0)).unwrap();
        assert!((ss - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_users_are_undefined() {
        let s = table1_similarity();
        assert_eq!(s.similarity(UserId::new(0), UserId::new(9)), None);
    }

    #[test]
    fn identical_template_only_profiles_may_be_undefined() {
        // Two profiles whose rendered documents consist of one ubiquitous
        // token ("unknown" gender): idf = 0 everywhere ⇒ zero vectors ⇒
        // undefined similarity rather than a spurious 1.0.
        let ont = clinical_fragment();
        let store: PhrStore = (0..2)
            .map(|u| PatientProfile::builder(UserId::new(u)).build())
            .collect();
        let s = ProfileSimilarity::build(&store, &ont);
        assert_eq!(s.num_vectorized(), 0);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn gender_and_age_bucket_contribute() {
        let ont = clinical_fragment();
        let mk = |u: u32, gender: Gender, age: u8| {
            PatientProfile::builder(UserId::new(u))
                .medication("Aspirin")
                .gender(gender)
                .age(age)
                .build()
        };
        // u0/u1 same gender+decade; u2 differs in both. A third distinct
        // document keeps idf of the shared terms non-zero.
        let store: PhrStore = [
            mk(0, Gender::Female, 41),
            mk(1, Gender::Female, 45),
            mk(2, Gender::Male, 70),
        ]
        .into_iter()
        .collect();
        let s = ProfileSimilarity::build(&store, &ont);
        let same = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        let diff = s.similarity(UserId::new(0), UserId::new(2)).unwrap();
        assert!(same > diff, "same cohort {same} !> different cohort {diff}");
    }
}
