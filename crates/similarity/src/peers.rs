//! Peer selection (Definition 1).
//!
//! *"The peers `P_u` of a user `u ∈ U` consists of all those users
//! `u′ ∈ U` which are similar to `u` w.r.t. a similarity function
//! `simU(u, u′)` and a threshold `δ`."*
//!
//! Besides the plain threshold the selector supports an optional cap on
//! the number of peers (keep only the `max_peers` most similar) — the
//! standard kNN variant used when δ alone admits too many weak neighbours.
//! Group queries exclude the group's own members from each other's peer
//! sets, mirroring MapReduce Job 1, which only pairs members with
//! *non-members*.

use crate::bulk::{BulkUserSimilarity, SimScratch};
use crate::UserSimilarity;
use fairrec_types::{FairrecError, Result, UserId};
use std::collections::BinaryHeap;

/// One user's peer list: `(peer, simU)` sorted by descending similarity,
/// ties broken by ascending user id.
pub type Peers = Vec<(UserId, f64)>;

/// Slack kept beyond `max_peers` in cached peer lists (the
/// [`PeerSelector::cache_bound`]). A cached list must survive masking:
/// the group view filters co-members *before* capping, so a capped cache
/// needs `max_peers` survivors after up to one exclusion per group
/// member. The engine's fairness layer hard-rejects groups larger than
/// 64 members (its membership masks are `u64` bit sets), so
/// `max_peers + 64` entries keep every mask-then-cap view exact.
pub const GROUP_MASK_SLACK: usize = 64;

/// Threshold-based peer selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerSelector {
    /// Similarity threshold δ of Definition 1.
    pub delta: f64,
    /// Optional cap: keep only the most similar `max_peers`.
    pub max_peers: Option<usize>,
}

impl PeerSelector {
    /// Selector with threshold `delta` and no cap.
    ///
    /// # Errors
    /// Rejects a non-finite `delta`.
    pub fn new(delta: f64) -> Result<Self> {
        if !delta.is_finite() {
            return Err(FairrecError::invalid_parameter(
                "delta",
                format!("threshold must be finite, got {delta}"),
            ));
        }
        Ok(Self {
            delta,
            max_peers: None,
        })
    }

    /// Caps the number of peers.
    pub fn with_max_peers(mut self, max_peers: usize) -> Self {
        self.max_peers = Some(max_peers);
        self
    }

    /// How many entries a cached **full** list needs to answer every view
    /// of this selector exactly: `None` (store everything) when uncapped,
    /// `max_peers + GROUP_MASK_SLACK` when capped. Entries beyond the
    /// first `max_peers` exist only to refill the capped window when a
    /// group mask removes up to `GROUP_MASK_SLACK` co-members, so the
    /// bound keeps [`view`](Self::view) bitwise equal to a fresh
    /// uncapped-scan-then-mask-then-cap for every group the engine
    /// admits, while power users' cached lists stay O(`max_peers`).
    pub fn cache_bound(&self) -> Option<usize> {
        self.max_peers
            .map(|cap| cap.saturating_add(GROUP_MASK_SLACK))
    }

    /// Peers of `u` within `universe` (typically all users), excluding `u`
    /// itself and any id in `exclude`.
    pub fn peers_of<S: UserSimilarity + ?Sized>(
        &self,
        measure: &S,
        u: UserId,
        universe: impl IntoIterator<Item = UserId>,
        exclude: &[UserId],
    ) -> Peers {
        let mut peers: Peers = universe
            .into_iter()
            .filter(|&v| v != u && !exclude.contains(&v))
            .filter_map(|v| {
                measure
                    .similarity(u, v)
                    .filter(|&s| s >= self.delta)
                    .map(|s| (v, s))
            })
            .collect();
        Self::canonicalize(&mut peers);
        if let Some(cap) = self.max_peers {
            peers.truncate(cap);
        }
        peers
    }

    /// Peer lists for every member of `group`, excluding fellow members
    /// (the Job 1 pairing rule).
    pub fn peers_for_group<S: UserSimilarity + ?Sized>(
        &self,
        measure: &S,
        group: &[UserId],
        universe: impl IntoIterator<Item = UserId> + Clone,
    ) -> Vec<(UserId, Peers)> {
        group
            .iter()
            .map(|&member| {
                (
                    member,
                    self.peers_of(measure, member, universe.clone(), group),
                )
            })
            .collect()
    }

    /// [`peers_of`](Self::peers_of) over the dense universe
    /// `0..num_users`, served by the measure's one-vs-all bulk path — one
    /// kernel pass instead of `num_users` per-pair calls. Results are
    /// **bitwise identical** to `peers_of(measure, u, 0..num_users,
    /// exclude)`: the bulk contract guarantees identical similarity bits,
    /// and threshold admission, masking, canonical ordering, and capping
    /// are applied here exactly as in the per-pair path. `scratch` is the
    /// reusable kernel workspace (one per worker thread).
    pub fn peers_of_bulk<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        u: UserId,
        num_users: u32,
        exclude: &[UserId],
        scratch: &mut SimScratch,
    ) -> Peers {
        let mut peers: Peers = Vec::new();
        measure.similarities_from(u, num_users, scratch, &mut peers);
        peers.retain(|&(v, s)| s >= self.delta && !exclude.contains(&v));
        match self.max_peers {
            Some(cap) => top_cap(&mut peers, cap),
            None => Self::canonicalize(&mut peers),
        }
        peers
    }

    /// Bulk form of [`peers_for_group`](Self::peers_for_group): one
    /// kernel pass per member over the dense universe, sharing `scratch`.
    pub fn peers_for_group_bulk<S: BulkUserSimilarity + ?Sized>(
        &self,
        measure: &S,
        group: &[UserId],
        num_users: u32,
        scratch: &mut SimScratch,
    ) -> Vec<(UserId, Peers)> {
        group
            .iter()
            .map(|&member| {
                (
                    member,
                    self.peers_of_bulk(measure, member, num_users, group, scratch),
                )
            })
            .collect()
    }

    /// Sorts a peer list into the canonical Definition-1 order:
    /// descending similarity, ascending user id on ties — deterministic
    /// regardless of how the list was produced. Every peer-producing path
    /// (direct scans, the cached [`PeerIndex`](crate::PeerIndex), the
    /// MapReduce Job 2 edge ingestion) funnels through this.
    ///
    /// # Panics
    /// Panics on non-finite similarities — those must never enter a peer
    /// list (measures return `None` for undefined pairs instead).
    pub fn canonicalize(peers: &mut Peers) {
        peers.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("similarities are finite")
                .then(a.0.cmp(&b.0))
        });
    }

    /// Derives a request-time view from a cached **full** (uncapped,
    /// unmasked, canonically sorted) peer list: masks every id in
    /// `exclude`, then applies this selector's `max_peers` cap. With an
    /// empty mask this reproduces `peers_of(..., &[])`; with a group mask
    /// it reproduces the [`peers_for_group`](Self::peers_for_group)
    /// entry — masking before capping is what lets freed-up slots promote
    /// the next-best peer, exactly as recomputation would.
    pub fn view(&self, full: &[(UserId, f64)], exclude: &[UserId]) -> Peers {
        let take = self.max_peers.unwrap_or(usize::MAX);
        full.iter()
            .filter(|(v, _)| !exclude.contains(v))
            .take(take)
            .copied()
            .collect()
    }
}

/// Canonical-rank heap entry ordered worst-first, so a max-heap keeps the
/// *worst retained* peer at its top — the one the next candidate must
/// outrank to enter. `total_cmp` so the heap never panics mid-selection;
/// the final [`PeerSelector::canonicalize`] still enforces finiteness on
/// everything kept.
struct WorstFirst((UserId, f64));

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lower similarity = worse = greater; ties: higher id = worse.
        other
            .0
             .1
            .total_cmp(&self.0 .1)
            .then(self.0 .0.cmp(&other.0 .0))
    }
}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for WorstFirst {}

/// Keeps the `cap` canonically best entries of `peers` and sorts them
/// canonically — **bitwise identical** to
/// [`PeerSelector::canonicalize`]` + truncate(cap)` (the canonical order
/// is total over distinct ids, so "the first `cap` of the full sort" is a
/// unique set), but O(n log cap) instead of O(n log n): a bounded
/// worst-at-top heap admits a candidate only when it outranks the worst
/// peer currently kept. This is the kernel-side top-cap for capped
/// selectors, where n is the whole qualifying universe of a power user
/// and `cap` is small.
pub(crate) fn top_cap(peers: &mut Peers, cap: usize) {
    if cap == 0 {
        peers.clear();
        return;
    }
    if peers.len() > cap {
        let overflow = peers.split_off(cap);
        let mut heap: BinaryHeap<WorstFirst> = peers.drain(..).map(WorstFirst).collect();
        for entry in overflow {
            let candidate = WorstFirst(entry);
            if candidate < *heap.peek().expect("cap > 0") {
                heap.pop();
                heap.push(candidate);
            }
        }
        peers.extend(heap.into_iter().map(|w| w.0));
    }
    PeerSelector::canonicalize(peers);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Similarity fixed by a dense table; `None` where negative.
    struct Table(Vec<Vec<f64>>);

    impl UserSimilarity for Table {
        fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
            let s = *self.0.get(u.index())?.get(v.index())?;
            (s >= 0.0).then_some(s)
        }
        fn name(&self) -> &'static str {
            "table"
        }
    }

    fn users(n: u32) -> Vec<UserId> {
        (0..n).map(UserId::new).collect()
    }

    #[test]
    fn threshold_filters_and_sorts_descending() {
        let m = Table(vec![
            vec![1.0, 0.9, 0.2, 0.9, 0.5],
            vec![0.9, 1.0, 0.0, 0.0, 0.0],
            vec![0.2, 0.0, 1.0, 0.0, 0.0],
            vec![0.9, 0.0, 0.0, 1.0, 0.0],
            vec![0.5, 0.0, 0.0, 0.0, 1.0],
        ]);
        let sel = PeerSelector::new(0.5).unwrap();
        let peers = sel.peers_of(&m, UserId::new(0), users(5), &[]);
        // 0.9 tie between u1 and u3 resolved by id; u4 at 0.5 included
        // (threshold is ≥); u2 at 0.2 excluded; self excluded.
        assert_eq!(
            peers,
            vec![
                (UserId::new(1), 0.9),
                (UserId::new(3), 0.9),
                (UserId::new(4), 0.5)
            ]
        );
    }

    #[test]
    fn undefined_similarities_never_qualify() {
        let m = Table(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
        let sel = PeerSelector::new(-10.0).unwrap(); // admit anything defined
        let peers = sel.peers_of(&m, UserId::new(0), users(2), &[]);
        assert!(peers.is_empty());
    }

    #[test]
    fn max_peers_caps_after_sorting() {
        let m = Table(vec![
            vec![1.0, 0.3, 0.8, 0.6],
            vec![0.3, 1.0, 0.0, 0.0],
            vec![0.8, 0.0, 1.0, 0.0],
            vec![0.6, 0.0, 0.0, 1.0],
        ]);
        let sel = PeerSelector::new(0.0).unwrap().with_max_peers(2);
        let peers = sel.peers_of(&m, UserId::new(0), users(4), &[]);
        assert_eq!(peers, vec![(UserId::new(2), 0.8), (UserId::new(3), 0.6)]);
    }

    #[test]
    fn group_members_are_mutually_excluded() {
        let m = Table(vec![
            vec![1.0, 0.9, 0.9, 0.9],
            vec![0.9, 1.0, 0.9, 0.9],
            vec![0.9, 0.9, 1.0, 0.9],
            vec![0.9, 0.9, 0.9, 1.0],
        ]);
        let sel = PeerSelector::new(0.5).unwrap();
        let group = [UserId::new(0), UserId::new(1)];
        let per_member = sel.peers_for_group(&m, &group, users(4));
        assert_eq!(per_member.len(), 2);
        for (member, peers) in per_member {
            let ids: Vec<UserId> = peers.iter().map(|p| p.0).collect();
            assert!(!ids.contains(&UserId::new(0)), "member {member}");
            assert!(!ids.contains(&UserId::new(1)), "member {member}");
            assert_eq!(ids, vec![UserId::new(2), UserId::new(3)]);
        }
    }

    #[test]
    fn non_finite_delta_is_rejected() {
        assert!(PeerSelector::new(f64::NAN).is_err());
        assert!(PeerSelector::new(f64::INFINITY).is_err());
        assert!(PeerSelector::new(0.3).is_ok());
    }

    #[test]
    fn empty_universe_yields_no_peers() {
        let m = Table(vec![vec![1.0]]);
        let sel = PeerSelector::new(0.0).unwrap();
        assert!(sel.peers_of(&m, UserId::new(0), [], &[]).is_empty());
    }

    impl crate::bulk::BulkUserSimilarity for Table {}

    #[test]
    fn top_cap_matches_sort_then_truncate() {
        // Deterministic pseudo-random list with plenty of ties.
        let mut state = 0x9e37u32;
        let mut next = || {
            state = state.wrapping_mul(48271) % 0x7fff_ffff;
            state
        };
        let base: Peers = (0..500)
            .map(|id| (UserId::new(id), f64::from(next() % 17) / 16.0))
            .collect();
        for cap in [0, 1, 7, 64, 499, 500, 600] {
            let mut expected = base.clone();
            PeerSelector::canonicalize(&mut expected);
            expected.truncate(cap);
            let mut heaped = base.clone();
            top_cap(&mut heaped, cap);
            assert_eq!(heaped, expected, "cap {cap}");
        }
    }

    #[test]
    fn cache_bound_adds_the_mask_slack() {
        let uncapped = PeerSelector::new(0.0).unwrap();
        assert_eq!(uncapped.cache_bound(), None);
        let capped = uncapped.with_max_peers(10);
        assert_eq!(capped.cache_bound(), Some(10 + GROUP_MASK_SLACK));
    }

    #[test]
    fn bulk_entry_points_match_per_pair_paths() {
        let m = Table(vec![
            vec![1.0, 0.9, 0.2, 0.9, 0.5],
            vec![0.9, 1.0, 0.3, 0.4, 0.6],
            vec![0.2, 0.3, 1.0, 0.8, 0.7],
            vec![0.9, 0.4, 0.8, 1.0, 0.1],
            vec![0.5, 0.6, 0.7, 0.1, 1.0],
        ]);
        let mut scratch = SimScratch::new();
        for sel in [
            PeerSelector::new(0.5).unwrap(),
            PeerSelector::new(0.0).unwrap().with_max_peers(2),
        ] {
            for u in (0..5).map(UserId::new) {
                let direct = sel.peers_of(&m, u, users(5), &[]);
                let bulk = sel.peers_of_bulk(&m, u, 5, &[], &mut scratch);
                assert_eq!(bulk, direct, "user {u}");
            }
            let group = [UserId::new(0), UserId::new(3)];
            assert_eq!(
                sel.peers_for_group_bulk(&m, &group, 5, &mut scratch),
                sel.peers_for_group(&m, &group, users(5)),
            );
        }
    }
}
