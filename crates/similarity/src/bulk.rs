//! One-vs-all similarity — the bulk form of `simU`.
//!
//! [`UserSimilarity`] answers one pair at a time, which makes a *cold*
//! Definition-1 fill (every user against every user) an O(U²·d) scan.
//! [`BulkUserSimilarity`] is the one-vs-all counterpart: given a source
//! user, produce **every** defined `(candidate, simU)` in one pass. For
//! measures with sparse structure — Pearson over a rating matrix is the
//! canonical case — candidates can be generated from the item-major index
//! (only users who co-rated something can have a defined similarity), so
//! one pass costs `Σ_{i∈I(u)} |U(i)|` instead of `U·d`.
//!
//! The trait carries default per-pair fallbacks, so any measure is
//! trivially bulk-capable (`impl BulkUserSimilarity for MyMeasure {}`)
//! and composite measures like `HybridSimilarity` keep working unchanged.
//! Specialised implementations must obey the **bitwise-equality
//! contract**: the `(candidate, simU)` set they produce is exactly the
//! set the per-pair fallback would produce, with bit-for-bit identical
//! similarity values. `fairrec-similarity/tests/bulk_kernel.rs` pins this
//! property for the shipped kernels.
//!
//! [`SimScratch`] is the reusable workspace a bulk pass accumulates into:
//! allocate one per worker thread, reuse it across source users, and the
//! kernels run allocation-free apart from their output.
//!
//! ## Staleness and the update path
//!
//! A bulk pass reads whatever the measure's backing data holds *at call
//! time* — the trait has no snapshot semantics. Consumers that cache
//! kernel output (the `PeerIndex`) therefore carry the staleness
//! discipline themselves: a generation token bumped before any data
//! change, re-checked before a computed result may be stored. The same
//! one-vs-all pass is also the engine of the incremental update path —
//! after a point change to one user's data, a single
//! [`similarities_from`](BulkUserSimilarity::similarities_from) pass
//! yields that user's entire refreshed edge set, and for measures that
//! answer [`is_symmetric`](BulkUserSimilarity::is_symmetric) those edges
//! are valid from *both* endpoints, which is what lets
//! `PeerIndex::apply_delta` splice them into other users' cached lists
//! instead of invalidating. See the `peer_index` module docs for the
//! full update-path contract.

use crate::UserSimilarity;
use fairrec_types::UserId;

/// Reusable scratch for one-vs-all kernels: per-candidate accumulator
/// slots (`mark`/`count`/`num`/`den_u`/`den_v`) plus the list of slots
/// touched by the current pass. The epoch trick makes `begin` O(1): a
/// slot is live only when its mark equals the current epoch, so arrays
/// never need clearing between passes.
#[derive(Debug, Default)]
pub struct SimScratch {
    epoch: u32,
    mark: Vec<u32>,
    count: Vec<u32>,
    num: Vec<f64>,
    den_u: Vec<f64>,
    den_v: Vec<f64>,
    touched: Vec<u32>,
}

impl SimScratch {
    /// An empty scratch; it grows to the first kernel's universe size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new pass over a universe of `n` candidate slots:
    /// bumps the epoch (so every slot reads as untouched) and ensures
    /// capacity. Kernels call this once per source user.
    pub fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.count.resize(n, 0);
            self.num.resize(n, 0.0);
            self.den_u.resize(n, 0.0);
            self.den_v.resize(n, 0.0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // One clear every 2³² passes keeps the invariant exact.
                self.mark.fill(0);
                1
            }
        };
        self.touched.clear();
    }

    /// Accumulates one co-rating contribution for candidate slot `v`.
    /// First touch initialises the slot and records it in `touched`.
    #[inline]
    pub fn accumulate(&mut self, v: usize, du: f64, dv: f64) {
        if self.mark[v] != self.epoch {
            self.mark[v] = self.epoch;
            self.count[v] = 0;
            self.num[v] = 0.0;
            self.den_u[v] = 0.0;
            self.den_v[v] = 0.0;
            self.touched.push(v as u32);
        }
        self.num[v] += du * dv;
        self.den_u[v] += du * du;
        self.den_v[v] += dv * dv;
        self.count[v] += 1;
    }

    /// The candidates touched this pass in ascending slot order, each as
    /// `(slot, count, num, den_u, den_v)`. Kernels call this once after
    /// accumulation to finish and emit their scores.
    pub fn sorted_candidates(&mut self) -> impl Iterator<Item = (usize, u32, f64, f64, f64)> + '_ {
        self.touched.sort_unstable();
        let Self {
            touched,
            count,
            num,
            den_u,
            den_v,
            ..
        } = self;
        touched.iter().map(move |&raw| {
            let v = raw as usize;
            (v, count[v], num[v], den_u[v], den_v[v])
        })
    }
}

/// A [`UserSimilarity`] that can answer one-vs-all queries in bulk.
///
/// The default method bodies are per-pair fallbacks — correct for every
/// measure, with the same O(U) cost per source user as a direct scan —
/// so `impl BulkUserSimilarity for M {}` suffices for measures without
/// exploitable sparse structure. See the module docs for the
/// bitwise-equality contract specialised kernels must obey.
pub trait BulkUserSimilarity: UserSimilarity {
    /// Appends `(v, simU(u, v))` to `out` for every `v ∈ 0..num_users`
    /// with a defined similarity, excluding `v == u`, in ascending `v`
    /// order.
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        let _ = scratch;
        for v in (0..num_users).map(UserId::new) {
            if v == u {
                continue;
            }
            if let Some(s) = self.similarity(u, v) {
                out.push((v, s));
            }
        }
    }

    /// Upper-triangle variant of
    /// [`similarities_from`](Self::similarities_from): only candidates
    /// with `v > u`. For a [symmetric](Self::is_symmetric) measure one
    /// such pass per user covers every pair exactly once — the symmetric
    /// bulk warm of `PeerIndex` builds on this to halve the arithmetic of
    /// a full cold fill.
    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        let _ = scratch;
        let start = u.raw().saturating_add(1);
        for v in (start..num_users).map(UserId::new) {
            if let Some(s) = self.similarity(u, v) {
                out.push((v, s));
            }
        }
    }

    /// Whether `simU(u, v)` is **bitwise** equal to `simU(v, u)` for every
    /// pair (not merely mathematically symmetric — the float result must
    /// be the same bits in both directions). Only measures answering
    /// `true` are eligible for the symmetric bulk warm; the conservative
    /// default is `false`.
    fn is_symmetric(&self) -> bool {
        false
    }
}

impl<T: BulkUserSimilarity + ?Sized> BulkUserSimilarity for &T {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        (**self).similarities_from(u, num_users, scratch, out);
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        (**self).similarities_above(u, num_users, scratch, out);
    }

    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

impl<T: BulkUserSimilarity + ?Sized> BulkUserSimilarity for Box<T> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        (**self).similarities_from(u, num_users, scratch, out);
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        (**self).similarities_above(u, num_users, scratch, out);
    }

    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

impl<T: BulkUserSimilarity + ?Sized> BulkUserSimilarity for std::sync::Arc<T> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        (**self).similarities_from(u, num_users, scratch, out);
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        (**self).similarities_above(u, num_users, scratch, out);
    }

    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

/// Forces the per-pair fallback of any measure: forwards
/// [`UserSimilarity`] but deliberately does **not** forward the bulk
/// methods, so every bulk entry point degrades to the one-pair-at-a-time
/// scan. This is the reference implementation the equality proptests and
/// the `cold_full_warm` benchmark race the kernels against.
#[derive(Debug, Clone)]
pub struct PairwiseOnly<S>(S);

impl<S: UserSimilarity> PairwiseOnly<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Self(inner)
    }
}

impl<S: UserSimilarity> UserSimilarity for PairwiseOnly<S> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        self.0.similarity(u, v)
    }

    fn name(&self) -> &'static str {
        "pairwise-only"
    }
}

impl<S: UserSimilarity> BulkUserSimilarity for PairwiseOnly<S> {}

#[cfg(test)]
mod tests {
    use super::*;

    /// sim(u, v) = 1 / (1 + |u − v|), undefined when either id is odd.
    struct Toy;

    impl UserSimilarity for Toy {
        fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
            (u.raw().is_multiple_of(2) && v.raw().is_multiple_of(2))
                .then(|| 1.0 / (1.0 + f64::from(u.raw().abs_diff(v.raw()))))
        }
        fn name(&self) -> &'static str {
            "toy"
        }
    }

    impl BulkUserSimilarity for Toy {}

    #[test]
    fn default_bulk_matches_per_pair_scan() {
        let mut scratch = SimScratch::new();
        let mut out = Vec::new();
        Toy.similarities_from(UserId::new(2), 6, &mut scratch, &mut out);
        assert_eq!(
            out,
            vec![(UserId::new(0), 1.0 / 3.0), (UserId::new(4), 1.0 / 3.0),]
        );
    }

    #[test]
    fn default_above_only_yields_higher_ids() {
        let mut scratch = SimScratch::new();
        let mut out = Vec::new();
        Toy.similarities_above(UserId::new(2), 6, &mut scratch, &mut out);
        assert_eq!(out, vec![(UserId::new(4), 1.0 / 3.0)]);
        out.clear();
        // A source at the top of the universe has no upper candidates.
        Toy.similarities_above(UserId::new(5), 6, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_epochs_isolate_passes() {
        let mut s = SimScratch::new();
        s.begin(4);
        s.accumulate(3, -1.0, 1.0);
        s.accumulate(1, 1.0, 2.0);
        s.accumulate(1, 1.0, 2.0);
        let got: Vec<_> = s.sorted_candidates().collect();
        assert_eq!(
            got,
            vec![(1, 2, 4.0, 2.0, 8.0), (3, 1, -1.0, 1.0, 1.0)],
            "candidates come out in ascending slot order"
        );
        // A new pass sees clean slots without any clearing.
        s.begin(4);
        s.accumulate(1, 0.5, 0.5);
        let got: Vec<_> = s.sorted_candidates().collect();
        assert_eq!(got, vec![(1, 1, 0.25, 0.25, 0.25)]);
    }

    #[test]
    fn pairwise_only_never_specialises() {
        let wrapped = PairwiseOnly::new(Toy);
        assert_eq!(
            wrapped.similarity(UserId::new(0), UserId::new(2)),
            Toy.similarity(UserId::new(0), UserId::new(2))
        );
        assert!(!wrapped.is_symmetric());
        let (mut scratch, mut a, mut b) = (SimScratch::new(), Vec::new(), Vec::new());
        wrapped.similarities_from(UserId::new(2), 6, &mut scratch, &mut a);
        Toy.similarities_from(UserId::new(2), 6, &mut scratch, &mut b);
        assert_eq!(a, b);
    }
}
