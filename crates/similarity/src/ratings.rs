//! Ratings-based similarity: Pearson correlation (Equation 2).
//!
//! *"If two users have rated documents in a similar way, then we can say
//! that they are similar, since they share the same interests."* The
//! implementation follows Equation 2 with one widely-used reading: the
//! user means `µ_u` are the means over **all** of a user's ratings (the
//! paper writes "the mean of the ratings of u"), not just the co-rated
//! subset, so a user's notion of "above average" is stable across pairs.
//!
//! Undefined cases return `None` rather than an arbitrary number:
//! * users with no ratings at all (including the self-pair: a rating-less
//!   user has no defined similarity to anyone, themselves included),
//! * fewer than `min_overlap` co-rated items (default 2 — one shared item
//!   always correlates perfectly and is pure noise),
//! * zero variance on the co-rated items for either user (the denominator
//!   of Equation 2 vanishes).
//!
//! ## The inverted-index one-vs-all kernel
//!
//! Besides the per-pair entry point, [`RatingsSimilarity`] implements
//! [`BulkUserSimilarity`] with a sparse kernel that computes `RS(u, ·)`
//! against **all** users in one pass. Instead of intersecting `I(u)` with
//! every other user's items (O(U·d) per source user), it walks `u`'s own
//! ratings and, for each item `i ∈ I(u)`, the item's rater column `U(i)`
//! from the matrix's CSC view — only users who co-rated something with
//! `u` are ever touched, so a full one-vs-all pass costs
//! `Σ_{i∈I(u)} |U(i)|` and a whole cold fill costs the dataset's
//! *co-rating mass* `Σ_u Σ_{i∈I(u)} |U(i)|` instead of O(U²·d).
//!
//! **Bitwise-equality contract:** the outer loop visits `I(u)` in
//! ascending item order — exactly the order of the
//! [`co_ratings`](fairrec_types::RatingMatrix::co_ratings) merge-join the
//! per-pair path sums over — so each candidate's `(n, num, den_u, den_v)`
//! accumulators see the same contributions in the same order, and the
//! finished correlations are bit-for-bit identical to
//! [`similarity`](UserSimilarity::similarity). The proptests in
//! `tests/bulk_kernel.rs` pin this.

use crate::bulk::{BulkUserSimilarity, SimScratch};
use crate::UserSimilarity;
use fairrec_types::{IdRemap, RatingMatrix, ShardMatrix, UserId};
use std::borrow::Borrow;

/// Pearson similarity over a [`RatingMatrix`].
///
/// Generic over how the matrix is held: `&RatingMatrix` for scoped use
/// (the historical API — all existing call sites infer it), or an owning
/// handle such as `Arc<RatingMatrix>` so long-lived components like
/// `RecommenderEngine` can build the measure **once** and share it across
/// threads without self-referential borrows.
#[derive(Debug, Clone)]
pub struct RatingsSimilarity<M = std::sync::Arc<RatingMatrix>> {
    matrix: M,
    min_overlap: usize,
}

impl<M: Borrow<RatingMatrix>> RatingsSimilarity<M> {
    /// Pearson similarity with the default minimum overlap of 2 co-rated
    /// items.
    pub fn new(matrix: M) -> Self {
        Self {
            matrix,
            min_overlap: 2,
        }
    }

    /// Overrides the minimum number of co-rated items (values below 1 are
    /// clamped to 1).
    pub fn with_min_overlap(mut self, min_overlap: usize) -> Self {
        self.min_overlap = min_overlap.max(1);
        self
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &RatingMatrix {
        self.matrix.borrow()
    }

    /// The minimum number of co-rated items for a defined correlation.
    pub fn min_overlap(&self) -> usize {
        self.min_overlap
    }

    /// The one-vs-all kernel behind both [`BulkUserSimilarity`] methods.
    /// When `above_only` is set, candidates `v ≤ u` are skipped by
    /// starting each rater-column scan past `u` (the columns are sorted
    /// by user id), which is what halves the arithmetic of a symmetric
    /// full warm.
    fn bulk_kernel(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
        above_only: bool,
    ) {
        let matrix = self.matrix.borrow();
        cross_kernel(
            KernelSide::whole(matrix),
            KernelSide::whole(matrix),
            u,
            num_users,
            self.min_overlap,
            scratch,
            out,
            above_only,
        );
    }
}

/// One side of a cross-matrix kernel pass: a rating matrix plus the id
/// translation that maps its rows back to the **global** user-id space.
/// A monolithic matrix is its own id space (`remap: None`, every
/// translation is the identity); a compacted shard carries its
/// [`IdRemap`], whose monotonicity is what keeps local iteration order
/// identical to global iteration order — the bitwise-equality linchpin.
#[derive(Clone, Copy)]
pub(crate) struct KernelSide<'a> {
    matrix: &'a RatingMatrix,
    remap: Option<&'a IdRemap>,
}

impl<'a> KernelSide<'a> {
    /// A monolithic matrix: local ids *are* global ids.
    pub(crate) fn whole(matrix: &'a RatingMatrix) -> Self {
        Self {
            matrix,
            remap: None,
        }
    }

    /// A compacted shard: dense local rows, translated at the boundary.
    pub(crate) fn shard(shard: &'a ShardMatrix) -> Self {
        Self {
            matrix: shard.local(),
            remap: Some(shard.remap()),
        }
    }

    /// The local row of global user `u`, if this side holds one.
    fn local_of(&self, u: UserId) -> Option<UserId> {
        match self.remap {
            None => Some(u),
            Some(remap) => remap.local_of(u),
        }
    }

    /// The global id of local row `local`.
    fn global_of(&self, local: UserId) -> UserId {
        match self.remap {
            None => local,
            Some(remap) => remap.global_of(local),
        }
    }

    /// How many of this side's local rows have global id `< bound` —
    /// the local image of a global id-space cutoff. Monotone remaps make
    /// this a single partition point.
    fn local_bound(&self, bound: u32) -> u32 {
        match self.remap {
            None => bound,
            Some(remap) => remap.rank_of_bound(bound),
        }
    }
}

/// The inverted-index Pearson pass with the source row and the candidate
/// columns taken from (possibly) **different** matrices: `source` holds
/// `u`'s CSR row and mean, `candidates` provides the CSC columns and the
/// candidate means. With `source == candidates` this is exactly the
/// monolithic kernel; with a shard-local candidate matrix it is the
/// shard-scoped pass of the sharding layer — and because each candidate's
/// accumulator still sees its co-rating contributions in ascending item
/// order, the emitted similarities are **bitwise identical** to the
/// monolithic kernel restricted to the candidate matrix's users.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cross_kernel(
    source: KernelSide<'_>,
    candidates: KernelSide<'_>,
    u: UserId,
    num_users: u32,
    min_overlap: usize,
    scratch: &mut SimScratch,
    out: &mut Vec<(UserId, f64)>,
    above_only: bool,
) {
    let Some(su) = source.local_of(u) else {
        // The source side holds no row for `u` — same as an empty row.
        return;
    };
    let items = source.matrix.items_of(su);
    if items.is_empty() {
        // No ratings ⇒ µ_u undefined ⇒ per-pair Pearson is None for
        // every candidate.
        return;
    }
    let mu = source.matrix.user_means()[su.index()];
    let means = candidates.matrix.user_means();
    // Translate the global cutoffs into the candidate side's local id
    // space once, outside the hot loops: the universe bound, the
    // above-only pivot (first local row with global id > u), and the
    // self row to skip.
    let local_n = candidates.local_bound(num_users);
    let above_bound = candidates.local_bound(u.raw().saturating_add(1));
    let self_local = candidates.local_of(u);
    scratch.begin(candidates.matrix.num_users() as usize);
    for (&i, &ru) in items.iter().zip(source.matrix.scores_of(su)) {
        let du = ru - mu;
        let raters = candidates.matrix.users_of(i);
        let scores = candidates.matrix.rater_scores_of(i);
        // Columns are sorted by (local ≡ global-order) user id: in
        // above-only mode start past `u`; in full mode only `u` itself
        // needs skipping.
        let start = if above_only {
            raters.partition_point(|&v| v.raw() < above_bound)
        } else {
            0
        };
        for (&v, &rv) in raters[start..].iter().zip(&scores[start..]) {
            if Some(v) == self_local {
                continue;
            }
            if v.raw() >= local_n {
                // Ascending ids: nothing further is in the universe.
                break;
            }
            let dv = rv - means[v.index()];
            scratch.accumulate(v.index(), du, dv);
        }
    }
    out.extend(
        scratch
            .sorted_candidates()
            .filter(|&(_, n, _, den_u, den_v)| {
                (n as usize) >= min_overlap && den_u != 0.0 && den_v != 0.0
            })
            .map(|(slot, _, num, den_u, den_v)| {
                let sim = (num / (den_u.sqrt() * den_v.sqrt())).clamp(-1.0, 1.0);
                (candidates.global_of(UserId::new(slot as u32)), sim)
            }),
    );
}

/// Per-pair Pearson with `u`'s row read from `source` and `v`'s row from
/// `candidates` — the cross-matrix form of
/// [`RatingsSimilarity::similarity`] for `u ≠ v`, summing the merge-join
/// of the two rows in ascending item order (the single-matrix
/// `co_ratings` order, so the result is bitwise the monolithic one).
pub(crate) fn cross_similarity(
    source: KernelSide<'_>,
    candidates: KernelSide<'_>,
    u: UserId,
    v: UserId,
    min_overlap: usize,
) -> Option<f64> {
    let (su, sv) = (source.local_of(u)?, candidates.local_of(v)?);
    let (source, candidates) = (source.matrix, candidates.matrix);
    let (mu, mv) = (source.user_mean(su)?, candidates.user_mean(sv)?);
    let (u_items, u_scores) = (source.items_of(su), source.scores_of(su));
    let (v_items, v_scores) = (candidates.items_of(sv), candidates.scores_of(sv));
    let mut n = 0usize;
    let (mut num, mut den_u, mut den_v) = (0.0f64, 0.0f64, 0.0f64);
    let (mut a, mut b) = (0usize, 0usize);
    while a < u_items.len() && b < v_items.len() {
        match u_items[a].cmp(&v_items[b]) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                let (du, dv) = (u_scores[a] - mu, v_scores[b] - mv);
                num += du * dv;
                den_u += du * du;
                den_v += dv * dv;
                n += 1;
                a += 1;
                b += 1;
            }
        }
    }
    if n < min_overlap || den_u == 0.0 || den_v == 0.0 {
        return None;
    }
    // Clamp floating-point drift into the mathematical range.
    Some((num / (den_u.sqrt() * den_v.sqrt())).clamp(-1.0, 1.0))
}

impl<M: Borrow<RatingMatrix>> UserSimilarity for RatingsSimilarity<M> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        let matrix = self.matrix.borrow();
        if u == v {
            // Self-similarity is trivially 1 — but only for users that
            // exist in the rating relation. A rating-less user has no
            // defined similarity to anyone, themselves included (the
            // short-circuit used to run before this existence check).
            return matrix.user_mean(u).map(|_| 1.0);
        }
        let (mu, mv) = (matrix.user_mean(u)?, matrix.user_mean(v)?);
        let mut n = 0usize;
        let (mut num, mut den_u, mut den_v) = (0.0f64, 0.0f64, 0.0f64);
        for (_, ru, rv) in matrix.co_ratings(u, v) {
            let (du, dv) = (ru - mu, rv - mv);
            num += du * dv;
            den_u += du * du;
            den_v += dv * dv;
            n += 1;
        }
        if n < self.min_overlap || den_u == 0.0 || den_v == 0.0 {
            return None;
        }
        // Clamp floating-point drift into the mathematical range.
        Some((num / (den_u.sqrt() * den_v.sqrt())).clamp(-1.0, 1.0))
    }

    fn name(&self) -> &'static str {
        "ratings-pearson"
    }
}

impl<M: Borrow<RatingMatrix>> BulkUserSimilarity for RatingsSimilarity<M> {
    fn similarities_from(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.bulk_kernel(u, num_users, scratch, out, false);
    }

    fn similarities_above(
        &self,
        u: UserId,
        num_users: u32,
        scratch: &mut SimScratch,
        out: &mut Vec<(UserId, f64)>,
    ) {
        self.bulk_kernel(u, num_users, scratch, out, true);
    }

    /// Pearson is bitwise symmetric: swapping the users swaps the factors
    /// of every product in Equation 2, and IEEE multiplication commutes.
    fn is_symmetric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::{ItemId, RatingMatrixBuilder};

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn perfectly_aligned_users_score_one() {
        // Both users deviate from their own means in the same direction.
        let m = matrix(&[
            (0, 0, 1.0),
            (0, 1, 3.0),
            (0, 2, 5.0),
            (1, 0, 2.0),
            (1, 1, 3.0),
            (1, 2, 4.0),
        ]);
        let s = RatingsSimilarity::new(&m);
        let r = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn anti_aligned_users_score_minus_one() {
        let m = matrix(&[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0), (1, 1, 1.0)]);
        let s = RatingsSimilarity::new(&m);
        let r = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!((r + 1.0).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn hand_computed_correlation() {
        // u0 ratings on shared items: [4, 2, 5]; u1: [5, 1, 4].
        // Extra unshared ratings shift the means.
        let m = matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (0, 2, 5.0),
            (0, 3, 1.0), // unshared
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 2, 4.0),
            (1, 4, 2.0), // unshared
        ]);
        let s = RatingsSimilarity::new(&m);
        let got = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        // Hand computation with µ0 = 3, µ1 = 3:
        // num = (1)(2) + (−1)(−2) + (2)(1) = 6
        // den = sqrt(1+1+4) * sqrt(4+4+1) = sqrt(6)*3
        let expected = 6.0 / (6.0f64.sqrt() * 3.0);
        assert!((got - expected).abs() < 1e-12, "got {got}, want {expected}");
    }

    #[test]
    fn symmetric() {
        let m = matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (0, 5, 3.0),
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 7, 2.0),
        ]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(
            s.similarity(UserId::new(0), UserId::new(1)),
            s.similarity(UserId::new(1), UserId::new(0))
        );
    }

    #[test]
    fn too_little_overlap_is_undefined() {
        let m = matrix(&[(0, 0, 4.0), (0, 1, 2.0), (1, 0, 5.0), (1, 2, 3.0)]);
        let s = RatingsSimilarity::new(&m);
        // Exactly one co-rated item (< default min_overlap of 2).
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn min_overlap_is_configurable_but_variance_still_required() {
        let m = matrix(&[(0, 0, 4.0), (0, 1, 2.0), (1, 0, 5.0), (1, 1, 3.0)]);
        // min_overlap = 1 still yields a defined score here (2 co-rated).
        let s = RatingsSimilarity::new(&m).with_min_overlap(1);
        assert!(s.similarity(UserId::new(0), UserId::new(1)).is_some());
    }

    #[test]
    fn zero_variance_is_undefined() {
        // u1 rates everything 3 — no deviation, denominator vanishes.
        let m = matrix(&[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 3.0), (1, 1, 3.0)]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn zero_variance_over_corated_subset_only() {
        // u1 varies globally but is flat on the co-rated items; the
        // co-rated deviations are (3−µ1) each, µ1 = 3 ⇒ both 0.
        let m = matrix(&[
            (0, 0, 1.0),
            (0, 1, 5.0),
            (1, 0, 3.0),
            (1, 1, 3.0),
            (1, 2, 5.0),
            (1, 3, 1.0),
        ]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn users_without_ratings_are_undefined() {
        let m = matrix(&[(0, 0, 4.0), (0, 1, 2.0)]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(7)), None);
    }

    #[test]
    fn self_similarity_is_one() {
        let m = matrix(&[(0, 0, 4.0)]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(0)), Some(1.0));
    }

    #[test]
    fn self_similarity_of_rating_less_users_is_undefined() {
        // Regression: the self-pair short-circuit used to answer 1.0
        // before checking the user exists in the rating relation.
        let mut b = fairrec_types::RatingMatrixBuilder::new().reserve_ids(3, 1);
        b.add_raw(UserId::new(0), ItemId::new(0), 4.0).unwrap();
        let m = b.build().unwrap();
        let s = RatingsSimilarity::new(&m);
        // u1 is in the universe but never rated anything; u7 is out of
        // the universe entirely. Neither has a defined self-similarity.
        assert_eq!(s.similarity(UserId::new(1), UserId::new(1)), None);
        assert_eq!(s.similarity(UserId::new(7), UserId::new(7)), None);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(0)), Some(1.0));
    }

    fn bulk_from(s: &RatingsSimilarity<&RatingMatrix>, u: u32, n: u32) -> Vec<(UserId, f64)> {
        let mut scratch = SimScratch::new();
        let mut out = Vec::new();
        s.similarities_from(UserId::new(u), n, &mut scratch, &mut out);
        out
    }

    #[test]
    fn bulk_kernel_matches_per_pair_bitwise() {
        let m = matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (0, 2, 5.0),
            (0, 3, 1.0),
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 2, 4.0),
            (1, 4, 2.0),
            (2, 0, 3.0),
            (2, 1, 3.0),
            (3, 5, 2.0), // no overlap with u0
        ]);
        let s = RatingsSimilarity::new(&m);
        let bulk = bulk_from(&s, 0, m.num_users());
        let per_pair: Vec<(UserId, f64)> = (0..m.num_users())
            .map(UserId::new)
            .filter(|&v| v != UserId::new(0))
            .filter_map(|v| s.similarity(UserId::new(0), v).map(|x| (v, x)))
            .collect();
        assert_eq!(bulk.len(), per_pair.len());
        for (b, p) in bulk.iter().zip(&per_pair) {
            assert_eq!(b.0, p.0);
            assert_eq!(b.1.to_bits(), p.1.to_bits(), "candidate {}", b.0);
        }
        // u2 co-rates two items but with zero variance; u3 has no
        // overlap — neither may appear.
        assert!(bulk.iter().all(|&(v, _)| v == UserId::new(1)));
    }

    #[test]
    fn bulk_kernel_respects_min_overlap_and_universe() {
        let m = matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (1, 0, 5.0),
            (1, 1, 3.0),
            (2, 0, 1.0),
            (2, 5, 3.0), // off-overlap rating so u2's deviation is nonzero
        ]);
        // min_overlap 1 admits the single-item candidate u2.
        let loose = RatingsSimilarity::new(&m).with_min_overlap(1);
        assert_eq!(bulk_from(&loose, 0, m.num_users()).len(), 2);
        let strict = RatingsSimilarity::new(&m).with_min_overlap(2);
        assert_eq!(bulk_from(&strict, 0, m.num_users()).len(), 1);
        // A truncated universe drops candidates past it.
        assert!(bulk_from(&loose, 0, 1).is_empty());
        // A rating-less source yields nothing.
        assert!(bulk_from(&loose, 99, m.num_users()).is_empty());
    }

    #[test]
    fn above_only_kernel_is_the_upper_triangle() {
        let m = matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (1, 0, 5.0),
            (1, 1, 3.0),
            (2, 0, 1.0),
            (2, 1, 4.0),
        ]);
        let s = RatingsSimilarity::new(&m);
        let mut scratch = SimScratch::new();
        let mut above = Vec::new();
        s.similarities_above(UserId::new(1), m.num_users(), &mut scratch, &mut above);
        let full = bulk_from(&s, 1, m.num_users());
        let expected: Vec<(UserId, f64)> = full
            .into_iter()
            .filter(|&(v, _)| v > UserId::new(1))
            .collect();
        assert_eq!(above, expected);
        assert!(above.iter().all(|&(v, _)| v == UserId::new(2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fairrec_types::{ItemId, RatingMatrixBuilder};
    use proptest::prelude::*;

    fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
        proptest::collection::btree_map((0u32..12, 0u32..20), 1.0f64..=5.0, 0..120).prop_map(
            |cells| {
                let mut b = RatingMatrixBuilder::new();
                for ((u, i), s) in cells {
                    b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
                }
                b.build().unwrap()
            },
        )
    }

    proptest! {
        #[test]
        fn pearson_in_range_and_symmetric(m in arb_matrix(), a in 0u32..12, b in 0u32..12) {
            let s = RatingsSimilarity::new(&m);
            let (ua, ub) = (UserId::new(a), UserId::new(b));
            let ab = s.similarity(ua, ub);
            prop_assert_eq!(ab, s.similarity(ub, ua));
            if let Some(r) = ab {
                prop_assert!((-1.0..=1.0).contains(&r), "out of range: {}", r);
            }
        }
    }
}
