//! Ratings-based similarity: Pearson correlation (Equation 2).
//!
//! *"If two users have rated documents in a similar way, then we can say
//! that they are similar, since they share the same interests."* The
//! implementation follows Equation 2 with one widely-used reading: the
//! user means `µ_u` are the means over **all** of a user's ratings (the
//! paper writes "the mean of the ratings of u"), not just the co-rated
//! subset, so a user's notion of "above average" is stable across pairs.
//!
//! Undefined cases return `None` rather than an arbitrary number:
//! * fewer than `min_overlap` co-rated items (default 2 — one shared item
//!   always correlates perfectly and is pure noise),
//! * zero variance on the co-rated items for either user (the denominator
//!   of Equation 2 vanishes).

use crate::UserSimilarity;
use fairrec_types::{RatingMatrix, UserId};
use std::borrow::Borrow;

/// Pearson similarity over a [`RatingMatrix`].
///
/// Generic over how the matrix is held: `&RatingMatrix` for scoped use
/// (the historical API — all existing call sites infer it), or an owning
/// handle such as `Arc<RatingMatrix>` so long-lived components like
/// `RecommenderEngine` can build the measure **once** and share it across
/// threads without self-referential borrows.
#[derive(Debug, Clone)]
pub struct RatingsSimilarity<M = std::sync::Arc<RatingMatrix>> {
    matrix: M,
    min_overlap: usize,
}

impl<M: Borrow<RatingMatrix>> RatingsSimilarity<M> {
    /// Pearson similarity with the default minimum overlap of 2 co-rated
    /// items.
    pub fn new(matrix: M) -> Self {
        Self {
            matrix,
            min_overlap: 2,
        }
    }

    /// Overrides the minimum number of co-rated items (values below 1 are
    /// clamped to 1).
    pub fn with_min_overlap(mut self, min_overlap: usize) -> Self {
        self.min_overlap = min_overlap.max(1);
        self
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &RatingMatrix {
        self.matrix.borrow()
    }
}

impl<M: Borrow<RatingMatrix>> UserSimilarity for RatingsSimilarity<M> {
    fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
        if u == v {
            // Self-similarity is trivially 1 but never useful: peers
            // exclude the user anyway.
            return Some(1.0);
        }
        let matrix = self.matrix.borrow();
        let (mu, mv) = (matrix.user_mean(u)?, matrix.user_mean(v)?);
        let mut n = 0usize;
        let (mut num, mut den_u, mut den_v) = (0.0f64, 0.0f64, 0.0f64);
        for (_, ru, rv) in matrix.co_ratings(u, v) {
            let (du, dv) = (ru - mu, rv - mv);
            num += du * dv;
            den_u += du * du;
            den_v += dv * dv;
            n += 1;
        }
        if n < self.min_overlap || den_u == 0.0 || den_v == 0.0 {
            return None;
        }
        // Clamp floating-point drift into the mathematical range.
        Some((num / (den_u.sqrt() * den_v.sqrt())).clamp(-1.0, 1.0))
    }

    fn name(&self) -> &'static str {
        "ratings-pearson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::{ItemId, RatingMatrixBuilder};

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn perfectly_aligned_users_score_one() {
        // Both users deviate from their own means in the same direction.
        let m = matrix(&[
            (0, 0, 1.0),
            (0, 1, 3.0),
            (0, 2, 5.0),
            (1, 0, 2.0),
            (1, 1, 3.0),
            (1, 2, 4.0),
        ]);
        let s = RatingsSimilarity::new(&m);
        let r = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn anti_aligned_users_score_minus_one() {
        let m = matrix(&[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0), (1, 1, 1.0)]);
        let s = RatingsSimilarity::new(&m);
        let r = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        assert!((r + 1.0).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn hand_computed_correlation() {
        // u0 ratings on shared items: [4, 2, 5]; u1: [5, 1, 4].
        // Extra unshared ratings shift the means.
        let m = matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (0, 2, 5.0),
            (0, 3, 1.0), // unshared
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 2, 4.0),
            (1, 4, 2.0), // unshared
        ]);
        let s = RatingsSimilarity::new(&m);
        let got = s.similarity(UserId::new(0), UserId::new(1)).unwrap();
        // Hand computation with µ0 = 3, µ1 = 3:
        // num = (1)(2) + (−1)(−2) + (2)(1) = 6
        // den = sqrt(1+1+4) * sqrt(4+4+1) = sqrt(6)*3
        let expected = 6.0 / (6.0f64.sqrt() * 3.0);
        assert!((got - expected).abs() < 1e-12, "got {got}, want {expected}");
    }

    #[test]
    fn symmetric() {
        let m = matrix(&[
            (0, 0, 4.0),
            (0, 1, 2.0),
            (0, 5, 3.0),
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 7, 2.0),
        ]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(
            s.similarity(UserId::new(0), UserId::new(1)),
            s.similarity(UserId::new(1), UserId::new(0))
        );
    }

    #[test]
    fn too_little_overlap_is_undefined() {
        let m = matrix(&[(0, 0, 4.0), (0, 1, 2.0), (1, 0, 5.0), (1, 2, 3.0)]);
        let s = RatingsSimilarity::new(&m);
        // Exactly one co-rated item (< default min_overlap of 2).
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn min_overlap_is_configurable_but_variance_still_required() {
        let m = matrix(&[(0, 0, 4.0), (0, 1, 2.0), (1, 0, 5.0), (1, 1, 3.0)]);
        // min_overlap = 1 still yields a defined score here (2 co-rated).
        let s = RatingsSimilarity::new(&m).with_min_overlap(1);
        assert!(s.similarity(UserId::new(0), UserId::new(1)).is_some());
    }

    #[test]
    fn zero_variance_is_undefined() {
        // u1 rates everything 3 — no deviation, denominator vanishes.
        let m = matrix(&[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 3.0), (1, 1, 3.0)]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn zero_variance_over_corated_subset_only() {
        // u1 varies globally but is flat on the co-rated items; the
        // co-rated deviations are (3−µ1) each, µ1 = 3 ⇒ both 0.
        let m = matrix(&[
            (0, 0, 1.0),
            (0, 1, 5.0),
            (1, 0, 3.0),
            (1, 1, 3.0),
            (1, 2, 5.0),
            (1, 3, 1.0),
        ]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(1)), None);
    }

    #[test]
    fn users_without_ratings_are_undefined() {
        let m = matrix(&[(0, 0, 4.0), (0, 1, 2.0)]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(7)), None);
    }

    #[test]
    fn self_similarity_is_one() {
        let m = matrix(&[(0, 0, 4.0)]);
        let s = RatingsSimilarity::new(&m);
        assert_eq!(s.similarity(UserId::new(0), UserId::new(0)), Some(1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fairrec_types::{ItemId, RatingMatrixBuilder};
    use proptest::prelude::*;

    fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
        proptest::collection::btree_map((0u32..12, 0u32..20), 1.0f64..=5.0, 0..120).prop_map(
            |cells| {
                let mut b = RatingMatrixBuilder::new();
                for ((u, i), s) in cells {
                    b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
                }
                b.build().unwrap()
            },
        )
    }

    proptest! {
        #[test]
        fn pearson_in_range_and_symmetric(m in arb_matrix(), a in 0u32..12, b in 0u32..12) {
            let s = RatingsSimilarity::new(&m);
            let (ua, ub) = (UserId::new(a), UserId::new(b));
            let ab = s.similarity(ua, ub);
            prop_assert_eq!(ab, s.similarity(ub, ua));
            if let Some(r) = ab {
                prop_assert!((-1.0..=1.0).contains(&r), "out of range: {}", r);
            }
        }
    }
}
