//! Algorithm 1 — the fairness-aware greedy heuristic — and the plain
//! top-z baseline.
//!
//! Algorithm 1, verbatim from the paper: starting from `D = ∅`, *"we
//! incrementally construct `D` by selecting, for each pair of users `u_x`
//! and `u_y`, the item in `A_{u_y}` with the maximum relevance score for
//! `u_x`"*, looping over all ordered pairs until `|D| = z`.
//!
//! Two readings are pinned down here (the pseudo-code leaves them
//! implicit):
//!
//! * `D = D ∪ i` is **set** insertion. To guarantee progress, the pairwise
//!   argmax skips items already in `D`; if every item of `A_{u_y}` is
//!   already selected, the pair contributes nothing this round.
//! * If a whole sweep over all pairs adds nothing (all `A_u` lists
//!   exhausted) the algorithm stops early with `|D| < z` — there is
//!   nothing fair left to add; callers may pad with
//!   [`plain_top_z`]-style filler if they need exactly `z` items (the
//!   engine crate does exactly that).
//!
//! Ties in the argmax break toward the *smaller pool position* so runs are
//! deterministic.

use crate::pool::CandidatePool;
use fairrec_types::ItemId;

/// Why an item entered the selection — kept for explanations and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionStep {
    /// Pool position of the selected item.
    pub position: usize,
    /// Member index `x` whose relevance ranked the pick.
    pub for_member: usize,
    /// Member index `y` from whose top-k list `A_{u_y}` the item came.
    pub from_list_of: usize,
    /// Sweep number (0-based) over the pair loop.
    pub round: usize,
}

/// An ordered selection of pool positions with provenance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selection {
    /// Selected pool positions, in selection order.
    pub positions: Vec<usize>,
    /// Provenance per selected position (absent for baselines that have
    /// no pairwise provenance).
    pub steps: Vec<SelectionStep>,
}

impl Selection {
    /// Resolves pool positions into item ids, in selection order.
    pub fn items(&self, pool: &CandidatePool) -> Vec<ItemId> {
        self.positions.iter().map(|&j| pool.items()[j]).collect()
    }

    /// Number of selected items `|D|`.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Algorithm 1: fairness-aware greedy selection of `z` items.
///
/// `k` is the length of the per-member lists `A_u` (the same `k` the
/// fairness definition uses). `z = 0` returns an empty selection.
pub fn algorithm1(pool: &CandidatePool, z: usize, k: usize) -> Selection {
    let n = pool.num_members();
    let m = pool.num_items();
    let mut selection = Selection::default();
    if z == 0 || m == 0 {
        return selection;
    }

    // A_u for every member, as pool positions (best first).
    let top_lists: Vec<Vec<usize>> = (0..n).map(|u| pool.top_k_positions(u, k)).collect();
    let mut selected = vec![false; m];
    let z = z.min(m);

    let mut round = 0usize;
    'outer: while selection.len() < z {
        let mut progressed = false;
        // Index loops kept deliberately: they mirror Algorithm 1's
        // `for x … for y` pseudo-code line by line.
        #[allow(clippy::needless_range_loop)]
        for x in 0..n {
            for y in 0..n {
                if x == y {
                    continue;
                }
                // Item in A_{u_y} with max relevance(u_x, ·), skipping
                // already-selected positions; undefined relevance ranks
                // below any defined one.
                let mut best: Option<(usize, Option<f64>)> = None;
                for &j in &top_lists[y] {
                    if selected[j] {
                        continue;
                    }
                    let score = pool.member_relevance(x, j);
                    let better = match &best {
                        None => true,
                        Some((bj, bscore)) => match (score, *bscore) {
                            (Some(s), Some(b)) => s > b || (s == b && j < *bj),
                            (Some(_), None) => true,
                            (None, Some(_)) => false,
                            (None, None) => j < *bj,
                        },
                    };
                    if better {
                        best = Some((j, score));
                    }
                }
                if let Some((j, _)) = best {
                    selected[j] = true;
                    selection.positions.push(j);
                    selection.steps.push(SelectionStep {
                        position: j,
                        for_member: x,
                        from_list_of: y,
                        round,
                    });
                    progressed = true;
                    if selection.len() == z {
                        break 'outer;
                    }
                }
            }
        }
        if !progressed {
            break; // every A_u exhausted — nothing fair left to add
        }
        round += 1;
    }
    selection
}

/// Baseline without fairness: the `z` items with the highest group
/// relevance (§III-B's plain group top-k), ties by ascending position.
pub fn plain_top_z(pool: &CandidatePool, z: usize) -> Selection {
    let mut order: Vec<usize> = (0..pool.num_items()).collect();
    order.sort_by(|&a, &b| {
        pool.group_relevance(b)
            .partial_cmp(&pool.group_relevance(a))
            .expect("group scores are finite")
            .then(a.cmp(&b))
    });
    order.truncate(z);
    Selection {
        positions: order,
        steps: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::FairnessEvaluator;
    use fairrec_types::UserId;

    fn pool(member_scores: Vec<Vec<Option<f64>>>, group_scores: Vec<f64>) -> CandidatePool {
        let n_items = group_scores.len();
        CandidatePool::from_parts(
            (0..member_scores.len() as u32).map(UserId::new).collect(),
            (0..n_items as u32).map(ItemId::new).collect(),
            member_scores,
            group_scores,
        )
    }

    /// 2 members with opposite tastes over 4 items.
    fn polarized() -> CandidatePool {
        pool(
            vec![
                vec![Some(5.0), Some(4.5), Some(1.0), Some(1.5)],
                vec![Some(1.0), Some(1.5), Some(5.0), Some(4.5)],
            ],
            vec![3.0, 3.0, 3.0, 3.0],
        )
    }

    #[test]
    fn first_round_covers_both_members() {
        let p = polarized();
        let sel = algorithm1(&p, 2, 2);
        assert_eq!(sel.len(), 2);
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        assert_eq!(ev.fairness(&sel.positions), 1.0);
        // Pair (x=0, y=1) first: from member 1's list {2, 3}, member 0
        // prefers 3 (1.5 > 1.0). Then (x=1, y=0): from member 0's list
        // {0, 1}, member 1 prefers 1.
        assert_eq!(sel.positions, vec![3, 1]);
        assert_eq!(sel.steps[0].for_member, 0);
        assert_eq!(sel.steps[0].from_list_of, 1);
        assert_eq!(sel.steps[0].round, 0);
    }

    #[test]
    fn proposition_1_fairness_is_one_when_z_ge_group() {
        // Proposition 1 for the polarized pool at several z ≥ |G| = 2.
        let p = polarized();
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        for z in 2..=4 {
            let sel = algorithm1(&p, z, 2);
            assert_eq!(
                ev.fairness(&sel.positions),
                1.0,
                "Proposition 1 violated at z={z}"
            );
        }
    }

    #[test]
    fn stops_at_z_items() {
        let p = polarized();
        for z in 0..=6 {
            let sel = algorithm1(&p, z, 4);
            assert_eq!(sel.len(), z.min(4), "z={z}");
            // No duplicates.
            let mut ps = sel.positions.clone();
            ps.sort_unstable();
            ps.dedup();
            assert_eq!(ps.len(), sel.len());
        }
    }

    #[test]
    fn exhausted_lists_stop_early() {
        // k=1 ⇒ A_u lists hold one item each; both members love item 0.
        let p = pool(
            vec![vec![Some(5.0), Some(1.0)], vec![Some(5.0), Some(2.0)]],
            vec![4.0, 1.5],
        );
        let sel = algorithm1(&p, 2, 1);
        // Both lists = {0}; after selecting it nothing remains.
        assert_eq!(sel.positions, vec![0]);
    }

    #[test]
    fn singleton_group_has_no_pairs() {
        let p = pool(vec![vec![Some(5.0), Some(4.0)]], vec![5.0, 4.0]);
        let sel = algorithm1(&p, 2, 2);
        assert!(
            sel.is_empty(),
            "no (x, y) pairs exist for |G| = 1, Algorithm 1 selects nothing"
        );
    }

    #[test]
    fn undefined_relevance_ranks_below_defined() {
        // Member 0 cannot score item 2; item 2 is in member 1's list.
        let p = pool(
            vec![
                vec![Some(5.0), Some(2.0), None],
                vec![Some(1.0), Some(4.0), Some(5.0)],
            ],
            vec![3.0, 3.0, 3.0],
        );
        let sel = algorithm1(&p, 1, 2);
        // Pair (0,1): A_1 = {2, 1}; member 0 prefers 1 (2.0) over 2 (None).
        assert_eq!(sel.positions, vec![1]);
    }

    #[test]
    fn plain_top_z_orders_by_group_relevance() {
        let p = pool(
            vec![vec![Some(1.0), Some(2.0), Some(3.0), Some(2.0)]],
            vec![2.0, 4.0, 3.0, 4.0],
        );
        let sel = plain_top_z(&p, 3);
        assert_eq!(sel.positions, vec![1, 3, 2]); // 4.0, 4.0 (tie → id), 3.0
        assert!(sel.steps.is_empty());
        let all = plain_top_z(&p, 99);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn greedy_fairness_never_below_plain_top_z() {
        // The polarized case where plain top-z is unfair: group scores
        // favour member 0's items.
        let p = pool(
            vec![
                vec![Some(5.0), Some(4.8), Some(1.0), Some(1.2)],
                vec![Some(1.0), Some(1.2), Some(4.9), Some(4.7)],
            ],
            vec![4.0, 3.9, 3.0, 2.9],
        );
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        let greedy = algorithm1(&p, 2, 2);
        let plain = plain_top_z(&p, 2);
        assert!((ev.fairness(&plain.positions) - 0.5).abs() < 1e-12);
        assert_eq!(ev.fairness(&greedy.positions), 1.0);
    }

    #[test]
    fn items_resolves_positions() {
        let p = polarized();
        let sel = algorithm1(&p, 2, 2);
        let items = sel.items(&p);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], p.items()[sel.positions[0]]);
    }
}
