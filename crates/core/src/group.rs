//! Caregiver groups.

use fairrec_types::{FairrecError, GroupId, Result, UserId};

/// A caregiver's group of patients `G ⊆ U` (§III-B).
///
/// Members are stored sorted and de-duplicated; the paper's model never
/// depends on member order, and a canonical order makes every downstream
/// computation deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    id: GroupId,
    members: Vec<UserId>,
}

impl Group {
    /// Creates a group, sorting and de-duplicating `members`.
    ///
    /// # Errors
    /// [`FairrecError::EmptyGroup`] when no members are given.
    pub fn new(id: GroupId, members: impl IntoIterator<Item = UserId>) -> Result<Self> {
        let mut members: Vec<UserId> = members.into_iter().collect();
        if members.is_empty() {
            return Err(FairrecError::EmptyGroup);
        }
        members.sort_unstable();
        members.dedup();
        Ok(Self { id, members })
    }

    /// The group id.
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// The members, sorted ascending.
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// Number of members `|G|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Groups are never empty; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `user` belongs to the group (binary search).
    pub fn contains(&self, user: UserId) -> bool {
        self.members.binary_search(&user).is_ok()
    }

    /// Position of `user` within the sorted member list.
    pub fn member_index(&self, user: UserId) -> Option<usize> {
        self.members.binary_search(&user).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_sorted_and_deduplicated() {
        let g = Group::new(
            GroupId::new(0),
            [
                UserId::new(5),
                UserId::new(1),
                UserId::new(5),
                UserId::new(3),
            ],
        )
        .unwrap();
        assert_eq!(
            g.members(),
            &[UserId::new(1), UserId::new(3), UserId::new(5)]
        );
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_groups_are_rejected() {
        assert_eq!(
            Group::new(GroupId::new(0), []).unwrap_err(),
            FairrecError::EmptyGroup
        );
    }

    #[test]
    fn membership_and_index() {
        let g = Group::new(GroupId::new(7), [UserId::new(2), UserId::new(9)]).unwrap();
        assert_eq!(g.id(), GroupId::new(7));
        assert!(g.contains(UserId::new(9)));
        assert!(!g.contains(UserId::new(3)));
        assert_eq!(g.member_index(UserId::new(2)), Some(0));
        assert_eq!(g.member_index(UserId::new(9)), Some(1));
        assert_eq!(g.member_index(UserId::new(4)), None);
    }

    #[test]
    fn singleton_group_is_valid() {
        let g = Group::new(GroupId::new(1), [UserId::new(0)]).unwrap();
        assert_eq!(g.len(), 1);
    }
}
