//! Local-search refinement (extension).
//!
//! The paper points at lower-complexity subset heuristics (its ref. \[6\],
//! p-dispersion heuristics) without exploring them further. This module
//! implements the classic *swap* improvement on top of any starting
//! package: repeatedly try replacing one selected item with one unselected
//! candidate, accept the best strictly-improving swap, stop at a local
//! optimum or after `max_passes` sweeps.
//!
//! Cost per pass is `O(z · (m − z))` evaluations of the value function —
//! polynomial where the exact search is exponential — and the ablation
//! benches (`fairrec-bench`, experiment A5) quantify how much of the
//! greedy-to-exact value gap the swaps recover.

use crate::fairness::FairnessEvaluator;
use crate::greedy::Selection;
use crate::pool::CandidatePool;

/// Result of the swap refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapOutcome {
    /// The refined selection (positions in ascending order).
    pub selection: Selection,
    /// `value(G, D)` after refinement.
    pub value: f64,
    /// Number of accepted swaps.
    pub swaps: usize,
    /// Whether a local optimum was certified (no improving swap exists),
    /// as opposed to stopping at the pass budget.
    pub converged: bool,
}

/// Refines `start` by best-improvement swaps under `value(G, D)`.
pub fn swap_refine(
    pool: &CandidatePool,
    evaluator: &FairnessEvaluator,
    start: &Selection,
    max_passes: usize,
) -> SwapOutcome {
    let m = pool.num_items();
    let mut selected: Vec<usize> = start.positions.clone();
    selected.sort_unstable();
    selected.dedup();
    let mut in_set = vec![false; m];
    for &j in &selected {
        in_set[j] = true;
    }
    let mut value = evaluator.value(pool, &selected);
    let mut swaps = 0usize;
    let mut converged = false;

    for _ in 0..max_passes {
        let mut best_gain = 0.0f64;
        let mut best_swap: Option<(usize, usize)> = None; // (slot, candidate)
        for slot in 0..selected.len() {
            let removed = selected[slot];
            // `candidate` is both a pool position and the `in_set` index.
            #[allow(clippy::needless_range_loop)]
            for candidate in 0..m {
                if in_set[candidate] {
                    continue;
                }
                selected[slot] = candidate;
                let v = evaluator.value(pool, &selected);
                let gain = v - value;
                if gain > best_gain + 1e-15 {
                    best_gain = gain;
                    best_swap = Some((slot, candidate));
                }
            }
            selected[slot] = removed;
        }
        match best_swap {
            Some((slot, candidate)) => {
                in_set[selected[slot]] = false;
                in_set[candidate] = true;
                selected[slot] = candidate;
                value += best_gain;
                swaps += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }
    selected.sort_unstable();
    // Re-evaluate to avoid accumulated drift from the incremental gains.
    let value = evaluator.value(pool, &selected);
    SwapOutcome {
        selection: Selection {
            positions: selected,
            steps: Vec::new(),
        },
        value,
        swaps,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::brute_force;
    use crate::greedy::{algorithm1, plain_top_z};
    use fairrec_types::{ItemId, UserId};

    fn pool(member_scores: Vec<Vec<Option<f64>>>, group_scores: Vec<f64>) -> CandidatePool {
        let n_items = group_scores.len();
        CandidatePool::from_parts(
            (0..member_scores.len() as u32).map(UserId::new).collect(),
            (0..n_items as u32).map(ItemId::new).collect(),
            member_scores,
            group_scores,
        )
    }

    fn polarized() -> CandidatePool {
        pool(
            vec![
                vec![Some(4.9), Some(4.7), Some(1.1), Some(1.3), Some(3.0)],
                vec![Some(1.2), Some(1.4), Some(4.8), Some(4.6), Some(3.1)],
            ],
            vec![3.9, 3.8, 3.7, 3.6, 3.5],
        )
    }

    #[test]
    fn improves_an_unfair_start_to_the_optimum() {
        let p = polarized();
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        // plain top-2 = {0, 1}: fairness ½.
        let start = plain_top_z(&p, 2);
        let refined = swap_refine(&p, &ev, &start, 10);
        let exact = brute_force(&p, &ev, 2);
        assert!(refined.swaps > 0);
        assert!(refined.converged);
        assert!((refined.value - exact.value).abs() < 1e-12);
    }

    #[test]
    fn never_decreases_value() {
        let p = polarized();
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        for z in 1..=4 {
            let start = algorithm1(&p, z, 2);
            let before = ev.value(&p, &start.positions);
            let refined = swap_refine(&p, &ev, &start, 10);
            assert!(refined.value >= before - 1e-12, "z={z}");
        }
    }

    #[test]
    fn local_optimum_is_stable() {
        let p = polarized();
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        let start = algorithm1(&p, 2, 2);
        let once = swap_refine(&p, &ev, &start, 10);
        let twice = swap_refine(&p, &ev, &once.selection, 10);
        assert_eq!(once.selection.positions, twice.selection.positions);
        assert_eq!(twice.swaps, 0);
        assert!(twice.converged);
    }

    #[test]
    fn pass_budget_is_respected() {
        let p = polarized();
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        let start = plain_top_z(&p, 2);
        let refined = swap_refine(&p, &ev, &start, 0);
        assert_eq!(refined.swaps, 0);
        assert!(!refined.converged);
        assert_eq!(
            {
                let mut s = start.positions.clone();
                s.sort_unstable();
                s
            },
            refined.selection.positions
        );
    }

    #[test]
    fn empty_start_stays_empty() {
        let p = polarized();
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        let refined = swap_refine(&p, &ev, &Selection::default(), 5);
        assert!(refined.selection.is_empty());
        assert_eq!(refined.value, 0.0);
        assert!(refined.converged);
    }
}
