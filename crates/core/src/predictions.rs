//! Group prediction phase (§III-B and MapReduce Jobs 1–3, in memory).
//!
//! Given a rating matrix, a similarity measure, a peer selector, and a
//! group, [`compute_group_predictions`] produces everything the selection
//! algorithms need:
//!
//! 1. candidates — items **no** group member has rated (Definition 2's
//!    precondition `∀u ∈ G, ∄rating(u, i)`),
//! 2. per-member relevance predictions (Equation 1) over the candidates,
//! 3. aggregated group relevance per candidate (Definition 2).
//!
//! This function is also the reference implementation that the MapReduce
//! path (`fairrec-mapreduce`) is verified against.

use crate::aggregate::{Aggregation, MissingPolicy};
use crate::group::Group;
use crate::relevance::RelevancePredictor;
use fairrec_similarity::{BulkUserSimilarity, PeerIndex, PeerSelector};
use fairrec_types::{
    ItemId, Parallelism, RatingMatrix, RatingsRead, Relevance, Result, ScoredItem, TopK, UserId,
};

/// Knobs for the prediction phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupPredictionConfig {
    /// Definition 2 aggregation (default: average).
    pub aggregation: Aggregation,
    /// Handling of undefined member predictions (default: skip).
    pub missing: MissingPolicy,
    /// How per-member Equation 1 scoring fans out across candidates
    /// (default: the ambient rayon pool). Every mode yields bitwise
    /// identical results; `Sequential` exists to pin determinism by
    /// construction and to avoid fan-out overhead on tiny inputs.
    pub parallelism: Parallelism,
}

/// Per-member and aggregated predictions over a group's candidate items.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPredictions {
    members: Vec<UserId>,
    items: Vec<ItemId>,
    /// `member_scores[m][j]` = `relevance(members[m], items[j])`.
    member_scores: Vec<Vec<Option<Relevance>>>,
    /// `group_scores[j]` = `relevanceG(G, items[j])`.
    group_scores: Vec<Option<Relevance>>,
}

impl GroupPredictions {
    /// Assembles predictions from raw parts (used by the MapReduce path).
    ///
    /// # Panics
    /// Panics when the shapes disagree — this is an internal assembly
    /// error, not input data.
    pub fn from_parts(
        members: Vec<UserId>,
        items: Vec<ItemId>,
        member_scores: Vec<Vec<Option<Relevance>>>,
        group_scores: Vec<Option<Relevance>>,
    ) -> Self {
        assert_eq!(member_scores.len(), members.len(), "one row per member");
        for row in &member_scores {
            assert_eq!(row.len(), items.len(), "one score slot per item");
        }
        assert_eq!(group_scores.len(), items.len());
        Self {
            members,
            items,
            member_scores,
            group_scores,
        }
    }

    /// The group members, sorted.
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// The candidate items, sorted by id.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of candidates.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// `relevance(members[member_idx], items[item_idx])`.
    pub fn member_relevance(&self, member_idx: usize, item_idx: usize) -> Option<Relevance> {
        self.member_scores[member_idx][item_idx]
    }

    /// `relevanceG(G, items[item_idx])`.
    pub fn group_relevance(&self, item_idx: usize) -> Option<Relevance> {
        self.group_scores[item_idx]
    }

    /// The top-k list `A_u` of one member over the candidates.
    pub fn top_k_for_member(&self, member_idx: usize, k: usize) -> Vec<ScoredItem> {
        let mut top = TopK::new(k);
        for (j, score) in self.member_scores[member_idx].iter().enumerate() {
            if let Some(s) = score {
                top.push(self.items[j], *s);
            }
        }
        top.into_sorted_vec()
    }

    /// Group-level top-k (the plain §III-B recommendation, before any
    /// fairness treatment).
    pub fn top_k_for_group(&self, k: usize) -> Vec<ScoredItem> {
        let mut top = TopK::new(k);
        for (j, score) in self.group_scores.iter().enumerate() {
            if let Some(s) = score {
                top.push(self.items[j], *s);
            }
        }
        top.into_sorted_vec()
    }
}

/// Runs the full prediction phase for `group`.
///
/// This is the one-shot form: it builds a transient [`PeerIndex`] and
/// delegates to [`compute_group_predictions_with_index`], so every peer
/// computation — one-shot or cached — flows through the same path. A
/// serving loop should hold a long-lived index and call the `_with_index`
/// variant directly to amortise the peer scans across requests.
///
/// # Errors
/// Propagates [`fairrec_types::FairrecError::UnknownUser`] when a group
/// member lies outside the matrix's user space.
pub fn compute_group_predictions<S: BulkUserSimilarity + ?Sized>(
    matrix: &RatingMatrix,
    measure: &S,
    selector: &PeerSelector,
    group: &Group,
    config: GroupPredictionConfig,
) -> Result<GroupPredictions> {
    let index = PeerIndex::new(*selector, matrix.num_users());
    compute_group_predictions_with_index(matrix, measure, &index, group, config)
}

/// Runs the full prediction phase for `group`, serving Definition 1 from
/// a caller-held [`PeerIndex`] (cold entries are computed and memoized on
/// the way).
///
/// # Errors
/// Propagates [`fairrec_types::FairrecError::UnknownUser`] when a group
/// member lies outside the matrix's user space.
pub fn compute_group_predictions_with_index<S: BulkUserSimilarity + ?Sized>(
    matrix: &RatingMatrix,
    measure: &S,
    index: &PeerIndex,
    group: &Group,
    config: GroupPredictionConfig,
) -> Result<GroupPredictions> {
    for &m in group.members() {
        if m.raw() >= matrix.num_users() {
            return Err(fairrec_types::FairrecError::UnknownUser { user: m });
        }
    }
    compute_group_predictions_from_peers(
        matrix,
        index.group_peers(measure, group.members()),
        group,
        config,
    )
}

/// The Equation-1 + Definition-2 phase over **pre-resolved** peer lists —
/// the common tail every Definition-1 source funnels into: the monolithic
/// [`PeerIndex`] (via
/// [`compute_group_predictions_with_index`]) and the sharded index, whose
/// scatter-gather lookup lives in `fairrec-similarity` and hands the
/// merged per-member lists in here. `peers` must hold one
/// `(member, masked peer list)` entry per group member, in member order —
/// exactly what `group_peers` produces on either index. Generic over
/// [`RatingsRead`], so the sharded engine serves this tail through owner
/// routing alone — no monolithic shadow copy.
///
/// # Errors
/// Returns [`fairrec_types::FairrecError::UnknownUser`] when a peers
/// entry names a non-member, and
/// [`fairrec_types::FairrecError::InvalidParameter`] for other shape
/// defects (wrong length, wrong member order).
pub fn compute_group_predictions_from_peers<R: RatingsRead + ?Sized>(
    matrix: &R,
    peers: Vec<(UserId, Vec<(UserId, f64)>)>,
    group: &Group,
    config: GroupPredictionConfig,
) -> Result<GroupPredictions> {
    if peers.len() != group.members().len()
        || peers
            .iter()
            .zip(group.members())
            .any(|((who, _), &member)| *who != member)
    {
        if let Some(offender) = peers
            .iter()
            .map(|&(who, _)| who)
            .find(|who| !group.contains(*who))
        {
            return Err(fairrec_types::FairrecError::UnknownUser { user: offender });
        }
        // Every listed user is a member, so the defect is structural:
        // name the first out-of-place entry (or the length mismatch)
        // instead of blaming a fabricated user id.
        let detail = peers
            .iter()
            .zip(group.members())
            .find(|((who, _), &member)| *who != member)
            .map_or_else(
                || {
                    format!(
                        "got {} peer lists for {} members",
                        peers.len(),
                        group.members().len()
                    )
                },
                |((who, _), &member)| {
                    format!("peer list for {who} where member {member} was expected")
                },
            );
        return Err(fairrec_types::FairrecError::invalid_parameter(
            "peers",
            format!("peer lists must match the group members in order: {detail}"),
        ));
    }
    let items = matrix.unrated_by_all(group.members());
    let predictor = RelevancePredictor::new(matrix);

    let member_scores: Vec<Vec<Option<Relevance>>> = peers
        .into_iter()
        .map(|(_, peers)| predictor.predict_many_with(&peers, &items, config.parallelism))
        .collect();

    let group_scores = (0..items.len())
        .map(|j| {
            let column: Vec<Option<Relevance>> = member_scores.iter().map(|row| row[j]).collect();
            config.aggregation.aggregate(&column, config.missing)
        })
        .collect();

    Ok(GroupPredictions::from_parts(
        group.members().to_vec(),
        items,
        member_scores,
        group_scores,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_similarity::UserSimilarity;
    use fairrec_types::{GroupId, RatingMatrixBuilder};

    /// Similarity by lookup table over raw ids; defined everywhere.
    struct Uniform(f64);
    impl UserSimilarity for Uniform {
        fn similarity(&self, _: UserId, _: UserId) -> Option<f64> {
            Some(self.0)
        }
        fn name(&self) -> &'static str {
            "uniform"
        }
    }
    impl BulkUserSimilarity for Uniform {}

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    /// Two group members (u0, u1); outsiders u2, u3 rate candidate items
    /// i2 and i3; i0/i1 are rated inside the group and must be excluded.
    fn fixture() -> (RatingMatrix, Group) {
        let m = matrix(&[
            (0, 0, 5.0), // group member rating → i0 not a candidate
            (1, 1, 4.0), // group member rating → i1 not a candidate
            (2, 2, 5.0),
            (3, 2, 3.0),
            (2, 3, 2.0),
            (3, 0, 4.0),
            (2, 0, 1.0),
        ]);
        let g = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        (m, g)
    }

    #[test]
    fn candidates_exclude_group_rated_items() {
        let (m, g) = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let p = compute_group_predictions(
            &m,
            &Uniform(1.0),
            &sel,
            &g,
            GroupPredictionConfig::default(),
        )
        .unwrap();
        assert_eq!(p.items(), &[ItemId::new(2), ItemId::new(3)]);
        assert_eq!(p.members(), g.members());
    }

    #[test]
    fn member_scores_follow_equation_1() {
        let (m, g) = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let p = compute_group_predictions(
            &m,
            &Uniform(1.0),
            &sel,
            &g,
            GroupPredictionConfig::default(),
        )
        .unwrap();
        // With uniform similarity 1.0, Equation 1 is the plain mean of the
        // outsiders' ratings: i2 → (5+3)/2 = 4; i3 → 2.
        assert_eq!(p.member_relevance(0, 0), Some(4.0));
        assert_eq!(p.member_relevance(1, 0), Some(4.0));
        assert_eq!(p.member_relevance(0, 1), Some(2.0));
        // Group (average) scores match.
        assert_eq!(p.group_relevance(0), Some(4.0));
        assert_eq!(p.group_relevance(1), Some(2.0));
    }

    #[test]
    fn min_aggregation_takes_the_veto() {
        // Make members differ: u0's only peer is u2, u1's only peer is u3,
        // via a similarity defined per pair.
        struct PairSim;
        impl UserSimilarity for PairSim {
            fn similarity(&self, u: UserId, v: UserId) -> Option<f64> {
                match (u.raw(), v.raw()) {
                    (0, 2) | (2, 0) => Some(1.0),
                    (1, 3) | (3, 1) => Some(1.0),
                    _ => None,
                }
            }
            fn name(&self) -> &'static str {
                "pair"
            }
        }
        impl BulkUserSimilarity for PairSim {}
        let (m, g) = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let cfg = GroupPredictionConfig {
            aggregation: Aggregation::Min,
            missing: MissingPolicy::Skip,
            ..Default::default()
        };
        let p = compute_group_predictions(&m, &PairSim, &sel, &g, cfg).unwrap();
        // i2: u0 sees rating 5 (via u2), u1 sees 3 (via u3) ⇒ min = 3.
        assert_eq!(p.member_relevance(0, 0), Some(5.0));
        assert_eq!(p.member_relevance(1, 0), Some(3.0));
        assert_eq!(p.group_relevance(0), Some(3.0));
        // i3: only u2 rated ⇒ u1 has no prediction; Skip ⇒ min over {2.0}.
        assert_eq!(p.member_relevance(1, 1), None);
        assert_eq!(p.group_relevance(1), Some(2.0));
    }

    #[test]
    fn unknown_members_error() {
        let (m, _) = fixture();
        let g = Group::new(GroupId::new(0), [UserId::new(99)]).unwrap();
        let sel = PeerSelector::new(0.0).unwrap();
        let err = compute_group_predictions(
            &m,
            &Uniform(1.0),
            &sel,
            &g,
            GroupPredictionConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown user"));
    }

    #[test]
    fn per_member_and_group_top_k() {
        let (m, g) = fixture();
        let sel = PeerSelector::new(0.0).unwrap();
        let p = compute_group_predictions(
            &m,
            &Uniform(1.0),
            &sel,
            &g,
            GroupPredictionConfig::default(),
        )
        .unwrap();
        let top = p.top_k_for_member(0, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].item, ItemId::new(2));
        let gtop = p.top_k_for_group(5);
        assert_eq!(gtop.len(), 2);
        assert_eq!(gtop[0].item, ItemId::new(2));
    }

    #[test]
    #[should_panic(expected = "one row per member")]
    fn from_parts_validates_shapes() {
        GroupPredictions::from_parts(
            vec![UserId::new(0)],
            vec![ItemId::new(0)],
            vec![],
            vec![None],
        );
    }
}
