//! Exact package selection — the §VI brute-force baseline.
//!
//! *"A brute-force method to locate the z most fair recommendations … is
//! to first produce all (m choose z) possible combinations … and then pick
//! the one with the maximum value(G, D). The complexity of this process is
//! exponential."*
//!
//! The enumeration walks z-combinations of pool positions in lexicographic
//! order; each combination is scored as `fairness · Σ relevanceG` using the
//! precomputed satisfaction masks of [`FairnessEvaluator`], so the cost per
//! combination is `O(z)` word operations. On equal value the first
//! (lexicographically smallest) combination wins, making results
//! deterministic and order-independent.

use crate::fairness::FairnessEvaluator;
use crate::greedy::Selection;
use crate::pool::CandidatePool;

/// Outcome of the exact search.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceResult {
    /// The optimal package (positions sorted ascending — a combination).
    pub selection: Selection,
    /// `value(G, D*)` of the optimum.
    pub value: f64,
    /// Number of combinations evaluated: `C(m, z)`.
    pub combinations: u64,
}

/// Exhaustively maximises `value(G, D)` over all `|D| = z` subsets.
///
/// When `z ≥ m` the only package is the whole pool. `z = 0` yields the
/// empty package with value 0.
pub fn brute_force(
    pool: &CandidatePool,
    evaluator: &FairnessEvaluator,
    z: usize,
) -> BruteForceResult {
    let m = pool.num_items();
    let z = z.min(m);
    if z == 0 {
        return BruteForceResult {
            selection: Selection::default(),
            value: 0.0,
            combinations: 0,
        };
    }

    // Current combination: positions[0] < positions[1] < … < positions[z-1].
    let mut current: Vec<usize> = (0..z).collect();
    let mut best = current.clone();
    let mut best_value = f64::NEG_INFINITY;
    let mut combinations = 0u64;

    loop {
        combinations += 1;
        // Score: OR of masks + sum of group scores, O(z).
        let mut mask = 0u64;
        let mut sum = 0.0;
        for &j in &current {
            mask |= evaluator.item_mask(j);
            sum += pool.group_relevance(j);
        }
        let value = mask.count_ones() as f64 / evaluator.num_members() as f64 * sum;
        if value > best_value {
            best_value = value;
            best.copy_from_slice(&current);
        }

        // Advance to the next combination in lexicographic order.
        let mut i = z;
        loop {
            if i == 0 {
                return BruteForceResult {
                    selection: Selection {
                        positions: best,
                        steps: Vec::new(),
                    },
                    value: best_value,
                    combinations,
                };
            }
            i -= 1;
            if current[i] != i + m - z {
                break;
            }
        }
        current[i] += 1;
        for slot in i + 1..z {
            current[slot] = current[slot - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::algorithm1;
    use fairrec_types::{ItemId, UserId};

    fn pool(member_scores: Vec<Vec<Option<f64>>>, group_scores: Vec<f64>) -> CandidatePool {
        let n_items = group_scores.len();
        CandidatePool::from_parts(
            (0..member_scores.len() as u32).map(UserId::new).collect(),
            (0..n_items as u32).map(ItemId::new).collect(),
            member_scores,
            group_scores,
        )
    }

    /// Reference: recursive enumeration, independent of the iterative walk.
    fn reference_best(
        pool: &CandidatePool,
        ev: &FairnessEvaluator,
        z: usize,
    ) -> (Vec<usize>, f64, u64) {
        fn recurse(
            pool: &CandidatePool,
            ev: &FairnessEvaluator,
            start: usize,
            left: usize,
            acc: &mut Vec<usize>,
            best: &mut (Vec<usize>, f64, u64),
        ) {
            if left == 0 {
                best.2 += 1;
                let v = ev.value(pool, acc);
                if v > best.1 {
                    best.1 = v;
                    best.0 = acc.clone();
                }
                return;
            }
            for j in start..=pool.num_items() - left {
                acc.push(j);
                recurse(pool, ev, j + 1, left - 1, acc, best);
                acc.pop();
            }
        }
        let mut best = (Vec::new(), f64::NEG_INFINITY, 0u64);
        recurse(pool, ev, 0, z, &mut Vec::new(), &mut best);
        best
    }

    fn binomial(m: u64, z: u64) -> u64 {
        if z > m {
            return 0;
        }
        let z = z.min(m - z);
        let mut out = 1u64;
        for i in 0..z {
            out = out * (m - i) / (i + 1);
        }
        out
    }

    #[test]
    fn matches_recursive_reference() {
        let p = pool(
            vec![
                vec![
                    Some(5.0),
                    Some(4.0),
                    Some(1.0),
                    Some(2.0),
                    Some(3.0),
                    Some(2.5),
                ],
                vec![
                    Some(1.0),
                    Some(2.0),
                    Some(5.0),
                    Some(4.0),
                    Some(2.0),
                    Some(3.5),
                ],
                vec![
                    Some(2.0),
                    Some(5.0),
                    Some(2.0),
                    Some(1.0),
                    Some(4.5),
                    Some(3.0),
                ],
            ],
            vec![2.5, 3.5, 2.8, 2.2, 3.1, 3.0],
        );
        for z in 1..=5 {
            let ev = FairnessEvaluator::new(&p, 2).unwrap();
            let got = brute_force(&p, &ev, z);
            let (ref_best, ref_value, ref_count) = reference_best(&p, &ev, z);
            assert_eq!(got.combinations, ref_count, "z={z}");
            assert_eq!(got.combinations, binomial(6, z as u64), "z={z}");
            assert!((got.value - ref_value).abs() < 1e-12, "z={z}");
            assert_eq!(got.selection.positions, ref_best, "z={z}");
        }
    }

    #[test]
    fn optimum_dominates_greedy() {
        let p = pool(
            vec![
                vec![Some(4.9), Some(4.7), Some(1.1), Some(1.3), Some(3.0)],
                vec![Some(1.2), Some(1.4), Some(4.8), Some(4.6), Some(3.1)],
            ],
            vec![3.9, 3.8, 3.7, 3.6, 3.5],
        );
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        for z in 1..=4 {
            let exact = brute_force(&p, &ev, z);
            let greedy = algorithm1(&p, z, 2);
            let greedy_value = ev.value(&p, &greedy.positions);
            assert!(
                exact.value >= greedy_value - 1e-12,
                "exact {} < greedy {} at z={z}",
                exact.value,
                greedy_value
            );
        }
    }

    #[test]
    fn z_zero_and_z_ge_m_edges() {
        let p = pool(vec![vec![Some(3.0), Some(2.0)]], vec![3.0, 2.0]);
        let ev = FairnessEvaluator::new(&p, 1).unwrap();
        let none = brute_force(&p, &ev, 0);
        assert!(none.selection.is_empty());
        assert_eq!(none.combinations, 0);
        let all = brute_force(&p, &ev, 5);
        assert_eq!(all.selection.positions, vec![0, 1]);
        assert_eq!(all.combinations, 1);
    }

    #[test]
    fn prefers_fair_package_over_higher_relevance() {
        // Items 0,1 both loved by member 0 only; item 2 is member 1's
        // favourite with lower group relevance. value must pick fairness.
        let p = pool(
            vec![
                vec![Some(5.0), Some(5.0), Some(1.0)],
                vec![Some(1.0), Some(1.0), Some(4.0)],
            ],
            vec![3.0, 3.0, 2.5],
        );
        let ev = FairnessEvaluator::new(&p, 1).unwrap();
        let got = brute_force(&p, &ev, 2);
        // {0,1}: fairness ½, Σ=6 → 3.0. {0,2}: fairness 1, Σ=5.5 → 5.5.
        assert_eq!(got.selection.positions, vec![0, 2]);
        assert!((got.value - 5.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tie_break_is_lexicographic() {
        // All values equal: the first combination must win.
        let p = pool(
            vec![vec![Some(3.0), Some(3.0), Some(3.0)]],
            vec![1.0, 1.0, 1.0],
        );
        let ev = FairnessEvaluator::new(&p, 3).unwrap();
        let got = brute_force(&p, &ev, 2);
        assert_eq!(got.selection.positions, vec![0, 1]);
    }
}
