//! m-proportional fairness (extension).
//!
//! The paper's fairness notion comes from its ref. \[19\] (Qi, Mamoulis,
//! Pitoura, Tsaparas — *Recommending Packages to Groups*, ICDM 2016),
//! which defines the stronger **m-proportionality**: a package `D` is
//! m-proportional for `u` when it contains at least `m` items from `u`'s
//! top-k. Definition 3 is exactly the `m = 1` case.
//!
//! This module generalises the evaluator and adds a greedy selector that
//! targets the weakest member first:
//!
//! * [`ProportionalityEvaluator`] — per-member satisfied counts,
//!   `proportionality(G, D) = |{u : |D ∩ A_u| ≥ m}| / |G|`, and the value
//!   function `proportionality · Σ relevanceG`,
//! * [`greedy_proportional`] — repeatedly gives the currently least
//!   satisfied member their best remaining top-k item (by group
//!   relevance), then fills leftover slots with plain top relevance.
//!
//! For `m = 1` the evaluator coincides with
//! [`FairnessEvaluator`](crate::fairness::FairnessEvaluator) — asserted in
//! the tests.

use crate::greedy::Selection;
use crate::pool::CandidatePool;
use fairrec_types::{FairrecError, Result};

/// Generalised (m-proportional) fairness evaluation.
#[derive(Debug, Clone)]
pub struct ProportionalityEvaluator {
    /// `masks[j]`: bit `u` set ⇔ pool item `j` ∈ A_u(k).
    masks: Vec<u64>,
    num_members: usize,
    k: usize,
    /// Required per-member count `m`.
    required: u32,
}

impl ProportionalityEvaluator {
    /// Builds the evaluator: lists of length `k`, requirement `m ≥ 1`.
    ///
    /// # Errors
    /// [`FairrecError::InvalidParameter`] for `k == 0`, `m == 0`, `m > k`
    /// (a member's list cannot contain more than `k` items), or more than
    /// 64 members.
    pub fn new(pool: &CandidatePool, k: usize, m: u32) -> Result<Self> {
        if k == 0 {
            return Err(FairrecError::invalid_parameter(
                "k",
                "top-k lists need k ≥ 1",
            ));
        }
        if m == 0 || m as usize > k {
            return Err(FairrecError::invalid_parameter(
                "m",
                format!("proportionality requires 1 ≤ m ≤ k, got m={m}, k={k}"),
            ));
        }
        let n = pool.num_members();
        if n > 64 {
            return Err(FairrecError::invalid_parameter(
                "group",
                format!("at most 64 members supported, got {n}"),
            ));
        }
        let mut masks = vec![0u64; pool.num_items()];
        for member in 0..n {
            for j in pool.top_k_positions(member, k) {
                masks[j] |= 1u64 << member;
            }
        }
        Ok(Self {
            masks,
            num_members: n,
            k,
            required: m,
        })
    }

    /// The list length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-member requirement `m`.
    pub fn required(&self) -> u32 {
        self.required
    }

    /// How many selected items fall into each member's top-k.
    pub fn satisfied_counts(&self, selected: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_members];
        for &j in selected {
            let mut mask = self.masks[j];
            while mask != 0 {
                let member = mask.trailing_zeros() as usize;
                counts[member] += 1;
                mask &= mask - 1;
            }
        }
        counts
    }

    /// `proportionality(G, D)`: fraction of members with ≥ m of their
    /// top-k items in `D`.
    pub fn proportionality(&self, selected: &[usize]) -> f64 {
        debug_assert!(self.num_members > 0);
        let satisfied = self
            .satisfied_counts(selected)
            .into_iter()
            .filter(|&c| c >= self.required)
            .count();
        satisfied as f64 / self.num_members as f64
    }

    /// `proportionality · Σ relevanceG` — the generalised value function.
    pub fn value(&self, pool: &CandidatePool, selected: &[usize]) -> f64 {
        self.proportionality(selected) * pool.sum_group_relevance(selected)
    }
}

/// Greedy m-proportional selection: while some member is below `m`, give
/// the currently weakest such member their best (group-relevance-ranked)
/// unselected top-k item; when everyone reachable is satisfied, fill the
/// remaining slots with the highest group relevance overall.
///
/// Ties: the weakest member with the smallest index; among items, the
/// highest group relevance then the smallest position.
pub fn greedy_proportional(
    pool: &CandidatePool,
    evaluator: &ProportionalityEvaluator,
    z: usize,
) -> Selection {
    let n = pool.num_members();
    let m_required = evaluator.required();
    let k = evaluator.k();
    let z = z.min(pool.num_items());
    let mut selection = Selection::default();
    if z == 0 {
        return selection;
    }

    // Per-member top-k lists pre-sorted by descending group relevance.
    let top_lists: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            let mut list = pool.top_k_positions(u, k);
            list.sort_by(|&a, &b| {
                pool.group_relevance(b)
                    .partial_cmp(&pool.group_relevance(a))
                    .expect("finite scores")
                    .then(a.cmp(&b))
            });
            list
        })
        .collect();

    let mut selected = vec![false; pool.num_items()];
    let mut counts = vec![0u32; n];
    let mut exhausted = vec![false; n];

    while selection.len() < z {
        // Weakest member still below the requirement with items left.
        let target = (0..n)
            .filter(|&u| !exhausted[u] && counts[u] < m_required)
            .min_by_key(|&u| (counts[u], u));
        let Some(u) = target else { break };
        let pick = top_lists[u].iter().copied().find(|&j| !selected[j]);
        match pick {
            Some(j) => {
                selected[j] = true;
                selection.positions.push(j);
                // One item may advance several members at once.
                for member in 0..n {
                    if top_lists[member].contains(&j) {
                        counts[member] += 1;
                    }
                }
            }
            None => exhausted[u] = true,
        }
    }

    // Fill the remainder with plain top relevance.
    if selection.len() < z {
        let mut order: Vec<usize> = (0..pool.num_items()).filter(|&j| !selected[j]).collect();
        order.sort_by(|&a, &b| {
            pool.group_relevance(b)
                .partial_cmp(&pool.group_relevance(a))
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        for j in order {
            if selection.len() >= z {
                break;
            }
            selection.positions.push(j);
        }
    }
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::FairnessEvaluator;
    use fairrec_types::{ItemId, UserId};

    fn pool(member_scores: Vec<Vec<Option<f64>>>, group_scores: Vec<f64>) -> CandidatePool {
        let n_items = group_scores.len();
        CandidatePool::from_parts(
            (0..member_scores.len() as u32).map(UserId::new).collect(),
            (0..n_items as u32).map(ItemId::new).collect(),
            member_scores,
            group_scores,
        )
    }

    fn polarized() -> CandidatePool {
        pool(
            vec![
                vec![
                    Some(5.0),
                    Some(4.8),
                    Some(4.6),
                    Some(1.0),
                    Some(1.2),
                    Some(1.4),
                ],
                vec![
                    Some(1.0),
                    Some(1.2),
                    Some(1.4),
                    Some(5.0),
                    Some(4.8),
                    Some(4.6),
                ],
            ],
            vec![3.5, 3.4, 3.3, 3.2, 3.1, 3.0],
        )
    }

    #[test]
    fn m1_matches_definition_3() {
        let p = polarized();
        let prop = ProportionalityEvaluator::new(&p, 3, 1).unwrap();
        let fair = FairnessEvaluator::new(&p, 3).unwrap();
        for selected in [vec![], vec![0], vec![0, 3], vec![0, 1, 2], vec![2, 4]] {
            assert_eq!(
                prop.proportionality(&selected),
                fair.fairness(&selected),
                "selected {selected:?}"
            );
            assert!((prop.value(&p, &selected) - fair.value(&p, &selected)).abs() < 1e-12);
        }
    }

    #[test]
    fn satisfied_counts_are_per_member() {
        let p = polarized();
        let ev = ProportionalityEvaluator::new(&p, 3, 2).unwrap();
        // Items 0,1 are member 0's; item 3 is member 1's.
        assert_eq!(ev.satisfied_counts(&[0, 1, 3]), vec![2, 1]);
        assert_eq!(ev.proportionality(&[0, 1, 3]), 0.5);
        assert_eq!(ev.proportionality(&[0, 1, 3, 4]), 1.0);
    }

    #[test]
    fn greedy_reaches_full_proportionality_when_z_allows() {
        let p = polarized();
        for m in 1..=3u32 {
            let ev = ProportionalityEvaluator::new(&p, 3, m).unwrap();
            let z_needed = (m as usize) * 2; // disjoint lists
            let sel = greedy_proportional(&p, &ev, z_needed);
            assert_eq!(sel.len(), z_needed);
            assert_eq!(
                ev.proportionality(&sel.positions),
                1.0,
                "m={m}: counts {:?}",
                ev.satisfied_counts(&sel.positions)
            );
        }
    }

    #[test]
    fn greedy_targets_the_weakest_member_first() {
        let p = polarized();
        let ev = ProportionalityEvaluator::new(&p, 3, 2).unwrap();
        let sel = greedy_proportional(&p, &ev, 4);
        // Alternates between the two members' best items; after 4 picks
        // both have exactly 2.
        assert_eq!(ev.satisfied_counts(&sel.positions), vec![2, 2]);
        // First pick: member 0 (tie on counts, smaller index), their best
        // by group relevance = position 0.
        assert_eq!(sel.positions[0], 0);
        // Second pick: member 1's best = position 3.
        assert_eq!(sel.positions[1], 3);
    }

    #[test]
    fn fills_with_top_relevance_after_satisfaction() {
        let p = polarized();
        let ev = ProportionalityEvaluator::new(&p, 3, 1).unwrap();
        let sel = greedy_proportional(&p, &ev, 4);
        assert_eq!(ev.proportionality(&sel.positions), 1.0);
        assert_eq!(sel.len(), 4);
        // First two picks satisfy both members (positions 0 and 3); the
        // filler picks are the best remaining group scores: 1 then 2.
        assert_eq!(sel.positions, vec![0, 3, 1, 2]);
    }

    #[test]
    fn shared_favourite_advances_both_members() {
        // One item both members love (k=1 lists are both {0}).
        let p = pool(
            vec![vec![Some(5.0), Some(2.0)], vec![Some(5.0), Some(2.0)]],
            vec![4.0, 2.0],
        );
        let ev = ProportionalityEvaluator::new(&p, 1, 1).unwrap();
        let sel = greedy_proportional(&p, &ev, 1);
        assert_eq!(sel.positions, vec![0]);
        assert_eq!(ev.proportionality(&sel.positions), 1.0);
    }

    #[test]
    fn unreachable_members_do_not_deadlock() {
        // Member 1 has no defined scores at all: exhausted immediately.
        let p = pool(
            vec![vec![Some(5.0), Some(4.0)], vec![None, None]],
            vec![3.0, 2.0],
        );
        let ev = ProportionalityEvaluator::new(&p, 2, 2).unwrap();
        let sel = greedy_proportional(&p, &ev, 2);
        assert_eq!(sel.len(), 2);
        assert_eq!(ev.proportionality(&sel.positions), 0.5);
    }

    #[test]
    fn parameter_validation() {
        let p = polarized();
        assert!(ProportionalityEvaluator::new(&p, 0, 1).is_err());
        assert!(ProportionalityEvaluator::new(&p, 3, 0).is_err());
        assert!(ProportionalityEvaluator::new(&p, 3, 4).is_err()); // m > k
        assert!(ProportionalityEvaluator::new(&p, 3, 3).is_ok());
    }

    #[test]
    fn higher_m_is_harder() {
        let p = polarized();
        let sel = vec![0usize, 3];
        let p1 = ProportionalityEvaluator::new(&p, 3, 1).unwrap();
        let p2 = ProportionalityEvaluator::new(&p, 3, 2).unwrap();
        assert!(p2.proportionality(&sel) <= p1.proportionality(&sel));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fairrec_types::{ItemId, UserId};
    use proptest::prelude::*;

    fn arb_pool() -> impl Strategy<Value = CandidatePool> {
        (2usize..=4, 4usize..=9).prop_flat_map(|(n, m)| {
            proptest::collection::vec(1.0f64..=5.0, n * m).prop_map(move |flat| {
                let member_scores: Vec<Vec<Option<f64>>> = (0..n)
                    .map(|u| (0..m).map(|j| Some(flat[u * m + j])).collect())
                    .collect();
                let group_scores: Vec<f64> = (0..m)
                    .map(|j| (0..n).map(|u| flat[u * m + j]).sum::<f64>() / n as f64)
                    .collect();
                CandidatePool::from_parts(
                    (0..n as u32).map(UserId::new).collect(),
                    (0..m as u32).map(ItemId::new).collect(),
                    member_scores,
                    group_scores,
                )
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// With k ≥ m and z ≥ m·|G|, the greedy reaches proportionality 1
        /// on dense pools (every member's list has k ≥ m entries).
        #[test]
        fn full_proportionality_when_z_suffices(pool in arb_pool(), m in 1u32..3) {
            let k = 3usize;
            prop_assume!(m as usize <= k);
            let need = m as usize * pool.num_members();
            prop_assume!(need <= pool.num_items());
            let ev = ProportionalityEvaluator::new(&pool, k, m).unwrap();
            let sel = greedy_proportional(&pool, &ev, need);
            prop_assert!((ev.proportionality(&sel.positions) - 1.0).abs() < 1e-12,
                "counts: {:?}", ev.satisfied_counts(&sel.positions));
        }

        /// Selections are well-formed: distinct, in range, |D| = min(z, m).
        #[test]
        fn well_formed(pool in arb_pool(), z in 0usize..12, m in 1u32..3) {
            let ev = ProportionalityEvaluator::new(&pool, 3, m).unwrap();
            let sel = greedy_proportional(&pool, &ev, z);
            prop_assert_eq!(sel.len(), z.min(pool.num_items()));
            let mut seen = std::collections::HashSet::new();
            for &j in &sel.positions {
                prop_assert!(j < pool.num_items());
                prop_assert!(seen.insert(j));
            }
        }

        /// Proportionality is monotone in the selection (supersets never
        /// lose satisfied members) and anti-monotone in m.
        #[test]
        fn monotonicity(pool in arb_pool()) {
            let ev1 = ProportionalityEvaluator::new(&pool, 3, 1).unwrap();
            let ev2 = ProportionalityEvaluator::new(&pool, 3, 2).unwrap();
            let all: Vec<usize> = (0..pool.num_items()).collect();
            let mut prev1 = 0.0;
            for end in 0..=all.len() {
                let sel = &all[..end];
                let p1 = ev1.proportionality(sel);
                prop_assert!(p1 >= prev1 - 1e-12);
                prev1 = p1;
                prop_assert!(ev2.proportionality(sel) <= p1 + 1e-12);
            }
        }
    }
}
