//! Fairness-aware group recommendations — the paper's core model (§III).
//!
//! The pipeline, in the paper's own order:
//!
//! 1. **Single-user relevance** ([`relevance`]) — Equation 1 predicts
//!    `relevance(u, i)` as the simU-weighted mean of peer ratings.
//! 2. **Group candidates & predictions** ([`predictions`]) — for a
//!    caregiver group `G`, score every item no member has rated, per
//!    member and aggregated (Definition 2, [`aggregate`]): `min` (veto
//!    semantics) or `average` (majority semantics).
//! 3. **Candidate pool** ([`pool`]) — the `m` best group-scored candidates
//!    with dense per-member scores, the input of the selection algorithms.
//! 4. **Fairness & value** ([`fairness`]) — Definition 3:
//!    `fairness(G, D) = |G_D| / |G|` where `D` is fair to `u` when it
//!    contains at least one of `u`'s top-k items, and
//!    `value(G, D) = fairness(G, D) · Σ_{i∈D} relevanceG(G, i)`.
//! 5. **Selection** — [`greedy`] implements Algorithm 1 (the pairwise
//!    heuristic), [`brute_force`](brute_force::brute_force) the exact `argmax_{|D|=z} value(G, D)`
//!    baseline of §VI, and [`swap`] a local-search refinement (extension).
//!
//! Single-user top-k recommendation (§III-A's `A_u`) lives in
//! [`recommend`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod baselines;
pub mod brute_force;
pub mod fairness;
pub mod greedy;
pub mod group;
pub mod pool;
pub mod predictions;
pub mod proportionality;
pub mod recommend;
pub mod relevance;
pub mod swap;

pub use aggregate::{Aggregation, MissingPolicy};
pub use baselines::{BiasModel, GlobalMean, ItemKnn, ItemMean, RatingPredictor, UserMean};
pub use brute_force::{brute_force, BruteForceResult};
pub use fairness::FairnessEvaluator;
pub use greedy::{algorithm1, plain_top_z, Selection, SelectionStep};
pub use group::Group;
pub use pool::CandidatePool;
pub use predictions::{
    compute_group_predictions, compute_group_predictions_from_peers,
    compute_group_predictions_with_index, GroupPredictionConfig, GroupPredictions,
};
pub use proportionality::{greedy_proportional, ProportionalityEvaluator};
pub use recommend::{
    single_user_top_k, single_user_top_k_from_peers, single_user_top_k_with_index,
};
pub use relevance::{PreparedPeers, RelevancePredictor};
pub use swap::swap_refine;
