//! Single-user recommendation (§III-A).
//!
//! *"After estimating the relevance scores of all unrated user items for a
//! user `u`, the items `A_u` with the top-k relevance scores can be
//! suggested to `u`."* This is the individual-patient path of the system,
//! and also how held-out evaluation (`fairrec-engine`) scores prediction
//! quality.

use crate::relevance::RelevancePredictor;
use fairrec_similarity::{BulkUserSimilarity, PeerIndex, PeerSelector};
use fairrec_types::{FairrecError, RatingMatrix, RatingsRead, Result, ScoredItem, UserId};

/// Recommends the top-k unrated items for a single user.
///
/// One-shot form: builds a transient [`PeerIndex`] and delegates to
/// [`single_user_top_k_with_index`], keeping a single peer-computation
/// path. Serving loops should hold a long-lived index instead.
///
/// # Errors
/// [`FairrecError::UnknownUser`] when `user` lies outside the matrix's
/// user space.
pub fn single_user_top_k<S: BulkUserSimilarity + ?Sized>(
    matrix: &RatingMatrix,
    measure: &S,
    selector: &PeerSelector,
    user: UserId,
    k: usize,
) -> Result<Vec<ScoredItem>> {
    let index = PeerIndex::new(*selector, matrix.num_users());
    single_user_top_k_with_index(matrix, measure, &index, user, k)
}

/// Recommends the top-k unrated items for a single user, serving
/// Definition 1 from a caller-held [`PeerIndex`].
///
/// # Errors
/// [`FairrecError::UnknownUser`] when `user` lies outside the matrix's
/// user space.
pub fn single_user_top_k_with_index<S: BulkUserSimilarity + ?Sized>(
    matrix: &RatingMatrix,
    measure: &S,
    index: &PeerIndex,
    user: UserId,
    k: usize,
) -> Result<Vec<ScoredItem>> {
    if user.raw() >= matrix.num_users() {
        return Err(FairrecError::UnknownUser { user });
    }
    single_user_top_k_from_peers(matrix, &index.peers_of(measure, user), user, k)
}

/// Recommends the top-k unrated items for a single user over a
/// **pre-resolved** Definition-1 peer list — the shared tail of the
/// monolithic and sharded serving paths (the sharded index resolves the
/// list in `fairrec-similarity` and hands it in here). Generic over
/// [`RatingsRead`], so the sharded engine's owner-routed store serves it
/// directly.
///
/// # Errors
/// [`FairrecError::UnknownUser`] when `user` lies outside the matrix's
/// user space.
pub fn single_user_top_k_from_peers<R: RatingsRead + ?Sized>(
    matrix: &R,
    peers: &fairrec_similarity::Peers,
    user: UserId,
    k: usize,
) -> Result<Vec<ScoredItem>> {
    if user.raw() >= matrix.num_users() {
        return Err(FairrecError::UnknownUser { user });
    }
    let candidates = matrix.unrated_by_all(&[user]);
    Ok(RelevancePredictor::new(matrix).top_k(peers, &candidates, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_similarity::RatingsSimilarity;
    use fairrec_types::{ItemId, RatingMatrixBuilder};

    /// u0 is the query user; u1 agrees with u0, u2 disagrees.
    fn matrix() -> RatingMatrix {
        let rows = [
            // co-rated history establishing correlations
            (0u32, 0u32, 5.0),
            (0, 1, 1.0),
            (0, 2, 4.0),
            (1, 0, 5.0),
            (1, 1, 1.0),
            (1, 2, 5.0),
            (2, 0, 1.0),
            (2, 1, 5.0),
            (2, 2, 2.0),
            // unrated-by-u0 items, rated by the others
            (1, 3, 5.0),
            (2, 3, 1.0),
            (1, 4, 2.0),
            (2, 4, 5.0),
        ];
        let mut b = RatingMatrixBuilder::new();
        for (u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn recommends_what_similar_users_liked() {
        let m = matrix();
        let sim = RatingsSimilarity::new(&m);
        let sel = PeerSelector::new(0.5).unwrap();
        let top = single_user_top_k(&m, &sim, &sel, UserId::new(0), 2).unwrap();
        // Only u1 passes δ = 0.5; u1 loves i3 (5.0) and dislikes i4 (2.0).
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].item, ItemId::new(3));
        assert!((top[0].score - 5.0).abs() < 1e-12);
        assert_eq!(top[1].item, ItemId::new(4));
    }

    #[test]
    fn k_truncates() {
        let m = matrix();
        let sim = RatingsSimilarity::new(&m);
        let sel = PeerSelector::new(0.5).unwrap();
        let top = single_user_top_k(&m, &sim, &sel, UserId::new(0), 1).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].item, ItemId::new(3));
    }

    #[test]
    fn no_peers_means_no_recommendations() {
        let m = matrix();
        let sim = RatingsSimilarity::new(&m);
        let sel = PeerSelector::new(0.999).unwrap();
        // u2's correlation with everyone is negative; with δ≈1 nobody
        // qualifies as a peer of u2.
        let top = single_user_top_k(&m, &sim, &sel, UserId::new(2), 3).unwrap();
        assert!(top.is_empty());
    }

    #[test]
    fn unknown_user_errors() {
        let m = matrix();
        let sim = RatingsSimilarity::new(&m);
        let sel = PeerSelector::new(0.0).unwrap();
        assert!(single_user_top_k(&m, &sim, &sel, UserId::new(42), 3).is_err());
    }
}
