//! Group aggregation — Definition 2.
//!
//! *"We employ two different designs regarding the aggregation method,
//! each one carrying different semantics"*:
//!
//! * [`Aggregation::Min`] — *"strong user preferences act as a veto; the
//!   predicted relevance of an item for the group is equal to the minimum
//!   relevance of the item scores of the members"*,
//! * [`Aggregation::Average`] — *"we focus on satisfying the majority of
//!   the group members and return the average relevance"*.
//!
//! Per-member predictions can be undefined (Equation 1 has no covering
//! peers); Definition 2 is silent about this, so the policy is explicit:
//!
//! * [`MissingPolicy::Skip`] (default) — aggregate over the defined subset
//!   (undefined ⇒ no opinion). All-undefined ⇒ the group score is `None`.
//! * [`MissingPolicy::Pessimistic`] — treat a missing prediction as the
//!   minimum rating (1.0): "cannot show it is relevant for this member".
//!   Under `Min` this vetoes items invisible to any member.

use fairrec_types::{Relevance, RATING_MIN};

/// Definition 2 aggregation semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Veto semantics: group score = min over members.
    Min,
    /// Majority semantics: group score = mean over members.
    #[default]
    Average,
}

impl Aggregation {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Min => "min",
            Self::Average => "avg",
        }
    }
}

/// How undefined member predictions enter the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissingPolicy {
    /// Aggregate over the members with defined predictions.
    #[default]
    Skip,
    /// Substitute the minimum rating (1.0) for missing predictions.
    Pessimistic,
}

impl Aggregation {
    /// Aggregates per-member scores into `relevanceG(G, i)`.
    ///
    /// Returns `None` when, after applying `policy`, no member contributes
    /// a score (that is: all predictions missing under
    /// [`MissingPolicy::Skip`], or an empty member slice).
    pub fn aggregate(
        self,
        member_scores: &[Option<Relevance>],
        policy: MissingPolicy,
    ) -> Option<Relevance> {
        let mut count = 0usize;
        let mut acc = match self {
            Self::Min => f64::INFINITY,
            Self::Average => 0.0,
        };
        for &score in member_scores {
            let value = match (score, policy) {
                (Some(s), _) => s,
                (None, MissingPolicy::Pessimistic) => RATING_MIN,
                (None, MissingPolicy::Skip) => continue,
            };
            count += 1;
            match self {
                Self::Min => acc = acc.min(value),
                Self::Average => acc += value,
            }
        }
        if count == 0 {
            return None;
        }
        Some(match self {
            Self::Min => acc,
            Self::Average => acc / count as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_takes_the_weakest_opinion() {
        let scores = [Some(4.0), Some(2.5), Some(5.0)];
        assert_eq!(
            Aggregation::Min.aggregate(&scores, MissingPolicy::Skip),
            Some(2.5)
        );
    }

    #[test]
    fn average_is_the_arithmetic_mean() {
        let scores = [Some(4.0), Some(2.0), Some(3.0)];
        assert_eq!(
            Aggregation::Average.aggregate(&scores, MissingPolicy::Skip),
            Some(3.0)
        );
    }

    #[test]
    fn skip_ignores_missing_members() {
        let scores = [Some(4.0), None, Some(2.0)];
        assert_eq!(
            Aggregation::Average.aggregate(&scores, MissingPolicy::Skip),
            Some(3.0)
        );
        assert_eq!(
            Aggregation::Min.aggregate(&scores, MissingPolicy::Skip),
            Some(2.0)
        );
    }

    #[test]
    fn pessimistic_substitutes_rating_min() {
        let scores = [Some(4.0), None];
        assert_eq!(
            Aggregation::Min.aggregate(&scores, MissingPolicy::Pessimistic),
            Some(RATING_MIN)
        );
        assert_eq!(
            Aggregation::Average.aggregate(&scores, MissingPolicy::Pessimistic),
            Some((4.0 + RATING_MIN) / 2.0)
        );
    }

    #[test]
    fn all_missing_under_skip_is_none() {
        let scores = [None, None];
        assert_eq!(
            Aggregation::Min.aggregate(&scores, MissingPolicy::Skip),
            None
        );
        assert_eq!(
            Aggregation::Average.aggregate(&scores, MissingPolicy::Skip),
            None
        );
        // Pessimistic still yields a (vetoed) score.
        assert_eq!(
            Aggregation::Min.aggregate(&scores, MissingPolicy::Pessimistic),
            Some(RATING_MIN)
        );
    }

    #[test]
    fn empty_member_slice_is_none() {
        assert_eq!(Aggregation::Min.aggregate(&[], MissingPolicy::Skip), None);
        assert_eq!(
            Aggregation::Average.aggregate(&[], MissingPolicy::Pessimistic),
            None
        );
    }

    #[test]
    fn singleton_group_returns_the_single_opinion() {
        for agg in [Aggregation::Min, Aggregation::Average] {
            assert_eq!(agg.aggregate(&[Some(3.3)], MissingPolicy::Skip), Some(3.3));
        }
    }

    #[test]
    fn names() {
        assert_eq!(Aggregation::Min.name(), "min");
        assert_eq!(Aggregation::Average.name(), "avg");
        assert_eq!(Aggregation::default(), Aggregation::Average);
        assert_eq!(MissingPolicy::default(), MissingPolicy::Skip);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_scores() -> impl Strategy<Value = Vec<Option<f64>>> {
        proptest::collection::vec(proptest::option::of(1.0f64..=5.0), 0..12)
    }

    proptest! {
        #[test]
        fn min_le_average_when_both_defined(scores in arb_scores()) {
            for policy in [MissingPolicy::Skip, MissingPolicy::Pessimistic] {
                let lo = Aggregation::Min.aggregate(&scores, policy);
                let avg = Aggregation::Average.aggregate(&scores, policy);
                match (lo, avg) {
                    (Some(l), Some(a)) => prop_assert!(l <= a + 1e-12),
                    (None, None) => {}
                    other => prop_assert!(false, "definedness must agree: {:?}", other),
                }
            }
        }

        #[test]
        fn aggregates_stay_in_rating_range(scores in arb_scores()) {
            for agg in [Aggregation::Min, Aggregation::Average] {
                for policy in [MissingPolicy::Skip, MissingPolicy::Pessimistic] {
                    if let Some(v) = agg.aggregate(&scores, policy) {
                        prop_assert!((1.0..=5.0).contains(&v), "{agg:?}/{policy:?} → {v}");
                    }
                }
            }
        }
    }
}
