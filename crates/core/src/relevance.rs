//! Relevance prediction — Equation 1.
//!
//! For a user `u` with peers `P_u` and an item `i` that `u` has not rated:
//!
//! ```text
//!                   Σ_{u′ ∈ P_u ∩ U(i)}  simU(u, u′) · rating(u′, i)
//! relevance(u, i) = ───────────────────────────────────────────────
//!                   Σ_{u′ ∈ P_u ∩ U(i)}  simU(u, u′)
//! ```
//!
//! The prediction is **undefined** (`None`) when no peer has rated `i`, or
//! when the similarity mass in the denominator is not strictly positive —
//! the latter can only happen when the caller admits non-positive
//! similarities through a negative δ, in which case a weighted "average"
//! loses its meaning as one.

use fairrec_similarity::Peers;
use fairrec_types::{
    ItemId, Parallelism, RatingMatrix, RatingsRead, Relevance, ScoredItem, TopK, UserId,
};
use std::collections::HashMap;

/// Candidate-set size below which
/// [`RelevancePredictor::predict_many_with`] ignores the parallelism
/// knob and stays sequential — fan-out overhead dominates under this.
pub const MIN_PARALLEL_ITEMS: usize = 2048;

/// A peer list preprocessed for repeated Equation 1 evaluations: the
/// peer → similarity lookup that `predict` / `predict_many` build
/// internally, made reusable across items (one allocation per peer
/// list instead of one per prediction).
#[derive(Debug, Clone, Default)]
pub struct PreparedPeers {
    peer_sim: HashMap<UserId, f64>,
}

impl PreparedPeers {
    /// Builds the lookup from a peer list.
    pub fn new(peers: &Peers) -> Self {
        Self {
            peer_sim: peers.iter().copied().collect(),
        }
    }
}

/// Predicts Equation 1 scores against a rating relation.
///
/// Generic over [`RatingsRead`], so the same summation serves the
/// monolithic [`RatingMatrix`] and the sharded store (whose rater scans
/// arrive through the owner-routed S-way merge — same visiting order,
/// same bits). The default type parameter keeps the common
/// `RelevancePredictor::new(&matrix)` call sites unchanged.
#[derive(Debug, Clone, Copy)]
pub struct RelevancePredictor<'a, R: RatingsRead + ?Sized = RatingMatrix> {
    matrix: &'a R,
}

impl<'a, R: RatingsRead + ?Sized> RelevancePredictor<'a, R> {
    /// Creates a predictor over `matrix`.
    pub fn new(matrix: &'a R) -> Self {
        Self { matrix }
    }

    /// The underlying rating relation.
    pub fn matrix(&self) -> &'a R {
        self.matrix
    }

    /// Predicts `relevance(u, i)` for one item, given `u`'s peer list.
    ///
    /// `peers` comes from
    /// [`PeerSelector`](fairrec_similarity::PeerSelector); the user itself
    /// is never in it.
    ///
    /// The summation runs in the **canonical order**: over the item's
    /// raters, in matrix order, probing the peer set. Every Equation 1
    /// evaluation in the workspace — this method, the prepared-peers
    /// [`predict_prepared`](Self::predict_prepared), and the (possibly
    /// parallel) [`predict_many_with`](Self::predict_many_with) — sums in
    /// this one order, so the same `(peers, item)` always produces the
    /// same bits. An earlier revision picked peer-side vs rater-side
    /// iteration by size; float addition is not associative, so the two
    /// paths could disagree in the last ulp for the same input,
    /// contradicting the determinism contract the property tests pin.
    ///
    /// Builds the peer lookup afresh each call; loops evaluating many
    /// items for one peer list should build [`PreparedPeers`] once and
    /// use [`predict_prepared`](Self::predict_prepared) instead.
    pub fn predict(&self, peers: &Peers, item: ItemId) -> Option<Relevance> {
        self.predict_prepared(&PreparedPeers::new(peers), item)
    }

    /// Like [`predict`](Self::predict) over a prebuilt peer lookup —
    /// same canonical summation, same bits, without the per-call map
    /// construction.
    pub fn predict_prepared(&self, peers: &PreparedPeers, item: ItemId) -> Option<Relevance> {
        Self::score_rater_side(self.matrix, &peers.peer_sim, item)
    }

    /// The single canonical Equation 1 evaluation: rater-side summation
    /// in ascending rater order (the [`RatingsRead`] visiting contract).
    /// All prediction entry points funnel through this.
    fn score_rater_side(
        matrix: &R,
        peer_sim: &HashMap<UserId, f64>,
        item: ItemId,
    ) -> Option<Relevance> {
        let mut num = 0.0;
        let mut den = 0.0;
        matrix.for_each_rater(item, &mut |rater, r| {
            if let Some(&sim) = peer_sim.get(&rater) {
                num += sim * r;
                den += sim;
            }
        });
        (den > 0.0).then(|| num / den)
    }

    /// Predicts over a candidate slice, preserving order; `None` entries
    /// mark undefined predictions.
    pub fn predict_many(&self, peers: &Peers, candidates: &[ItemId]) -> Vec<Option<Relevance>> {
        self.predict_many_with(peers, candidates, Parallelism::Sequential)
    }

    /// Like [`predict_many`](Self::predict_many), fanning the per-item
    /// Equation 1 evaluations out across `parallelism`. Each item's score
    /// is an independent rater-side scan, so results are bitwise
    /// identical to the sequential path in input order.
    ///
    /// Small candidate sets (< [`MIN_PARALLEL_ITEMS`]) always run
    /// sequentially: a per-item scan is sub-microsecond work and thread
    /// fan-out would cost more than it saves.
    pub fn predict_many_with(
        &self,
        peers: &Peers,
        candidates: &[ItemId],
        parallelism: Parallelism,
    ) -> Vec<Option<Relevance>> {
        // One peer→sim map reused across items; each item is the same
        // canonical rater-side summation `predict` performs.
        let peer_sim: HashMap<UserId, f64> = peers.iter().copied().collect();
        let score = |item: ItemId| Self::score_rater_side(self.matrix, &peer_sim, item);
        if candidates.len() < MIN_PARALLEL_ITEMS || !parallelism.is_parallel() {
            // The common serving path: iterate the borrowed slice in
            // place, no per-request candidate copy.
            candidates.iter().copied().map(score).collect()
        } else {
            parallelism.map(candidates.to_vec(), score)
        }
    }

    /// The top-k list `A_u` (§III-A) over `candidates`.
    pub fn top_k(&self, peers: &Peers, candidates: &[ItemId], k: usize) -> Vec<ScoredItem> {
        let mut top = TopK::new(k);
        for (item, score) in candidates
            .iter()
            .zip(self.predict_many(peers, candidates))
            .filter_map(|(&i, s)| s.map(|s| (i, s)))
        {
            top.push(item, score);
        }
        top.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::RatingMatrixBuilder;

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    fn peers(list: &[(u32, f64)]) -> Peers {
        list.iter().map(|&(u, s)| (UserId::new(u), s)).collect()
    }

    #[test]
    fn equation_1_hand_computed() {
        // Peers u1 (sim .8, rated 5) and u2 (sim .4, rated 2); u3 rated but
        // is not a peer.
        let m = matrix(&[(1, 0, 5.0), (2, 0, 2.0), (3, 0, 1.0)]);
        let p = peers(&[(1, 0.8), (2, 0.4)]);
        let r = RelevancePredictor::new(&m)
            .predict(&p, ItemId::new(0))
            .unwrap();
        let expected = (0.8 * 5.0 + 0.4 * 2.0) / (0.8 + 0.4);
        assert!((r - expected).abs() < 1e-12);
    }

    #[test]
    fn prediction_is_a_convex_combination() {
        let m = matrix(&[(1, 0, 2.0), (2, 0, 5.0)]);
        let p = peers(&[(1, 0.9), (2, 0.1)]);
        let r = RelevancePredictor::new(&m)
            .predict(&p, ItemId::new(0))
            .unwrap();
        assert!((2.0..=5.0).contains(&r));
        // Heavier weight pulls toward that peer's rating.
        assert!(r < 3.0);
    }

    #[test]
    fn undefined_when_no_peer_rated() {
        let m = matrix(&[(3, 0, 4.0)]);
        let p = peers(&[(1, 0.8), (2, 0.4)]);
        assert_eq!(
            RelevancePredictor::new(&m).predict(&p, ItemId::new(0)),
            None
        );
        assert_eq!(
            RelevancePredictor::new(&m).predict(&peers(&[]), ItemId::new(0)),
            None
        );
    }

    #[test]
    fn undefined_on_nonpositive_similarity_mass() {
        let m = matrix(&[(1, 0, 5.0), (2, 0, 1.0)]);
        // Negative-δ regime admitting anti-correlated "peers".
        let p = peers(&[(1, -0.5), (2, 0.5)]);
        assert_eq!(
            RelevancePredictor::new(&m).predict(&p, ItemId::new(0)),
            None
        );
    }

    #[test]
    fn single_and_batch_paths_agree_bitwise() {
        // Small peer list vs. large rater set and vice versa: both used
        // to take different summation orders; now every shape must be
        // bit-for-bit identical across `predict` and `predict_many`.
        let mut rows = vec![(0u32, 0u32, 3.0)];
        for u in 1..40 {
            rows.push((u, 0, f64::from(u % 5) + 1.0));
        }
        let m = matrix(&rows);
        let small = peers(&[(1, 0.5), (2, 0.5)]);
        let big: Peers = (1..40).map(|u| (UserId::new(u), 0.1)).collect();
        let pred = RelevancePredictor::new(&m);
        for p in [&small, &big] {
            let one = pred.predict(p, ItemId::new(0)).unwrap();
            let many = pred.predict_many(p, &[ItemId::new(0)])[0].unwrap();
            assert_eq!(one.to_bits(), many.to_bits());
        }
    }

    #[test]
    fn predict_many_preserves_order_and_gaps() {
        let m = matrix(&[(1, 0, 5.0), (1, 2, 3.0)]);
        let p = peers(&[(1, 1.0)]);
        let out = RelevancePredictor::new(&m)
            .predict_many(&p, &[ItemId::new(2), ItemId::new(1), ItemId::new(0)]);
        assert_eq!(out, vec![Some(3.0), None, Some(5.0)]);
    }

    #[test]
    fn top_k_returns_a_u() {
        let m = matrix(&[(1, 0, 5.0), (1, 1, 1.0), (1, 2, 4.0), (1, 3, 3.0)]);
        let p = peers(&[(1, 1.0)]);
        let candidates: Vec<ItemId> = (0..4).map(ItemId::new).collect();
        let top = RelevancePredictor::new(&m).top_k(&p, &candidates, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].item, ItemId::new(0));
        assert_eq!(top[1].item, ItemId::new(2));
    }

    #[test]
    fn top_k_skips_undefined_predictions() {
        let m = matrix(&[(1, 0, 5.0)]);
        let p = peers(&[(1, 1.0)]);
        let candidates: Vec<ItemId> = (0..5).map(ItemId::new).collect();
        let top = RelevancePredictor::new(&m).top_k(&p, &candidates, 3);
        assert_eq!(top.len(), 1, "only the predictable item qualifies");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fairrec_types::RatingMatrixBuilder;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        /// Determinism contract: the single-item and batch entry points
        /// are the same function — `predict(peers, i)` equals
        /// `predict_many(peers, [i])[0]` bit for bit, for any matrix
        /// shape and peer list (both paths take the canonical rater-side
        /// summation order).
        #[test]
        fn predict_equals_predict_many_bitwise(
            ratings in proptest::collection::btree_map(
                (0u32..12, 0u32..6), 1.0f64..5.0, 1..40,
            ),
            peer_sims in proptest::collection::btree_map(0u32..12, 0.01f64..1.0, 0..12),
            item in 0u32..6,
        ) {
            let mut b = RatingMatrixBuilder::new();
            for (&(u, i), &r) in &ratings {
                b.add_raw(UserId::new(u), ItemId::new(i), r).unwrap();
            }
            let m = b.build().unwrap();
            let peers: Peers = BTreeMap::into_iter(peer_sims)
                .map(|(u, s)| (UserId::new(u), s))
                .collect();
            let pred = RelevancePredictor::new(&m);
            let item = ItemId::new(item);
            let one = pred.predict(&peers, item);
            let many = pred.predict_many(&peers, &[item])[0];
            prop_assert_eq!(one.map(f64::to_bits), many.map(f64::to_bits));
        }
    }
}
