//! Relevance prediction — Equation 1.
//!
//! For a user `u` with peers `P_u` and an item `i` that `u` has not rated:
//!
//! ```text
//!                   Σ_{u′ ∈ P_u ∩ U(i)}  simU(u, u′) · rating(u′, i)
//! relevance(u, i) = ───────────────────────────────────────────────
//!                   Σ_{u′ ∈ P_u ∩ U(i)}  simU(u, u′)
//! ```
//!
//! The prediction is **undefined** (`None`) when no peer has rated `i`, or
//! when the similarity mass in the denominator is not strictly positive —
//! the latter can only happen when the caller admits non-positive
//! similarities through a negative δ, in which case a weighted "average"
//! loses its meaning as one.

use fairrec_similarity::Peers;
use fairrec_types::{ItemId, Parallelism, RatingMatrix, Relevance, ScoredItem, TopK, UserId};
use std::collections::HashMap;

/// Candidate-set size below which
/// [`RelevancePredictor::predict_many_with`] ignores the parallelism
/// knob and stays sequential — fan-out overhead dominates under this.
pub const MIN_PARALLEL_ITEMS: usize = 2048;

/// Predicts Equation 1 scores against a rating matrix.
#[derive(Debug, Clone, Copy)]
pub struct RelevancePredictor<'a> {
    matrix: &'a RatingMatrix,
}

impl<'a> RelevancePredictor<'a> {
    /// Creates a predictor over `matrix`.
    pub fn new(matrix: &'a RatingMatrix) -> Self {
        Self { matrix }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a RatingMatrix {
        self.matrix
    }

    /// Predicts `relevance(u, i)` for one item, given `u`'s peer list.
    ///
    /// `peers` comes from
    /// [`PeerSelector`](fairrec_similarity::PeerSelector); the user itself
    /// is never in it.
    pub fn predict(&self, peers: &Peers, item: ItemId) -> Option<Relevance> {
        let mut num = 0.0;
        let mut den = 0.0;
        // Iterate the smaller side: raters of the item, probing the peer
        // map — peer lists are usually the larger collection.
        if peers.len() <= self.matrix.users_of(item).len() {
            for &(peer, sim) in peers {
                if let Some(r) = self.matrix.rating(peer, item) {
                    num += sim * r;
                    den += sim;
                }
            }
        } else {
            let peer_sim: HashMap<UserId, f64> = peers.iter().copied().collect();
            for (rater, r) in self.matrix.raters_of(item) {
                if let Some(&sim) = peer_sim.get(&rater) {
                    num += sim * r;
                    den += sim;
                }
            }
        }
        (den > 0.0).then(|| num / den)
    }

    /// Predicts over a candidate slice, preserving order; `None` entries
    /// mark undefined predictions.
    pub fn predict_many(&self, peers: &Peers, candidates: &[ItemId]) -> Vec<Option<Relevance>> {
        self.predict_many_with(peers, candidates, Parallelism::Sequential)
    }

    /// Like [`predict_many`](Self::predict_many), fanning the per-item
    /// Equation 1 evaluations out across `parallelism`. Each item's score
    /// is an independent rater-side scan, so results are bitwise
    /// identical to the sequential path in input order.
    ///
    /// Small candidate sets (< [`MIN_PARALLEL_ITEMS`]) always run
    /// sequentially: a per-item scan is sub-microsecond work and thread
    /// fan-out would cost more than it saves.
    pub fn predict_many_with(
        &self,
        peers: &Peers,
        candidates: &[ItemId],
        parallelism: Parallelism,
    ) -> Vec<Option<Relevance>> {
        // One peer→sim map reused across items.
        let peer_sim: HashMap<UserId, f64> = peers.iter().copied().collect();
        let score = |item: ItemId| {
            let mut num = 0.0;
            let mut den = 0.0;
            for (rater, r) in self.matrix.raters_of(item) {
                if let Some(&sim) = peer_sim.get(&rater) {
                    num += sim * r;
                    den += sim;
                }
            }
            (den > 0.0).then(|| num / den)
        };
        if candidates.len() < MIN_PARALLEL_ITEMS || !parallelism.is_parallel() {
            // The common serving path: iterate the borrowed slice in
            // place, no per-request candidate copy.
            candidates.iter().copied().map(score).collect()
        } else {
            parallelism.map(candidates.to_vec(), score)
        }
    }

    /// The top-k list `A_u` (§III-A) over `candidates`.
    pub fn top_k(&self, peers: &Peers, candidates: &[ItemId], k: usize) -> Vec<ScoredItem> {
        let mut top = TopK::new(k);
        for (item, score) in candidates
            .iter()
            .zip(self.predict_many(peers, candidates))
            .filter_map(|(&i, s)| s.map(|s| (i, s)))
        {
            top.push(item, score);
        }
        top.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::RatingMatrixBuilder;

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    fn peers(list: &[(u32, f64)]) -> Peers {
        list.iter().map(|&(u, s)| (UserId::new(u), s)).collect()
    }

    #[test]
    fn equation_1_hand_computed() {
        // Peers u1 (sim .8, rated 5) and u2 (sim .4, rated 2); u3 rated but
        // is not a peer.
        let m = matrix(&[(1, 0, 5.0), (2, 0, 2.0), (3, 0, 1.0)]);
        let p = peers(&[(1, 0.8), (2, 0.4)]);
        let r = RelevancePredictor::new(&m)
            .predict(&p, ItemId::new(0))
            .unwrap();
        let expected = (0.8 * 5.0 + 0.4 * 2.0) / (0.8 + 0.4);
        assert!((r - expected).abs() < 1e-12);
    }

    #[test]
    fn prediction_is_a_convex_combination() {
        let m = matrix(&[(1, 0, 2.0), (2, 0, 5.0)]);
        let p = peers(&[(1, 0.9), (2, 0.1)]);
        let r = RelevancePredictor::new(&m)
            .predict(&p, ItemId::new(0))
            .unwrap();
        assert!((2.0..=5.0).contains(&r));
        // Heavier weight pulls toward that peer's rating.
        assert!(r < 3.0);
    }

    #[test]
    fn undefined_when_no_peer_rated() {
        let m = matrix(&[(3, 0, 4.0)]);
        let p = peers(&[(1, 0.8), (2, 0.4)]);
        assert_eq!(
            RelevancePredictor::new(&m).predict(&p, ItemId::new(0)),
            None
        );
        assert_eq!(
            RelevancePredictor::new(&m).predict(&peers(&[]), ItemId::new(0)),
            None
        );
    }

    #[test]
    fn undefined_on_nonpositive_similarity_mass() {
        let m = matrix(&[(1, 0, 5.0), (2, 0, 1.0)]);
        // Negative-δ regime admitting anti-correlated "peers".
        let p = peers(&[(1, -0.5), (2, 0.5)]);
        assert_eq!(
            RelevancePredictor::new(&m).predict(&p, ItemId::new(0)),
            None
        );
    }

    #[test]
    fn both_probe_directions_agree() {
        // Small peer list vs. large rater set and vice versa.
        let mut rows = vec![(0u32, 0u32, 3.0)];
        for u in 1..40 {
            rows.push((u, 0, f64::from(u % 5) + 1.0));
        }
        let m = matrix(&rows);
        let small = peers(&[(1, 0.5), (2, 0.5)]);
        let big: Peers = (1..40).map(|u| (UserId::new(u), 0.1)).collect();
        let pred = RelevancePredictor::new(&m);
        // Few peers → peer-side iteration; many peers → rater-side.
        let a = pred.predict(&small, ItemId::new(0)).unwrap();
        let b = pred.predict_many(&small, &[ItemId::new(0)])[0].unwrap();
        assert!((a - b).abs() < 1e-12);
        let c = pred.predict(&big, ItemId::new(0)).unwrap();
        let d = pred.predict_many(&big, &[ItemId::new(0)])[0].unwrap();
        assert!((c - d).abs() < 1e-12);
    }

    #[test]
    fn predict_many_preserves_order_and_gaps() {
        let m = matrix(&[(1, 0, 5.0), (1, 2, 3.0)]);
        let p = peers(&[(1, 1.0)]);
        let out = RelevancePredictor::new(&m)
            .predict_many(&p, &[ItemId::new(2), ItemId::new(1), ItemId::new(0)]);
        assert_eq!(out, vec![Some(3.0), None, Some(5.0)]);
    }

    #[test]
    fn top_k_returns_a_u() {
        let m = matrix(&[(1, 0, 5.0), (1, 1, 1.0), (1, 2, 4.0), (1, 3, 3.0)]);
        let p = peers(&[(1, 1.0)]);
        let candidates: Vec<ItemId> = (0..4).map(ItemId::new).collect();
        let top = RelevancePredictor::new(&m).top_k(&p, &candidates, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].item, ItemId::new(0));
        assert_eq!(top[1].item, ItemId::new(2));
    }

    #[test]
    fn top_k_skips_undefined_predictions() {
        let m = matrix(&[(1, 0, 5.0)]);
        let p = peers(&[(1, 1.0)]);
        let candidates: Vec<ItemId> = (0..5).map(ItemId::new).collect();
        let top = RelevancePredictor::new(&m).top_k(&p, &candidates, 3);
        assert_eq!(top.len(), 1, "only the predictable item qualifies");
    }
}
