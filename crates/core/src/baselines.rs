//! Baseline rating predictors (extension).
//!
//! The paper evaluates running time only; judging the *quality* of its
//! user-based CF (Equation 1) needs comparators. This module provides the
//! standard ladder, all behind one [`RatingPredictor`] trait:
//!
//! * [`GlobalMean`] — one number,
//! * [`UserMean`] / [`ItemMean`] — per-entity means,
//! * [`BiasModel`] — damped `µ + b_u + b_i` (the classic strong baseline),
//! * [`ItemKnn`] — item-based CF with adjusted cosine, the canonical
//!   alternative to the paper's user-based design.
//!
//! Experiment A7 (`fairrec-bench --bin prediction_baselines`) ranks them
//! against Equation 1 on held-out data.

use fairrec_types::{ItemId, RatingMatrix, UserId};

/// A rating predictor: estimates `rating(u, i)` for unseen pairs.
pub trait RatingPredictor {
    /// The estimate, or `None` when the predictor has no basis for one.
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Predicts the global mean rating for every pair.
#[derive(Debug, Clone, Copy)]
pub struct GlobalMean {
    mean: f64,
    defined: bool,
}

impl GlobalMean {
    /// Computes the global mean of `matrix`.
    pub fn fit(matrix: &RatingMatrix) -> Self {
        let stats = matrix.stats();
        Self {
            mean: stats.mean_rating,
            defined: stats.num_ratings > 0,
        }
    }
}

impl RatingPredictor for GlobalMean {
    fn predict(&self, _: UserId, _: ItemId) -> Option<f64> {
        self.defined.then_some(self.mean)
    }

    fn name(&self) -> &'static str {
        "global-mean"
    }
}

/// Predicts each user's own mean (global mean for rating-less users).
#[derive(Debug, Clone)]
pub struct UserMean<'a> {
    matrix: &'a RatingMatrix,
    global: GlobalMean,
}

impl<'a> UserMean<'a> {
    /// Fits over `matrix`.
    pub fn fit(matrix: &'a RatingMatrix) -> Self {
        Self {
            matrix,
            global: GlobalMean::fit(matrix),
        }
    }
}

impl RatingPredictor for UserMean<'_> {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        self.matrix
            .user_mean(user)
            .or_else(|| self.global.predict(user, item))
    }

    fn name(&self) -> &'static str {
        "user-mean"
    }
}

/// Predicts each item's mean rating (global mean for unrated items).
#[derive(Debug, Clone)]
pub struct ItemMean<'a> {
    matrix: &'a RatingMatrix,
    global: GlobalMean,
}

impl<'a> ItemMean<'a> {
    /// Fits over `matrix`.
    pub fn fit(matrix: &'a RatingMatrix) -> Self {
        Self {
            matrix,
            global: GlobalMean::fit(matrix),
        }
    }

    fn item_mean(&self, item: ItemId) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for (_, r) in self.matrix.raters_of(item) {
            sum += r;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }
}

impl RatingPredictor for ItemMean<'_> {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        self.item_mean(item)
            .or_else(|| self.global.predict(user, item))
    }

    fn name(&self) -> &'static str {
        "item-mean"
    }
}

/// Damped baseline `µ + b_u + b_i`:
/// `b_i = Σ_{u∈U(i)} (r_ui − µ) / (λ_i + |U(i)|)`, then
/// `b_u = Σ_{i∈I(u)} (r_ui − µ − b_i) / (λ_u + |I(u)|)`.
///
/// The damping terms shrink sparse estimates toward zero — the standard
/// regularised form (λ defaults: 25 and 10, the folklore constants).
#[derive(Debug, Clone)]
pub struct BiasModel {
    mu: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    defined: bool,
}

impl BiasModel {
    /// Fits with default damping (λ_i = 25, λ_u = 10).
    pub fn fit(matrix: &RatingMatrix) -> Self {
        Self::fit_with(matrix, 25.0, 10.0)
    }

    /// Fits with explicit damping factors.
    pub fn fit_with(matrix: &RatingMatrix, lambda_item: f64, lambda_user: f64) -> Self {
        let stats = matrix.stats();
        let mu = stats.mean_rating;
        let mut item_bias = vec![0.0f64; matrix.num_items() as usize];
        for item in matrix.item_ids() {
            let mut n = 0usize;
            let mut sum = 0.0;
            for (_, r) in matrix.raters_of(item) {
                sum += r - mu;
                n += 1;
            }
            if n > 0 {
                item_bias[item.index()] = sum / (lambda_item + n as f64);
            }
        }
        let mut user_bias = vec![0.0f64; matrix.num_users() as usize];
        for user in matrix.user_ids() {
            let mut n = 0usize;
            let mut sum = 0.0;
            for (item, r) in matrix.ratings_of(user) {
                sum += r - mu - item_bias[item.index()];
                n += 1;
            }
            if n > 0 {
                user_bias[user.index()] = sum / (lambda_user + n as f64);
            }
        }
        Self {
            mu,
            user_bias,
            item_bias,
            defined: stats.num_ratings > 0,
        }
    }
}

impl RatingPredictor for BiasModel {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !self.defined {
            return None;
        }
        let bu = self.user_bias.get(user.index()).copied().unwrap_or(0.0);
        let bi = self.item_bias.get(item.index()).copied().unwrap_or(0.0);
        Some((self.mu + bu + bi).clamp(1.0, 5.0))
    }

    fn name(&self) -> &'static str {
        "bias-model"
    }
}

/// Item-based k-nearest-neighbour CF with **adjusted cosine** similarity
/// (user-mean-centred, the standard choice for item-item CF):
///
/// `sim(i, j) = Σ_u (r_ui − µ_u)(r_uj − µ_u) / (√Σ(r_ui − µ_u)² √Σ(r_uj − µ_u)²)`
///
/// summed over users who rated both. Prediction: the similarity-weighted
/// mean of the target user's own ratings on the `k` most similar items
/// they have rated, restricted to positive similarities.
#[derive(Debug, Clone)]
pub struct ItemKnn<'a> {
    matrix: &'a RatingMatrix,
    k: usize,
    min_overlap: usize,
}

impl<'a> ItemKnn<'a> {
    /// Creates the predictor (neighbourhood size `k`, minimum co-rater
    /// overlap 2).
    pub fn new(matrix: &'a RatingMatrix, k: usize) -> Self {
        Self {
            matrix,
            k: k.max(1),
            min_overlap: 2,
        }
    }

    /// Adjusted-cosine similarity of two items.
    pub fn item_similarity(&self, a: ItemId, b: ItemId) -> Option<f64> {
        let (mut ia, mut ib) = (
            self.matrix.raters_of(a).peekable(),
            self.matrix.raters_of(b).peekable(),
        );
        // Hoisted out of the merge-join: one slice borrow instead of an
        // `Option` round-trip per co-rater (raters always have a mean).
        let means = self.matrix.user_means();
        let (mut num, mut da, mut db) = (0.0f64, 0.0f64, 0.0f64);
        let mut n = 0usize;
        // Merge-join over the sorted rater lists.
        while let (Some(&(ua, ra)), Some(&(ub, rb))) = (ia.peek(), ib.peek()) {
            match ua.cmp(&ub) {
                std::cmp::Ordering::Less => {
                    ia.next();
                }
                std::cmp::Ordering::Greater => {
                    ib.next();
                }
                std::cmp::Ordering::Equal => {
                    let mu = means[ua.index()];
                    let (xa, xb) = (ra - mu, rb - mu);
                    num += xa * xb;
                    da += xa * xa;
                    db += xb * xb;
                    n += 1;
                    ia.next();
                    ib.next();
                }
            }
        }
        if n < self.min_overlap || da == 0.0 || db == 0.0 {
            return None;
        }
        Some((num / (da.sqrt() * db.sqrt())).clamp(-1.0, 1.0))
    }
}

impl RatingPredictor for ItemKnn<'_> {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        // Neighbours are drawn from the user's own rated items.
        let mut neighbours: Vec<(f64, f64)> = self
            .matrix
            .ratings_of(user)
            .filter(|&(j, _)| j != item)
            .filter_map(|(j, r)| {
                self.item_similarity(item, j)
                    .filter(|&s| s > 0.0)
                    .map(|s| (s, r))
            })
            .collect();
        if neighbours.is_empty() {
            return None;
        }
        neighbours.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite sims"));
        neighbours.truncate(self.k);
        let num: f64 = neighbours.iter().map(|(s, r)| s * r).sum();
        let den: f64 = neighbours.iter().map(|(s, _)| s).sum();
        (den > 0.0).then(|| num / den)
    }

    fn name(&self) -> &'static str {
        "item-knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::RatingMatrixBuilder;

    fn matrix(rows: &[(u32, u32, f64)]) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for &(u, i, s) in rows {
            b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
        }
        b.build().unwrap()
    }

    /// Two "action" items (0, 1) loved by users 0-1, hated by user 2;
    /// one "drama" item (2) with the reverse pattern.
    fn polarised() -> RatingMatrix {
        matrix(&[
            (0, 0, 5.0),
            (0, 1, 4.0),
            (0, 2, 1.0),
            (1, 0, 4.0),
            (1, 1, 5.0),
            (1, 2, 2.0),
            (2, 0, 1.0),
            (2, 1, 2.0),
            (2, 2, 5.0),
        ])
    }

    #[test]
    fn global_mean_is_flat() {
        let m = polarised();
        let g = GlobalMean::fit(&m);
        let expected = m.stats().mean_rating;
        assert_eq!(g.predict(UserId::new(0), ItemId::new(9)), Some(expected));
        assert_eq!(g.predict(UserId::new(9), ItemId::new(0)), Some(expected));
        let empty = GlobalMean::fit(&matrix(&[]));
        assert_eq!(empty.predict(UserId::new(0), ItemId::new(0)), None);
    }

    #[test]
    fn user_and_item_means() {
        let m = polarised();
        let um = UserMean::fit(&m);
        assert_eq!(um.predict(UserId::new(0), ItemId::new(7)), Some(10.0 / 3.0));
        // Unknown user falls back to global.
        assert_eq!(
            um.predict(UserId::new(9), ItemId::new(0)),
            Some(m.stats().mean_rating)
        );
        let im = ItemMean::fit(&m);
        assert_eq!(im.predict(UserId::new(9), ItemId::new(0)), Some(10.0 / 3.0));
        assert_eq!(
            im.predict(UserId::new(0), ItemId::new(7)),
            Some(m.stats().mean_rating)
        );
    }

    #[test]
    fn bias_model_orders_users_and_items() {
        let m = polarised();
        let bm = BiasModel::fit_with(&m, 0.0, 0.0); // undamped for clarity
                                                    // Item 0 is better-liked than item 2 by the raters' deviations…
        let p_item0 = bm.predict(UserId::new(9), ItemId::new(0)).unwrap();
        let p_item2 = bm.predict(UserId::new(9), ItemId::new(2)).unwrap();
        // …both land inside the rating range.
        assert!((1.0..=5.0).contains(&p_item0) && (1.0..=5.0).contains(&p_item2));
        // Damping shrinks magnitudes toward µ.
        let damped = BiasModel::fit_with(&m, 100.0, 100.0);
        let mu = m.stats().mean_rating;
        let d0 = damped.predict(UserId::new(9), ItemId::new(0)).unwrap();
        assert!((d0 - mu).abs() < (p_item0 - mu).abs() + 1e-12);
    }

    #[test]
    fn item_knn_similarity_detects_the_genres() {
        let m = polarised();
        let knn = ItemKnn::new(&m, 5);
        let same = knn.item_similarity(ItemId::new(0), ItemId::new(1)).unwrap();
        let cross = knn.item_similarity(ItemId::new(0), ItemId::new(2)).unwrap();
        assert!(same > 0.0, "co-liked items should correlate: {same}");
        assert!(cross < 0.0, "opposed items should anti-correlate: {cross}");
    }

    #[test]
    fn item_knn_predicts_from_the_user_history() {
        // User 3 rated only item 0 (5.0). Item 1 is similar to item 0, so
        // the prediction for item 1 should be 5.0 (single neighbour).
        let mut rows = vec![
            (0, 0, 5.0),
            (0, 1, 4.0),
            (0, 2, 1.0),
            (1, 0, 4.0),
            (1, 1, 5.0),
            (1, 2, 2.0),
            (2, 0, 1.0),
            (2, 1, 2.0),
            (2, 2, 5.0),
        ];
        rows.push((3, 0, 5.0));
        let m = matrix(&rows);
        let knn = ItemKnn::new(&m, 3);
        let p = knn.predict(UserId::new(3), ItemId::new(1)).unwrap();
        assert_eq!(p, 5.0);
        // Item 2 anti-correlates with everything the user rated ⇒ no
        // positive neighbours ⇒ None.
        assert_eq!(knn.predict(UserId::new(3), ItemId::new(2)), None);
    }

    #[test]
    fn item_knn_edge_cases() {
        let m = polarised();
        let knn = ItemKnn::new(&m, 2);
        // Unknown item: no raters, no similarity, no prediction.
        assert_eq!(knn.predict(UserId::new(0), ItemId::new(9)), None);
        // User with no ratings: nothing to extrapolate from.
        assert_eq!(knn.predict(UserId::new(9), ItemId::new(0)), None);
        // Overlap below min_overlap yields undefined similarity.
        let sparse = matrix(&[(0, 0, 5.0), (0, 1, 4.0), (1, 0, 3.0), (2, 1, 2.0)]);
        let knn = ItemKnn::new(&sparse, 2);
        assert_eq!(knn.item_similarity(ItemId::new(0), ItemId::new(1)), None);
    }

    #[test]
    fn names_are_stable() {
        let m = polarised();
        assert_eq!(GlobalMean::fit(&m).name(), "global-mean");
        assert_eq!(UserMean::fit(&m).name(), "user-mean");
        assert_eq!(ItemMean::fit(&m).name(), "item-mean");
        assert_eq!(BiasModel::fit(&m).name(), "bias-model");
        assert_eq!(ItemKnn::new(&m, 5).name(), "item-knn");
    }
}
