//! Fairness and value of a recommendation package — Definition 3.
//!
//! *"Given a user `u` and a set of recommendations `D`, we define that `D`
//! is fair to `u` if `D` contains at least one data item that belongs to
//! the set of items with the top-k relevance scores for `u`."* Then
//! `fairness(G, D) = |G_D| / |G|` and
//! `value(G, D) = fairness(G, D) · Σ_{i∈D} relevanceG(G, i)`.
//!
//! [`FairnessEvaluator`] precomputes, for every pool item, the bitmask of
//! members whose top-k list contains it. Evaluating a package is then an
//! OR over `|D|` masks plus a popcount — the O(1)-per-item inner loop the
//! brute force needs to enumerate hundreds of millions of combinations
//! (§VI) in reasonable time. Group size is limited to 64 members per
//! evaluator (one machine word); caregiver groups in the paper are far
//! smaller.

use crate::pool::CandidatePool;
use fairrec_types::{FairrecError, Result};

/// Precomputed satisfaction masks for fairness/value evaluation.
#[derive(Debug, Clone)]
pub struct FairnessEvaluator {
    /// `masks[j]`: bit `m` set ⇔ pool item `j` is in member `m`'s top-k.
    masks: Vec<u64>,
    num_members: usize,
    k: usize,
}

impl FairnessEvaluator {
    /// Builds the evaluator for `pool` with per-member lists of length `k`.
    ///
    /// A member whose predictions are all undefined has an empty top-k
    /// list and can never be satisfied; Definition 3 still counts them in
    /// the denominator `|G|` (the conservative reading: an invisible
    /// member is an unfairly treated member).
    ///
    /// # Errors
    /// * `k == 0` — no list, fairness degenerates to 0 everywhere;
    /// * more than 64 members (mask word size).
    pub fn new(pool: &CandidatePool, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(FairrecError::invalid_parameter(
                "k",
                "top-k lists need k ≥ 1",
            ));
        }
        let n = pool.num_members();
        if n > 64 {
            return Err(FairrecError::invalid_parameter(
                "group",
                format!("fairness evaluator supports at most 64 members, got {n}"),
            ));
        }
        let mut masks = vec![0u64; pool.num_items()];
        for member in 0..n {
            for j in pool.top_k_positions(member, k) {
                masks[j] |= 1u64 << member;
            }
        }
        Ok(Self {
            masks,
            num_members: n,
            k,
        })
    }

    /// The `k` the evaluator was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of group members.
    pub fn num_members(&self) -> usize {
        self.num_members
    }

    /// Satisfaction mask of one pool item.
    pub fn item_mask(&self, item_idx: usize) -> u64 {
        self.masks[item_idx]
    }

    /// Bitmask of members for whom `selected` is fair.
    pub fn satisfied_mask(&self, selected: &[usize]) -> u64 {
        selected.iter().fold(0u64, |acc, &j| acc | self.masks[j])
    }

    /// `fairness(G, D)` — Definition 3.
    pub fn fairness(&self, selected: &[usize]) -> f64 {
        debug_assert!(self.num_members > 0);
        self.satisfied_mask(selected).count_ones() as f64 / self.num_members as f64
    }

    /// `value(G, D) = fairness(G, D) · Σ relevanceG` — the objective the
    /// paper's Problem Statement maximises.
    pub fn value(&self, pool: &CandidatePool, selected: &[usize]) -> f64 {
        self.fairness(selected) * pool.sum_group_relevance(selected)
    }

    /// Members (indices into the pool's member list) not yet satisfied by
    /// `selected` — used in explanations.
    pub fn unsatisfied_members(&self, selected: &[usize]) -> Vec<usize> {
        let mask = self.satisfied_mask(selected);
        (0..self.num_members)
            .filter(|&m| mask & (1u64 << m) == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::{ItemId, UserId};

    /// Pool: 3 members, 4 items. Member top-1 lists (k=1):
    ///   member0 → item pos 0; member1 → pos 1; member2 → pos 1.
    fn pool() -> CandidatePool {
        CandidatePool::from_parts(
            (0..3).map(UserId::new).collect(),
            (0..4).map(ItemId::new).collect(),
            vec![
                vec![Some(5.0), Some(1.0), Some(1.0), Some(1.0)],
                vec![Some(1.0), Some(5.0), Some(2.0), Some(1.0)],
                vec![Some(1.0), Some(4.0), Some(3.0), Some(1.0)],
            ],
            vec![2.0, 3.0, 2.5, 1.0],
        )
    }

    #[test]
    fn masks_reflect_top_k_membership() {
        let p = pool();
        let ev = FairnessEvaluator::new(&p, 1).unwrap();
        assert_eq!(ev.item_mask(0), 0b001);
        assert_eq!(ev.item_mask(1), 0b110);
        assert_eq!(ev.item_mask(2), 0b000);
        assert_eq!(ev.item_mask(3), 0b000);
        assert_eq!(ev.k(), 1);
        assert_eq!(ev.num_members(), 3);
    }

    #[test]
    fn fairness_counts_satisfied_fraction() {
        let p = pool();
        let ev = FairnessEvaluator::new(&p, 1).unwrap();
        assert_eq!(ev.fairness(&[]), 0.0);
        assert_eq!(ev.fairness(&[2]), 0.0);
        assert!((ev.fairness(&[0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!((ev.fairness(&[1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ev.fairness(&[0, 1]), 1.0);
        // Redundant satisfaction does not over-count.
        assert_eq!(ev.fairness(&[0, 1, 2, 3]), 1.0);
    }

    #[test]
    fn value_multiplies_fairness_and_relevance_sum() {
        let p = pool();
        let ev = FairnessEvaluator::new(&p, 1).unwrap();
        // D = {0, 1}: fairness 1, Σ = 5.0.
        assert!((ev.value(&p, &[0, 1]) - 5.0).abs() < 1e-12);
        // D = {1, 2}: fairness 2/3, Σ = 5.5.
        assert!((ev.value(&p, &[1, 2]) - 2.0 / 3.0 * 5.5).abs() < 1e-12);
        // A fairer, lower-relevance package can beat an unfair one — the
        // effect the paper's value function is designed to create.
        assert!(ev.value(&p, &[0, 1]) > ev.value(&p, &[1, 2]));
    }

    #[test]
    fn larger_k_widens_satisfaction() {
        let p = pool();
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        // k=2 top lists: member0 {0, then ties 1|2|3 → pos1}; member1
        // {1,2}; member2 {1,2}.
        assert_eq!(ev.item_mask(2), 0b110);
        assert!((ev.fairness(&[2]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unsatisfied_members_listed() {
        let p = pool();
        let ev = FairnessEvaluator::new(&p, 1).unwrap();
        assert_eq!(ev.unsatisfied_members(&[0]), vec![1, 2]);
        assert_eq!(ev.unsatisfied_members(&[0, 1]), Vec::<usize>::new());
    }

    #[test]
    fn members_without_predictions_are_never_satisfied() {
        let p = CandidatePool::from_parts(
            (0..2).map(UserId::new).collect(),
            (0..2).map(ItemId::new).collect(),
            vec![
                vec![Some(5.0), Some(4.0)],
                vec![None, None], // invisible member
            ],
            vec![5.0, 4.0],
        );
        let ev = FairnessEvaluator::new(&p, 2).unwrap();
        assert_eq!(ev.fairness(&[0, 1]), 0.5);
        assert_eq!(ev.unsatisfied_members(&[0, 1]), vec![1]);
    }

    #[test]
    fn parameter_validation() {
        let p = pool();
        assert!(FairnessEvaluator::new(&p, 0).is_err());
        let big = CandidatePool::from_parts(
            (0..65).map(UserId::new).collect(),
            vec![ItemId::new(0)],
            vec![vec![Some(1.0)]; 65],
            vec![1.0],
        );
        assert!(FairnessEvaluator::new(&big, 1).is_err());
    }
}
