//! The dense candidate pool consumed by the selection algorithms.
//!
//! §VI evaluates the heuristic against the brute force over a pool of `m`
//! candidate recommendations. [`CandidatePool`] freezes a
//! [`GroupPredictions`] into that
//! dense form: only items with a **defined group relevance** survive
//! (items nobody can score cannot be ranked at all), optionally truncated
//! to the best `m` by group relevance — the natural way a recommender
//! shortlists before package selection.

use crate::predictions::GroupPredictions;
use fairrec_types::{FairrecError, ItemId, Relevance, Result, TopK, UserId};

/// Dense per-member and group scores over a shortlist of candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePool {
    members: Vec<UserId>,
    items: Vec<ItemId>,
    /// `member_scores[m][j]`; `None` where Equation 1 was undefined for
    /// that member (the item still has a group score via the others).
    member_scores: Vec<Vec<Option<Relevance>>>,
    /// Dense: every pooled item has a group score.
    group_scores: Vec<Relevance>,
}

impl CandidatePool {
    /// Builds the pool from predictions, keeping items with defined group
    /// relevance, optionally truncated to the top `max_items` by group
    /// relevance (ties by ascending item id).
    ///
    /// # Errors
    /// [`FairrecError::InvalidParameter`] if `max_items == Some(0)` or the
    /// resulting pool would be empty.
    pub fn from_predictions(
        predictions: &GroupPredictions,
        max_items: Option<usize>,
    ) -> Result<Self> {
        if max_items == Some(0) {
            return Err(FairrecError::invalid_parameter(
                "max_items",
                "pool must keep at least one item",
            ));
        }
        // Select surviving item positions.
        let scored: Vec<usize> = (0..predictions.num_items())
            .filter(|&j| predictions.group_relevance(j).is_some())
            .collect();
        let keep: Vec<usize> = match max_items {
            Some(m) if m < scored.len() => {
                let mut top = TopK::new(m);
                for &j in &scored {
                    // TopK keys by ItemId for ties; feed positions as ids.
                    top.push(
                        ItemId::new(u32::try_from(j).expect("pool fits in u32")),
                        predictions.group_relevance(j).expect("scored"),
                    );
                }
                let mut keep: Vec<usize> =
                    top.into_items().into_iter().map(|i| i.index()).collect();
                keep.sort_unstable(); // restore item-id order
                keep
            }
            _ => scored,
        };
        if keep.is_empty() {
            return Err(FairrecError::invalid_parameter(
                "pool",
                "no candidate has a defined group relevance",
            ));
        }

        let items: Vec<ItemId> = keep.iter().map(|&j| predictions.items()[j]).collect();
        let member_scores: Vec<Vec<Option<Relevance>>> = (0..predictions.members().len())
            .map(|m| {
                keep.iter()
                    .map(|&j| predictions.member_relevance(m, j))
                    .collect()
            })
            .collect();
        let group_scores: Vec<Relevance> = keep
            .iter()
            .map(|&j| predictions.group_relevance(j).expect("scored"))
            .collect();

        Ok(Self {
            members: predictions.members().to_vec(),
            items,
            member_scores,
            group_scores,
        })
    }

    /// Builds a pool directly from dense parts (tests, benches, MapReduce).
    ///
    /// # Panics
    /// Panics on shape mismatches (internal assembly error).
    pub fn from_parts(
        members: Vec<UserId>,
        items: Vec<ItemId>,
        member_scores: Vec<Vec<Option<Relevance>>>,
        group_scores: Vec<Relevance>,
    ) -> Self {
        assert_eq!(member_scores.len(), members.len(), "one row per member");
        for row in &member_scores {
            assert_eq!(row.len(), items.len(), "one score slot per item");
        }
        assert_eq!(group_scores.len(), items.len());
        assert!(!items.is_empty(), "pool cannot be empty");
        Self {
            members,
            items,
            member_scores,
            group_scores,
        }
    }

    /// Group members.
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// Group size `n = |G|`.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Pooled items (ascending item id).
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Pool size `m`.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Per-member relevance at pool position `item_idx`.
    pub fn member_relevance(&self, member_idx: usize, item_idx: usize) -> Option<Relevance> {
        self.member_scores[member_idx][item_idx]
    }

    /// Group relevance at pool position `item_idx`.
    pub fn group_relevance(&self, item_idx: usize) -> Relevance {
        self.group_scores[item_idx]
    }

    /// All group scores, parallel to [`items`](Self::items).
    pub fn group_scores(&self) -> &[Relevance] {
        &self.group_scores
    }

    /// The per-member top-k list `A_u` as pool *positions* (not item ids),
    /// best first, ties by ascending position.
    pub fn top_k_positions(&self, member_idx: usize, k: usize) -> Vec<usize> {
        let mut top = TopK::new(k);
        for (j, score) in self.member_scores[member_idx].iter().enumerate() {
            if let Some(s) = score {
                top.push(ItemId::new(u32::try_from(j).expect("pool fits u32")), *s);
            }
        }
        top.into_items().into_iter().map(|i| i.index()).collect()
    }

    /// Sum of group relevance over a set of pool positions (the Σ term of
    /// the value function).
    pub fn sum_group_relevance(&self, positions: &[usize]) -> Relevance {
        positions.iter().map(|&j| self.group_scores[j]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictions::GroupPredictions;

    fn preds() -> GroupPredictions {
        // 2 members, 4 items; item 1 unscored for everyone; item 3 scored
        // only by member 1.
        GroupPredictions::from_parts(
            vec![UserId::new(0), UserId::new(1)],
            (0..4).map(ItemId::new).collect(),
            vec![
                vec![Some(4.0), None, Some(1.0), None],
                vec![Some(2.0), None, Some(5.0), Some(3.0)],
            ],
            vec![Some(3.0), None, Some(3.0), Some(3.0)],
        )
    }

    #[test]
    fn unscored_items_are_dropped() {
        let pool = CandidatePool::from_predictions(&preds(), None).unwrap();
        assert_eq!(
            pool.items(),
            &[ItemId::new(0), ItemId::new(2), ItemId::new(3)]
        );
        assert_eq!(pool.num_items(), 3);
        assert_eq!(pool.num_members(), 2);
        assert_eq!(pool.group_relevance(0), 3.0);
        assert_eq!(pool.member_relevance(0, 2), None);
    }

    #[test]
    fn truncation_keeps_best_by_group_score_in_item_order() {
        let p = GroupPredictions::from_parts(
            vec![UserId::new(0)],
            (0..4).map(ItemId::new).collect(),
            vec![vec![Some(1.0), Some(4.0), Some(2.0), Some(3.0)]],
            vec![Some(1.0), Some(4.0), Some(2.0), Some(3.0)],
        );
        let pool = CandidatePool::from_predictions(&p, Some(2)).unwrap();
        // Best two by group score are items 1 (4.0) and 3 (3.0), reported
        // in ascending item order.
        assert_eq!(pool.items(), &[ItemId::new(1), ItemId::new(3)]);
        assert_eq!(pool.group_scores(), &[4.0, 3.0]);
    }

    #[test]
    fn truncation_ties_break_by_item_id() {
        let p = GroupPredictions::from_parts(
            vec![UserId::new(0)],
            (0..3).map(ItemId::new).collect(),
            vec![vec![Some(2.0), Some(2.0), Some(2.0)]],
            vec![Some(2.0), Some(2.0), Some(2.0)],
        );
        let pool = CandidatePool::from_predictions(&p, Some(2)).unwrap();
        assert_eq!(pool.items(), &[ItemId::new(0), ItemId::new(1)]);
    }

    #[test]
    fn empty_pool_is_an_error() {
        let p = GroupPredictions::from_parts(
            vec![UserId::new(0)],
            vec![ItemId::new(0)],
            vec![vec![None]],
            vec![None],
        );
        assert!(CandidatePool::from_predictions(&p, None).is_err());
        assert!(CandidatePool::from_predictions(&preds(), Some(0)).is_err());
    }

    #[test]
    fn top_k_positions_skip_undefined_member_scores() {
        let pool = CandidatePool::from_predictions(&preds(), None).unwrap();
        // Member 0 scores: pos0=4.0, pos1=1.0, pos2=None.
        assert_eq!(pool.top_k_positions(0, 2), vec![0, 1]);
        assert_eq!(pool.top_k_positions(0, 5), vec![0, 1]);
        // Member 1 scores: pos0=2.0, pos1=5.0, pos2=3.0.
        assert_eq!(pool.top_k_positions(1, 2), vec![1, 2]);
    }

    #[test]
    fn sum_group_relevance_over_positions() {
        let pool = CandidatePool::from_predictions(&preds(), None).unwrap();
        assert_eq!(pool.sum_group_relevance(&[0, 2]), 6.0);
        assert_eq!(pool.sum_group_relevance(&[]), 0.0);
    }
}
