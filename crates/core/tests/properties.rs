//! Property-based tests over the whole selection stack: random candidate
//! pools, checked against the paper's formal claims.

use fairrec_core::{
    algorithm1, brute_force, plain_top_z, swap_refine, CandidatePool, FairnessEvaluator,
};
use fairrec_types::{ItemId, UserId};
use proptest::prelude::*;

/// Random dense pool: n members × m items, all member scores defined in
/// [1, 5], group scores the per-item mean (average aggregation).
fn arb_pool() -> impl Strategy<Value = CandidatePool> {
    (2usize..=5, 2usize..=9).prop_flat_map(|(n, m)| {
        proptest::collection::vec(1.0f64..=5.0, n * m).prop_map(move |flat| {
            let member_scores: Vec<Vec<Option<f64>>> = (0..n)
                .map(|u| (0..m).map(|j| Some(flat[u * m + j])).collect())
                .collect();
            let group_scores: Vec<f64> = (0..m)
                .map(|j| (0..n).map(|u| flat[u * m + j]).sum::<f64>() / n as f64)
                .collect();
            CandidatePool::from_parts(
                (0..n as u32).map(UserId::new).collect(),
                (0..m as u32).map(ItemId::new).collect(),
                member_scores,
                group_scores,
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1: z ≥ |G| ⇒ fairness(G, D) = 1 for Algorithm 1's D
    /// (all member predictions defined, k ≥ 1).
    #[test]
    fn proposition_1(pool in arb_pool(), k in 1usize..4) {
        let n = pool.num_members();
        let m = pool.num_items();
        prop_assume!(m >= n); // need enough items for |D| ≥ |G|
        let ev = FairnessEvaluator::new(&pool, k).unwrap();
        for z in n..=m {
            let sel = algorithm1(&pool, z, k);
            prop_assert!(
                (ev.fairness(&sel.positions) - 1.0).abs() < 1e-12,
                "fairness < 1 at n={n} z={z} k={k}"
            );
        }
    }

    /// The exact optimum dominates every heuristic, and swap refinement
    /// never loses value.
    #[test]
    fn exact_dominates_heuristics(pool in arb_pool(), z in 1usize..6, k in 1usize..4) {
        let z = z.min(pool.num_items());
        let ev = FairnessEvaluator::new(&pool, k).unwrap();
        let exact = brute_force(&pool, &ev, z);
        let greedy = algorithm1(&pool, z, k);
        let greedy_value = ev.value(&pool, &greedy.positions);
        prop_assert!(exact.value >= greedy_value - 1e-9,
            "exact {} < greedy {}", exact.value, greedy_value);
        let plain = plain_top_z(&pool, z);
        prop_assert!(exact.value >= ev.value(&pool, &plain.positions) - 1e-9);
        let refined = swap_refine(&pool, &ev, &greedy, 20);
        prop_assert!(refined.value >= greedy_value - 1e-9);
        prop_assert!(exact.value >= refined.value - 1e-9);
    }

    /// Greedy fairness is non-decreasing in z: supersets of selections can
    /// only satisfy more members.
    #[test]
    fn greedy_fairness_monotone_in_z(pool in arb_pool(), k in 1usize..4) {
        let ev = FairnessEvaluator::new(&pool, k).unwrap();
        let mut prev = 0.0f64;
        for z in 1..=pool.num_items() {
            let sel = algorithm1(&pool, z, k);
            let f = ev.fairness(&sel.positions);
            prop_assert!(f >= prev - 1e-12, "fairness dropped at z={z}");
            prev = f;
        }
    }

    /// Algorithm 1 returns min(z, reachable) distinct positions and both
    /// methods return valid pool positions.
    #[test]
    fn selections_are_well_formed(pool in arb_pool(), z in 0usize..8, k in 1usize..4) {
        let ev = FairnessEvaluator::new(&pool, k).unwrap();
        let greedy = algorithm1(&pool, z, k);
        let mut seen = std::collections::HashSet::new();
        for &j in &greedy.positions {
            prop_assert!(j < pool.num_items());
            prop_assert!(seen.insert(j), "duplicate position {j}");
        }
        prop_assert!(greedy.len() <= z.min(pool.num_items()));
        if z > 0 {
            let exact = brute_force(&pool, &ev, z);
            let zz = z.min(pool.num_items());
            prop_assert_eq!(exact.selection.len(), zz);
            // Combinations count = C(m, zz).
            let m = pool.num_items() as u64;
            let mut c = 1u64;
            for i in 0..zz as u64 {
                c = c * (m - i) / (i + 1);
            }
            prop_assert_eq!(exact.combinations, c);
        }
    }

    /// §VI: "the fairness of the produced results are identical in both
    /// cases" — for z ≥ |G| both brute force and heuristic reach
    /// fairness 1 (Proposition 1 makes greedy hit 1; the optimum cannot
    /// do worse because value scales with fairness).
    #[test]
    fn table2_fairness_identical(pool in arb_pool(), k in 2usize..4) {
        let n = pool.num_members();
        prop_assume!(pool.num_items() >= n);
        let ev = FairnessEvaluator::new(&pool, k).unwrap();
        for z in n..=pool.num_items().min(n + 2) {
            let greedy = algorithm1(&pool, z, k);
            let exact = brute_force(&pool, &ev, z);
            let fg = ev.fairness(&greedy.positions);
            let fe = ev.fairness(&exact.selection.positions);
            prop_assert!((fg - 1.0).abs() < 1e-12, "greedy fairness {fg} ≠ 1");
            prop_assert!((fe - 1.0).abs() < 1e-12, "exact fairness {fe} ≠ 1");
        }
    }
}
