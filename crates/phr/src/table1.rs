//! The three patients of the paper's Table I, as reusable fixtures.
//!
//! | Patient | Problem | Medication | Gender | Age |
//! |---|---|---|---|---|
//! | 1 | Acute bronchitis | Ramipril 10 MG Oral Capsule | Female | 40 |
//! | 2 | Chest pains | Niacin 500 MG Extended Release Tablet | Male | 53 |
//! | 3 | Tracheobronchitis, Broken arm | Ramipril 10 MG Oral Capsule | Male | 34 |
//!
//! The fixtures are used by the `caregiver_group` example and by the tests
//! that verify the §V-C worked example end-to-end.

use crate::profile::{Gender, PatientProfile};
use fairrec_ontology::snomed::labels;
use fairrec_ontology::Ontology;
use fairrec_types::UserId;

/// Builds Table I's three patients against `ontology` (which must contain
/// the curated [`clinical_fragment`](fairrec_ontology::snomed::clinical_fragment)
/// labels), assigning them user ids 0, 1, 2.
///
/// # Panics
/// Panics if `ontology` is missing any Table I concept — the fixtures are
/// meaningless without them.
pub fn patients(ontology: &Ontology) -> [PatientProfile; 3] {
    let concept = |label: &str| {
        ontology
            .by_label(label)
            .unwrap_or_else(|| panic!("ontology is missing Table I concept {label:?}"))
    };
    let patient1 = PatientProfile::builder(UserId::new(0))
        .problem(concept(labels::ACUTE_BRONCHITIS))
        .medication("Ramipril 10 MG Oral Capsule")
        .gender(Gender::Female)
        .age(40)
        .build();
    let patient2 = PatientProfile::builder(UserId::new(1))
        .problem(concept(labels::CHEST_PAIN))
        .medication("Niacin 500 MG Extended Release Tablet")
        .gender(Gender::Male)
        .age(53)
        .build();
    let patient3 = PatientProfile::builder(UserId::new(2))
        .problem(concept(labels::TRACHEOBRONCHITIS))
        .problem(concept(labels::BROKEN_ARM))
        .medication("Ramipril 10 MG Oral Capsule")
        .gender(Gender::Male)
        .age(34)
        .build();
    [patient1, patient2, patient3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_ontology::snomed::clinical_fragment;

    #[test]
    fn fixtures_match_table1() {
        let ont = clinical_fragment();
        let [p1, p2, p3] = patients(&ont);
        assert_eq!(p1.user, UserId::new(0));
        assert_eq!(p1.problems.len(), 1);
        assert_eq!(p1.gender, Gender::Female);
        assert_eq!(p1.age, Some(40));
        assert_eq!(p2.age, Some(53));
        assert_eq!(p3.problems.len(), 2);
        assert_eq!(p3.age, Some(34));
        assert_eq!(p1.medications, p3.medications);
        assert_ne!(p1.medications, p2.medications);
    }

    #[test]
    fn table1_semantic_distances_via_fixtures() {
        let ont = clinical_fragment();
        let [p1, p2, p3] = patients(&ont);
        // §V-C worked example, expressed through the fixtures.
        assert_eq!(ont.path_len(p1.problems[0], p2.problems[0]), 5);
        assert_eq!(ont.path_len(p1.problems[0], p3.problems[0]), 2);
    }
}
