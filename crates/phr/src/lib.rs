//! Personal Health Record (PHR) substrate.
//!
//! The paper's platform is built around a PHR system (iPHR): *"users can
//! record and manage their problems, medication, allergies, procedures,
//! laboratory results etc. As soon as a new problem is selected, behind the
//! scenes, the corresponding SNOMED-CT term is saved"* (§II). The
//! recommendation engine consumes exactly the profile fields of Table I —
//! problems (ontology-coded), medications, gender, procedures, age.
//!
//! This crate models that record:
//!
//! * [`PatientProfile`] / [`ProfileBuilder`] — one patient's profile,
//!   problems held as [`ConceptId`]s into a
//!   [`fairrec_ontology::Ontology`],
//! * [`PhrStore`] — the per-user profile registry,
//! * [`render_profile`] — the §V-B textification (*"we consider all the
//!   information contained in a profile as a single document"*),
//! * [`table1`] — the three patients of the paper's Table I as reusable
//!   fixtures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod correspondence;
mod profile;
mod store;
pub mod table1;
mod text;

pub use correspondence::{correspondence, CorrespondenceReport, RelatedProblems};
pub use profile::{Gender, PatientProfile, ProfileBuilder};
pub use store::PhrStore;
pub use text::render_profile;

pub use fairrec_types::{ConceptId, UserId};
