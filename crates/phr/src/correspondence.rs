//! Profile correspondence analysis (extension — the paper's future work:
//! *"a reasoning engine to identify correspondences in patient
//! profiles"*).
//!
//! Given two profiles, the analysis reports every axis on which they
//! align:
//!
//! * **shared problems** — identical ontology concepts,
//! * **related problems** — concept pairs whose lowest common ancestor is
//!   deep enough to be clinically meaningful (an LCA at the root or at
//!   "Clinical finding" relates everything to everything and is noise),
//! * **shared medications** — case-insensitive string match,
//! * **demographics** — same gender / same age decade.
//!
//! The report powers caregiver-facing explanations ("these two patients
//! both sit in the bronchitis family") and is the symbolic counterpart of
//! the numeric [`SemanticSimilarity`](https://docs.rs/fairrec-similarity)
//! score.

use crate::profile::PatientProfile;
use fairrec_ontology::Ontology;
use fairrec_types::ConceptId;

/// A pair of distinct-but-related problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelatedProblems {
    /// Problem from the first profile.
    pub a: ConceptId,
    /// Problem from the second profile.
    pub b: ConceptId,
    /// Their lowest common ancestor.
    pub shared_ancestor: ConceptId,
    /// Tree distance between `a` and `b`.
    pub distance: u32,
}

/// The full correspondence report for two profiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorrespondenceReport {
    /// Problems present in both profiles.
    pub shared_problems: Vec<ConceptId>,
    /// Distinct problem pairs with a meaningful shared ancestor, sorted by
    /// ascending distance (closest first).
    pub related_problems: Vec<RelatedProblems>,
    /// Medications present in both profiles (first profile's spelling).
    pub shared_medications: Vec<String>,
    /// Same recorded gender (and it is not `Unknown`).
    pub same_gender: bool,
    /// Same age decade (both recorded).
    pub same_age_decade: bool,
}

impl CorrespondenceReport {
    /// Whether any axis aligned at all.
    pub fn is_empty(&self) -> bool {
        self.shared_problems.is_empty()
            && self.related_problems.is_empty()
            && self.shared_medications.is_empty()
            && !self.same_gender
            && !self.same_age_decade
    }
}

/// Analyses two profiles against `ontology`.
///
/// `min_ancestor_depth` is the minimum depth of a shared ancestor for a
/// problem pair to count as *related* (depth 2 in the curated fragment
/// means "same body-system family"). Shared (identical) problems are
/// reported separately and never duplicated as related pairs.
pub fn correspondence(
    first: &PatientProfile,
    second: &PatientProfile,
    ontology: &Ontology,
    min_ancestor_depth: u32,
) -> CorrespondenceReport {
    let mut report = CorrespondenceReport::default();

    for &p in &first.problems {
        if second.problems.contains(&p) {
            report.shared_problems.push(p);
        }
    }
    for &a in &first.problems {
        for &b in &second.problems {
            if a == b {
                continue;
            }
            let lca = ontology.lca(a, b);
            if ontology.depth(lca) >= min_ancestor_depth {
                report.related_problems.push(RelatedProblems {
                    a,
                    b,
                    shared_ancestor: lca,
                    distance: ontology.path_len(a, b),
                });
            }
        }
    }
    report
        .related_problems
        .sort_by_key(|r| (r.distance, r.a, r.b));

    for med in &first.medications {
        if second
            .medications
            .iter()
            .any(|m| m.eq_ignore_ascii_case(med))
        {
            report.shared_medications.push(med.clone());
        }
    }

    report.same_gender =
        first.gender == second.gender && first.gender != crate::profile::Gender::Unknown;
    report.same_age_decade = match (first.age_bucket(), second.age_bucket()) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Gender;
    use crate::table1;
    use fairrec_ontology::snomed::{clinical_fragment, labels};
    use fairrec_types::UserId;

    #[test]
    fn table1_patients_1_and_3_correspond_on_problems_and_medication() {
        let ont = clinical_fragment();
        let [p1, _, p3] = table1::patients(&ont);
        let report = correspondence(&p1, &p3, &ont, 2);
        assert!(report.shared_problems.is_empty());
        // Acute bronchitis ↔ tracheobronchitis share the Bronchitis family.
        assert_eq!(report.related_problems.len(), 1);
        let rel = report.related_problems[0];
        assert_eq!(ont.concept(rel.shared_ancestor).label, "Bronchitis");
        assert_eq!(rel.distance, 2);
        assert_eq!(
            report.shared_medications,
            vec!["Ramipril 10 MG Oral Capsule"]
        );
        assert!(!report.same_gender);
        assert!(!report.same_age_decade);
        assert!(!report.is_empty());
    }

    #[test]
    fn table1_patients_1_and_2_have_no_meaningful_correspondence() {
        let ont = clinical_fragment();
        let [p1, p2, _] = table1::patients(&ont);
        // Their problems' LCA is "Clinical finding" (depth 1) — below the
        // depth-2 bar, so nothing relates.
        let report = correspondence(&p1, &p2, &ont, 2);
        assert!(report.is_empty());
        // Lowering the bar to 1 admits the weak relation.
        let weak = correspondence(&p1, &p2, &ont, 1);
        assert_eq!(weak.related_problems.len(), 1);
        assert_eq!(
            weak.related_problems[0].distance, 5,
            "the §V-C worked distance"
        );
    }

    #[test]
    fn identical_problems_are_shared_not_related() {
        let ont = clinical_fragment();
        let acute = ont.by_label(labels::ACUTE_BRONCHITIS).unwrap();
        let a = PatientProfile::builder(UserId::new(0))
            .problem(acute)
            .build();
        let b = PatientProfile::builder(UserId::new(1))
            .problem(acute)
            .build();
        let report = correspondence(&a, &b, &ont, 2);
        assert_eq!(report.shared_problems, vec![acute]);
        assert!(report.related_problems.is_empty());
    }

    #[test]
    fn medications_match_case_insensitively() {
        let ont = clinical_fragment();
        let a = PatientProfile::builder(UserId::new(0))
            .medication("Aspirin 100 MG")
            .build();
        let b = PatientProfile::builder(UserId::new(1))
            .medication("ASPIRIN 100 mg")
            .build();
        let report = correspondence(&a, &b, &ont, 2);
        assert_eq!(report.shared_medications, vec!["Aspirin 100 MG"]);
    }

    #[test]
    fn demographics() {
        let ont = clinical_fragment();
        let mk = |u: u32, g: Gender, age: u8| {
            PatientProfile::builder(UserId::new(u))
                .gender(g)
                .age(age)
                .build()
        };
        let r = correspondence(
            &mk(0, Gender::Female, 41),
            &mk(1, Gender::Female, 47),
            &ont,
            2,
        );
        assert!(r.same_gender && r.same_age_decade);
        let r = correspondence(
            &mk(0, Gender::Female, 41),
            &mk(1, Gender::Male, 43),
            &ont,
            2,
        );
        assert!(!r.same_gender && r.same_age_decade);
        // Unknown gender never counts as a correspondence.
        let r = correspondence(
            &mk(0, Gender::Unknown, 20),
            &mk(1, Gender::Unknown, 21),
            &ont,
            2,
        );
        assert!(!r.same_gender);
    }

    #[test]
    fn related_pairs_sort_by_distance() {
        let ont = clinical_fragment();
        let get = |l: &str| ont.by_label(l).unwrap();
        let a = PatientProfile::builder(UserId::new(0))
            .problem(get(labels::ACUTE_BRONCHITIS))
            .build();
        let b = PatientProfile::builder(UserId::new(1))
            .problem(get("Pneumonia"))
            .problem(get(labels::TRACHEOBRONCHITIS))
            .build();
        let report = correspondence(&a, &b, &ont, 2);
        assert_eq!(report.related_problems.len(), 2);
        assert!(report.related_problems[0].distance <= report.related_problems[1].distance);
        assert_eq!(report.related_problems[0].distance, 2); // tracheobronchitis
    }
}
