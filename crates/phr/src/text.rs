//! Profile textification (§V-B).
//!
//! *"Towards exploiting user profiles, we consider all the information
//! contained in a profile as a single document."* The rendering below is
//! that document: problem labels are resolved through the ontology,
//! medications/procedures/notes are included verbatim, gender becomes its
//! token, and age is bucketed to decades (see
//! [`PatientProfile::age_bucket`]).
//!
//! Field names themselves ("problem", "medication", …) are *not* emitted:
//! they would appear in every document and only add noise for tf-idf (a
//! ubiquitous term's idf is 0, but why pay the vocabulary slot).

use crate::profile::PatientProfile;
use fairrec_ontology::Ontology;

/// Renders a profile into the single document of §V-B.
pub fn render_profile(profile: &PatientProfile, ontology: &Ontology) -> String {
    // Pre-size: labels + meds + procs + notes + gender + age.
    let mut doc = String::with_capacity(128);
    for &problem in &profile.problems {
        push_part(&mut doc, &ontology.concept(problem).label);
    }
    for med in &profile.medications {
        push_part(&mut doc, med);
    }
    for proc_ in &profile.procedures {
        push_part(&mut doc, proc_);
    }
    push_part(&mut doc, profile.gender.as_token());
    if let Some(bucket) = profile.age_bucket() {
        push_part(&mut doc, &format!("age{bucket}"));
    }
    for note in &profile.notes {
        push_part(&mut doc, note);
    }
    doc
}

fn push_part(doc: &mut String, part: &str) {
    if part.is_empty() {
        return;
    }
    if !doc.is_empty() {
        doc.push(' ');
    }
    doc.push_str(part);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Gender, PatientProfile};
    use fairrec_ontology::snomed::{clinical_fragment, labels};
    use fairrec_types::UserId;

    #[test]
    fn renders_table1_patient1() {
        let ont = clinical_fragment();
        let p = PatientProfile::builder(UserId::new(0))
            .problem(ont.by_label(labels::ACUTE_BRONCHITIS).unwrap())
            .medication("Ramipril 10 MG Oral Capsule")
            .gender(Gender::Female)
            .age(40)
            .build();
        let doc = render_profile(&p, &ont);
        assert_eq!(
            doc,
            "Acute bronchitis Ramipril 10 MG Oral Capsule female age40s"
        );
    }

    #[test]
    fn empty_fields_are_skipped() {
        let ont = clinical_fragment();
        let p = PatientProfile::builder(UserId::new(0)).build();
        // Only the (unknown) gender token remains.
        assert_eq!(render_profile(&p, &ont), "unknown");
    }

    #[test]
    fn notes_are_appended() {
        let ont = clinical_fragment();
        let p = PatientProfile::builder(UserId::new(0))
            .gender(Gender::Male)
            .note("sleeping badly after chemo")
            .build();
        assert_eq!(render_profile(&p, &ont), "male sleeping badly after chemo");
    }

    #[test]
    fn shared_medication_words_overlap_across_rendered_profiles() {
        // The §V-B pipeline depends on shared words; verify rendering makes
        // Table I patients 1 and 3 overlap (both take Ramipril).
        let ont = clinical_fragment();
        let p1 = PatientProfile::builder(UserId::new(0))
            .problem(ont.by_label(labels::ACUTE_BRONCHITIS).unwrap())
            .medication("Ramipril 10 MG Oral Capsule")
            .gender(Gender::Female)
            .age(40)
            .build();
        let p3 = PatientProfile::builder(UserId::new(2))
            .problem(ont.by_label(labels::TRACHEOBRONCHITIS).unwrap())
            .problem(ont.by_label(labels::BROKEN_ARM).unwrap())
            .medication("Ramipril 10 MG Oral Capsule")
            .gender(Gender::Male)
            .age(34)
            .build();
        let (d1, d3) = (render_profile(&p1, &ont), render_profile(&p3, &ont));
        assert!(d1.contains("Ramipril") && d3.contains("Ramipril"));
        assert!(d3.contains("Tracheobronchitis"));
    }
}
