//! Patient profiles.

use fairrec_types::{ConceptId, UserId};

/// Administrative gender, as recorded in the PHR (Table I carries
/// male/female; the type is future-proofed with `Other`/`Unknown`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Gender {
    /// Female.
    Female,
    /// Male.
    Male,
    /// Any other recorded gender.
    Other,
    /// Not recorded.
    #[default]
    Unknown,
}

impl Gender {
    /// Lower-case token used when textifying profiles.
    pub fn as_token(self) -> &'static str {
        match self {
            Self::Female => "female",
            Self::Male => "male",
            Self::Other => "other",
            Self::Unknown => "unknown",
        }
    }
}

/// One patient's PHR profile — the fields of the paper's Table I.
///
/// Problems are ontology concepts (*"the corresponding SNOMED-CT term is
/// saved at the database"*, §II); medications and procedures are free-text
/// strings as they appear in the record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PatientProfile {
    /// The owning user.
    pub user: UserId,
    /// Ontology-coded health problems.
    pub problems: Vec<ConceptId>,
    /// Medication strings (e.g. `"Ramipril 10 MG Oral Capsule"`).
    pub medications: Vec<String>,
    /// Procedure strings.
    pub procedures: Vec<String>,
    /// Administrative gender.
    pub gender: Gender,
    /// Age in years, when recorded.
    pub age: Option<u8>,
    /// Free-text notes (diary entries, therapy remarks).
    pub notes: Vec<String>,
}

impl PatientProfile {
    /// Starts building a profile for `user`.
    pub fn builder(user: UserId) -> ProfileBuilder {
        ProfileBuilder {
            profile: PatientProfile {
                user,
                ..Default::default()
            },
        }
    }

    /// Whether the profile records no clinical content at all.
    pub fn is_clinically_empty(&self) -> bool {
        self.problems.is_empty()
            && self.medications.is_empty()
            && self.procedures.is_empty()
            && self.notes.is_empty()
    }

    /// Age bucketed to decades (`40 → "40s"`), the granularity used when
    /// textifying profiles: exact ages would almost never match across
    /// patients, while decades carry cohort signal.
    pub fn age_bucket(&self) -> Option<String> {
        self.age.map(|a| format!("{}s", (a / 10) * 10))
    }
}

/// Fluent construction of [`PatientProfile`].
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    profile: PatientProfile,
}

impl ProfileBuilder {
    /// Adds an ontology-coded problem.
    pub fn problem(mut self, concept: ConceptId) -> Self {
        self.profile.problems.push(concept);
        self
    }

    /// Adds several problems.
    pub fn problems<I: IntoIterator<Item = ConceptId>>(mut self, concepts: I) -> Self {
        self.profile.problems.extend(concepts);
        self
    }

    /// Adds a medication string.
    pub fn medication(mut self, med: impl Into<String>) -> Self {
        self.profile.medications.push(med.into());
        self
    }

    /// Adds a procedure string.
    pub fn procedure(mut self, proc_: impl Into<String>) -> Self {
        self.profile.procedures.push(proc_.into());
        self
    }

    /// Sets the gender.
    pub fn gender(mut self, gender: Gender) -> Self {
        self.profile.gender = gender;
        self
    }

    /// Sets the age.
    pub fn age(mut self, age: u8) -> Self {
        self.profile.age = Some(age);
        self
    }

    /// Adds a free-text note.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.profile.notes.push(note.into());
        self
    }

    /// Finishes the profile. Problem lists are de-duplicated (a problem
    /// recorded twice is still one problem) while preserving first-seen
    /// order.
    pub fn build(mut self) -> PatientProfile {
        let mut seen = std::collections::HashSet::new();
        self.profile.problems.retain(|c| seen.insert(*c));
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_all_fields() {
        let p = PatientProfile::builder(UserId::new(1))
            .problem(ConceptId::new(10))
            .problems([ConceptId::new(11), ConceptId::new(12)])
            .medication("Ramipril 10 MG Oral Capsule")
            .procedure("Appendectomy")
            .gender(Gender::Female)
            .age(40)
            .note("therapy going well")
            .build();
        assert_eq!(p.user, UserId::new(1));
        assert_eq!(p.problems.len(), 3);
        assert_eq!(p.medications, vec!["Ramipril 10 MG Oral Capsule"]);
        assert_eq!(p.procedures, vec!["Appendectomy"]);
        assert_eq!(p.gender, Gender::Female);
        assert_eq!(p.age, Some(40));
        assert!(!p.is_clinically_empty());
    }

    #[test]
    fn duplicate_problems_are_dropped_preserving_order() {
        let p = PatientProfile::builder(UserId::new(0))
            .problems([
                ConceptId::new(5),
                ConceptId::new(3),
                ConceptId::new(5),
                ConceptId::new(7),
            ])
            .build();
        assert_eq!(
            p.problems,
            vec![ConceptId::new(5), ConceptId::new(3), ConceptId::new(7)]
        );
    }

    #[test]
    fn empty_profile_is_clinically_empty() {
        let p = PatientProfile::builder(UserId::new(2))
            .gender(Gender::Male)
            .age(53)
            .build();
        assert!(p.is_clinically_empty());
    }

    #[test]
    fn age_buckets_to_decades() {
        let mk = |age| PatientProfile::builder(UserId::new(0)).age(age).build();
        assert_eq!(mk(40).age_bucket().as_deref(), Some("40s"));
        assert_eq!(mk(49).age_bucket().as_deref(), Some("40s"));
        assert_eq!(mk(53).age_bucket().as_deref(), Some("50s"));
        assert_eq!(mk(7).age_bucket().as_deref(), Some("0s"));
        let none = PatientProfile::builder(UserId::new(0)).build();
        assert_eq!(none.age_bucket(), None);
    }

    #[test]
    fn gender_tokens() {
        assert_eq!(Gender::Female.as_token(), "female");
        assert_eq!(Gender::Male.as_token(), "male");
        assert_eq!(Gender::Other.as_token(), "other");
        assert_eq!(Gender::Unknown.as_token(), "unknown");
        assert_eq!(Gender::default(), Gender::Unknown);
    }
}
