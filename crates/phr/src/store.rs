//! The per-user profile registry.

use crate::profile::PatientProfile;
use fairrec_types::{FairrecError, Result, UserId};

/// Registry of patient profiles, indexed densely by [`UserId`].
///
/// The recommender reads profiles far more often than the PHR writes them,
/// so the store is a plain dense vector: O(1) lookup, cache-friendly
/// iteration, and no locking (shared-state concurrency, where needed,
/// wraps the whole store).
#[derive(Debug, Default, Clone)]
pub struct PhrStore {
    profiles: Vec<Option<PatientProfile>>,
}

impl PhrStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store pre-sized for `n` users.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            profiles: Vec::with_capacity(n),
        }
    }

    /// Inserts or replaces the profile of `profile.user`. Returns the
    /// previous profile, if any.
    pub fn upsert(&mut self, profile: PatientProfile) -> Option<PatientProfile> {
        let idx = profile.user.index();
        if idx >= self.profiles.len() {
            self.profiles.resize(idx + 1, None);
        }
        self.profiles[idx].replace(profile)
    }

    /// The profile of `user`, if registered.
    pub fn get(&self, user: UserId) -> Option<&PatientProfile> {
        self.profiles.get(user.index())?.as_ref()
    }

    /// The profile of `user`, or [`FairrecError::UnknownUser`].
    ///
    /// # Errors
    /// When no profile is registered for `user`.
    pub fn get_required(&self, user: UserId) -> Result<&PatientProfile> {
        self.get(user).ok_or(FairrecError::UnknownUser { user })
    }

    /// Whether `user` has a profile.
    pub fn contains(&self, user: UserId) -> bool {
        self.get(user).is_some()
    }

    /// Number of registered profiles.
    pub fn len(&self) -> usize {
        self.profiles.iter().filter(|p| p.is_some()).count()
    }

    /// Whether the store has no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterator over registered profiles in user-id order.
    pub fn iter(&self) -> impl Iterator<Item = &PatientProfile> {
        self.profiles.iter().filter_map(|p| p.as_ref())
    }

    /// Registered user ids in order.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        self.iter().map(|p| p.user)
    }
}

impl FromIterator<PatientProfile> for PhrStore {
    fn from_iter<T: IntoIterator<Item = PatientProfile>>(iter: T) -> Self {
        let mut store = Self::new();
        for p in iter {
            store.upsert(p);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Gender;

    fn profile(user: u32, age: u8) -> PatientProfile {
        PatientProfile::builder(UserId::new(user))
            .gender(Gender::Other)
            .age(age)
            .build()
    }

    #[test]
    fn upsert_get_roundtrip() {
        let mut s = PhrStore::new();
        assert!(s.upsert(profile(3, 40)).is_none());
        assert_eq!(s.get(UserId::new(3)).unwrap().age, Some(40));
        assert!(s.get(UserId::new(0)).is_none());
        assert!(s.get(UserId::new(99)).is_none());
        assert!(s.contains(UserId::new(3)));
    }

    #[test]
    fn upsert_replaces_and_returns_previous() {
        let mut s = PhrStore::new();
        s.upsert(profile(1, 30));
        let old = s.upsert(profile(1, 31)).unwrap();
        assert_eq!(old.age, Some(30));
        assert_eq!(s.get(UserId::new(1)).unwrap().age, Some(31));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_required_errors_on_missing() {
        let s = PhrStore::new();
        match s.get_required(UserId::new(5)) {
            Err(FairrecError::UnknownUser { user }) => assert_eq!(user, UserId::new(5)),
            other => panic!("expected UnknownUser, got {other:?}"),
        }
    }

    #[test]
    fn iteration_is_in_user_order_and_skips_gaps() {
        let s: PhrStore = [profile(4, 44), profile(1, 11)].into_iter().collect();
        let ids: Vec<_> = s.user_ids().collect();
        assert_eq!(ids, vec![UserId::new(1), UserId::new(4)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_store() {
        let s = PhrStore::with_capacity(10);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
