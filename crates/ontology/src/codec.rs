//! Line-oriented text persistence for ontologies.
//!
//! Format — one concept per line, tab-separated, parents before children
//! (which the builder guarantees on write and the loader enforces on read):
//!
//! ```text
//! # comment / blank lines ignored
//! <id>\t<parent_id|->\t<code>\t<label>
//! ```
//!
//! Ids are the dense internal ids, so the file is also a readable dump of
//! the structure. The root uses `-` as its parent marker.

use crate::hierarchy::{Ontology, OntologyBuilder};
use fairrec_types::{ConceptId, FairrecError, Result};
use std::io::{BufRead, Write};

/// Serialises `ontology` into `out`.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_ontology<W: Write>(ontology: &Ontology, out: &mut W) -> Result<()> {
    writeln!(out, "# fairrec ontology v1: id\tparent\tcode\tlabel")?;
    for c in ontology.iter() {
        match ontology.parent(c.id) {
            Some(p) => writeln!(out, "{}\t{}\t{}\t{}", c.id.raw(), p.raw(), c.code, c.label)?,
            None => writeln!(out, "{}\t-\t{}\t{}", c.id.raw(), c.code, c.label)?,
        }
    }
    Ok(())
}

/// Parses an ontology previously written by [`write_ontology`].
///
/// # Errors
/// Returns [`FairrecError::Parse`] on malformed lines, non-contiguous ids,
/// duplicate roots, or forward parent references.
pub fn read_ontology<R: BufRead>(input: R) -> Result<Ontology> {
    let mut builder: Option<OntologyBuilder> = None;
    let mut expected_id: u32 = 0;

    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.splitn(4, '\t');
        let (id, parent, code, label) =
            match (fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
                _ => {
                    return Err(FairrecError::parse_at(
                        lineno,
                        format!("expected 4 tab-separated fields, got {line:?}"),
                    ))
                }
            };
        let id: u32 = id
            .parse()
            .map_err(|_| FairrecError::parse_at(lineno, format!("bad id {id:?}")))?;
        if id != expected_id {
            return Err(FairrecError::parse_at(
                lineno,
                format!("ids must be contiguous from 0: expected {expected_id}, got {id}"),
            ));
        }
        expected_id += 1;

        if parent == "-" {
            if builder.is_some() {
                return Err(FairrecError::parse_at(lineno, "second root encountered"));
            }
            builder = Some(OntologyBuilder::new(code, label));
        } else {
            let parent: u32 = parent
                .parse()
                .map_err(|_| FairrecError::parse_at(lineno, format!("bad parent id {parent:?}")))?;
            if parent >= id {
                return Err(FairrecError::parse_at(
                    lineno,
                    format!("parent {parent} must precede child {id}"),
                ));
            }
            let b = builder.as_mut().ok_or_else(|| {
                FairrecError::parse_at(lineno, "first concept must be the root (parent `-`)")
            })?;
            b.add_child(ConceptId::new(parent), code, label)
                .map_err(|e| FairrecError::parse_at(lineno, e.to_string()))?;
        }
    }
    builder
        .map(OntologyBuilder::build)
        .ok_or_else(|| FairrecError::Parse {
            line: None,
            message: "empty ontology file".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::OntologyGenerator;
    use crate::snomed::clinical_fragment;
    use std::io::BufReader;

    fn round_trip(o: &Ontology) -> Ontology {
        let mut buf = Vec::new();
        write_ontology(o, &mut buf).unwrap();
        read_ontology(BufReader::new(buf.as_slice())).unwrap()
    }

    #[test]
    fn clinical_fragment_round_trips() {
        let o = clinical_fragment();
        let o2 = round_trip(&o);
        assert_eq!(o.len(), o2.len());
        for (a, b) in o.iter().zip(o2.iter()) {
            assert_eq!(a, b);
            assert_eq!(o.parent(a.id), o2.parent(b.id));
        }
        assert_eq!(o.max_depth(), o2.max_depth());
    }

    #[test]
    fn generated_tree_round_trips() {
        let o = OntologyGenerator {
            num_concepts: 400,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let o2 = round_trip(&o);
        for c in o.iter() {
            assert_eq!(o2.by_code(&c.code), Some(c.id));
            assert_eq!(o.depth(c.id), o2.depth(c.id));
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n0\t-\tR\troot\n\n# mid comment\n1\t0\tA\talpha\n";
        let o = read_ontology(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(o.len(), 2);
        assert_eq!(o.by_code("A").map(|c| o.depth(c)), Some(1));
    }

    #[test]
    fn labels_may_contain_spaces_and_tabs_beyond_field_4() {
        // splitn(4) keeps everything after the third tab as the label.
        let text = "0\t-\tR\tSNOMED CT Concept\n1\t0\tA\tlabel with\ttab\n";
        let o = read_ontology(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(o.concept(ConceptId::new(1)).label, "label with\ttab");
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        let cases = [
            ("0\t-\tR\n", "expected 4"),       // too few fields
            ("x\t-\tR\troot\n", "bad id"),     // non-numeric id
            ("1\t-\tR\troot\n", "contiguous"), // ids not from 0
            ("0\t-\tR\troot\n1\t-\tS\tsecond\n", "second root"),
            ("0\t0\tR\troot\n", "must precede"), // self-parent, no root marker
            ("0\t-\tR\troot\n1\t5\tA\ta\n", "must precede"), // forward parent
            ("0\t-\tR\troot\n1\tz\tA\ta\n", "bad parent"),
            ("", "empty ontology"),
        ];
        for (text, needle) in cases {
            let err = read_ontology(BufReader::new(text.as_bytes())).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "{text:?} → {msg:?} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn duplicate_code_reported_at_its_line() {
        let text = "0\t-\tR\troot\n1\t0\tA\talpha\n2\t0\tA\tbeta\n";
        let err = read_ontology(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("line 3"));
    }
}
