//! The is-a tree and its structural queries.
//!
//! The paper's semantic similarity needs exactly one structural primitive:
//! *"the shortest path that connects two nodes in the tree"* (§V-C-1). On a
//! tree the shortest path between `a` and `b` always runs through their
//! lowest common ancestor, so
//! `path_len(a, b) = depth(a) + depth(b) − 2·depth(lca(a, b))`, computed in
//! O(depth) without any search frontier. Depths are cached at build time.

use crate::concept::Concept;
use fairrec_types::{ConceptId, FairrecError, Result};
use std::collections::HashMap;

/// Immutable is-a tree of clinical concepts.
///
/// Construct with [`OntologyBuilder`] or load via [`crate::codec`].
#[derive(Debug, Clone)]
pub struct Ontology {
    concepts: Vec<Concept>,
    /// `parent[i]` is `None` exactly for the root.
    parent: Vec<Option<ConceptId>>,
    /// Children in insertion order.
    children: Vec<Vec<ConceptId>>,
    /// Cached depth; root has depth 0.
    depth: Vec<u32>,
    /// External code → id.
    by_code: HashMap<String, ConceptId>,
    /// Lower-cased label → id.
    by_label: HashMap<String, ConceptId>,
    max_depth: u32,
}

impl Ontology {
    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology holds no concepts. A built ontology always has
    /// at least its root, so this is only true for the degenerate default.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// The root concept id.
    ///
    /// # Panics
    /// Panics on an empty ontology (builders always produce a root).
    pub fn root(&self) -> ConceptId {
        assert!(!self.is_empty(), "empty ontology has no root");
        ConceptId::new(0)
    }

    /// The concept record for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids come from this ontology's own
    /// lookups, so an out-of-range id is a logic error.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Looks up a concept by its external code.
    pub fn by_code(&self, code: &str) -> Option<ConceptId> {
        self.by_code.get(code).copied()
    }

    /// Looks up a concept by label, case-insensitively.
    pub fn by_label(&self, label: &str) -> Option<ConceptId> {
        self.by_label.get(&label.to_lowercase()).copied()
    }

    /// The parent of `id`, or `None` for the root.
    pub fn parent(&self, id: ConceptId) -> Option<ConceptId> {
        self.parent[id.index()]
    }

    /// The children of `id` in insertion order.
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        &self.children[id.index()]
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: ConceptId) -> u32 {
        self.depth[id.index()]
    }

    /// The largest depth of any concept.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Whether `a` is an ancestor of `b` (inclusive: every node is its own
    /// ancestor).
    pub fn is_ancestor(&self, a: ConceptId, b: ConceptId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, a: ConceptId, b: ConceptId) -> ConceptId {
        let (mut x, mut y) = (a, b);
        // Lift the deeper node first, then walk both up in lock-step.
        while self.depth(x) > self.depth(y) {
            x = self.parent(x).expect("deeper node must have a parent");
        }
        while self.depth(y) > self.depth(x) {
            y = self.parent(y).expect("deeper node must have a parent");
        }
        while x != y {
            x = self.parent(x).expect("nodes at equal depth above root");
            y = self.parent(y).expect("nodes at equal depth above root");
        }
        x
    }

    /// Length (edge count) of the shortest path between `a` and `b` —
    /// the quantity driving the paper's semantic similarity.
    pub fn path_len(&self, a: ConceptId, b: ConceptId) -> u32 {
        let l = self.lca(a, b);
        self.depth(a) + self.depth(b) - 2 * self.depth(l)
    }

    /// The shortest path itself, `a → … → lca → … → b` inclusive, for
    /// explanation output.
    pub fn path(&self, a: ConceptId, b: ConceptId) -> Vec<ConceptId> {
        let l = self.lca(a, b);
        let mut up = Vec::new();
        let mut cur = a;
        while cur != l {
            up.push(cur);
            cur = self.parent(cur).expect("below lca");
        }
        up.push(l);
        let mut down = Vec::new();
        cur = b;
        while cur != l {
            down.push(cur);
            cur = self.parent(cur).expect("below lca");
        }
        up.extend(down.into_iter().rev());
        up
    }

    /// Iterator over all concepts in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Concept> {
        self.concepts.iter()
    }

    /// Ids of all leaf concepts (no children), id order.
    pub fn leaves(&self) -> Vec<ConceptId> {
        self.concepts
            .iter()
            .filter(|c| self.children[c.id.index()].is_empty())
            .map(|c| c.id)
            .collect()
    }
}

/// Validated, incremental construction of an [`Ontology`].
///
/// ```
/// use fairrec_ontology::OntologyBuilder;
///
/// let mut b = OntologyBuilder::new("138875005", "SNOMED CT Concept");
/// let root = b.root_id();
/// let finding = b.add_child(root, "404684003", "Clinical finding").unwrap();
/// let pain = b.add_child(finding, "22253000", "Pain").unwrap();
/// let ont = b.build();
/// assert_eq!(ont.path_len(pain, root), 2);
/// ```
#[derive(Debug, Clone)]
pub struct OntologyBuilder {
    concepts: Vec<Concept>,
    parent: Vec<Option<ConceptId>>,
    children: Vec<Vec<ConceptId>>,
    by_code: HashMap<String, ConceptId>,
    by_label: HashMap<String, ConceptId>,
}

impl OntologyBuilder {
    /// Starts a new ontology whose root carries the given code and label.
    pub fn new(root_code: impl Into<String>, root_label: impl Into<String>) -> Self {
        let mut b = Self {
            concepts: Vec::new(),
            parent: Vec::new(),
            children: Vec::new(),
            by_code: HashMap::new(),
            by_label: HashMap::new(),
        };
        b.insert(None, root_code.into(), root_label.into())
            .expect("fresh builder cannot have code collisions");
        b
    }

    /// The root's id (always 0).
    pub fn root_id(&self) -> ConceptId {
        ConceptId::new(0)
    }

    /// Number of concepts added so far (including the root).
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether only nothing has been added. Always false: the builder is
    /// created with its root.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Adds a concept as a child of `parent`.
    ///
    /// # Errors
    /// * [`FairrecError::InvalidParameter`] if `parent` is unknown or the
    ///   code/label collides with an existing concept (codes must be unique;
    ///   labels must be unique case-insensitively because patient profiles
    ///   reference problems by label).
    pub fn add_child(
        &mut self,
        parent: ConceptId,
        code: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<ConceptId> {
        if parent.index() >= self.concepts.len() {
            return Err(FairrecError::invalid_parameter(
                "parent",
                format!("unknown parent concept {parent}"),
            ));
        }
        self.insert(Some(parent), code.into(), label.into())
    }

    fn insert(
        &mut self,
        parent: Option<ConceptId>,
        code: String,
        label: String,
    ) -> Result<ConceptId> {
        if self.by_code.contains_key(&code) {
            return Err(FairrecError::invalid_parameter(
                "code",
                format!("duplicate concept code {code:?}"),
            ));
        }
        let label_key = label.to_lowercase();
        if self.by_label.contains_key(&label_key) {
            return Err(FairrecError::invalid_parameter(
                "label",
                format!("duplicate concept label {label:?}"),
            ));
        }
        let id = ConceptId::new(u32::try_from(self.concepts.len()).expect("ontology fits in u32"));
        self.by_code.insert(code.clone(), id);
        self.by_label.insert(label_key, id);
        self.concepts.push(Concept::new(id, code, label));
        self.parent.push(parent);
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p.index()].push(id);
        }
        Ok(id)
    }

    /// Freezes the builder. Depths are computed here; the structure is a
    /// tree by construction (every non-root node was attached to an
    /// existing parent), so no cycle check is needed.
    pub fn build(self) -> Ontology {
        let n = self.concepts.len();
        let mut depth = vec![0u32; n];
        // Parents always precede children (ids are assigned on insert), so a
        // single forward pass fills depths.
        for i in 1..n {
            let p = self.parent[i].expect("non-root has a parent");
            depth[i] = depth[p.index()] + 1;
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        Ontology {
            concepts: self.concepts,
            parent: self.parent,
            children: self.children,
            depth,
            by_code: self.by_code,
            by_label: self.by_label,
            max_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root ── a ── b ── d
    ///          └─ c     └─ e
    fn sample() -> (Ontology, Vec<ConceptId>) {
        let mut b = OntologyBuilder::new("R", "root");
        let root = b.root_id();
        let a = b.add_child(root, "A", "alpha").unwrap();
        let bb = b.add_child(a, "B", "beta").unwrap();
        let c = b.add_child(a, "C", "gamma").unwrap();
        let d = b.add_child(bb, "D", "delta").unwrap();
        let e = b.add_child(d, "E", "epsilon").unwrap();
        (b.build(), vec![root, a, bb, c, d, e])
    }

    #[test]
    fn depths_and_max_depth() {
        let (o, ids) = sample();
        assert_eq!(o.depth(ids[0]), 0);
        assert_eq!(o.depth(ids[1]), 1);
        assert_eq!(o.depth(ids[2]), 2);
        assert_eq!(o.depth(ids[3]), 2);
        assert_eq!(o.depth(ids[4]), 3);
        assert_eq!(o.depth(ids[5]), 4);
        assert_eq!(o.max_depth(), 4);
    }

    #[test]
    fn lca_and_path_len() {
        let (o, ids) = sample();
        let (root, a, b, c, d, e) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        assert_eq!(o.lca(d, c), a);
        assert_eq!(o.lca(e, b), b);
        assert_eq!(o.lca(root, e), root);
        assert_eq!(o.path_len(d, c), 3); // d-b-a-c
        assert_eq!(o.path_len(e, e), 0);
        assert_eq!(o.path_len(e, root), 4);
        assert_eq!(o.path_len(b, c), 2); // siblings via a
    }

    #[test]
    fn path_lists_every_hop() {
        let (o, ids) = sample();
        let (a, c, d) = (ids[1], ids[3], ids[4]);
        let p = o.path(d, c);
        assert_eq!(p, vec![d, ids[2], a, c]);
        // Symmetric content, reversed direction.
        let q = o.path(c, d);
        assert_eq!(q, vec![c, a, ids[2], d]);
        assert_eq!(p.len() as u32 - 1, o.path_len(d, c));
    }

    #[test]
    fn lookups_by_code_and_label() {
        let (o, ids) = sample();
        assert_eq!(o.by_code("D"), Some(ids[4]));
        assert_eq!(o.by_code("nope"), None);
        assert_eq!(o.by_label("DELTA"), Some(ids[4]));
        assert_eq!(o.by_label("delta"), Some(ids[4]));
        assert_eq!(o.by_label("zeta"), None);
        assert_eq!(o.concept(ids[4]).label, "delta");
    }

    #[test]
    fn ancestry() {
        let (o, ids) = sample();
        assert!(o.is_ancestor(ids[0], ids[5]));
        assert!(o.is_ancestor(ids[2], ids[5]));
        assert!(o.is_ancestor(ids[5], ids[5]));
        assert!(!o.is_ancestor(ids[3], ids[5]));
        assert!(!o.is_ancestor(ids[5], ids[0]));
    }

    #[test]
    fn children_and_leaves() {
        let (o, ids) = sample();
        assert_eq!(o.children(ids[1]), &[ids[2], ids[3]]);
        assert_eq!(o.leaves(), vec![ids[3], ids[5]]);
    }

    #[test]
    fn duplicate_codes_and_labels_rejected() {
        let mut b = OntologyBuilder::new("R", "root");
        let root = b.root_id();
        b.add_child(root, "A", "alpha").unwrap();
        assert!(b.add_child(root, "A", "other").is_err());
        assert!(b.add_child(root, "B", "ALPHA").is_err()); // case-insensitive
        assert!(b.add_child(ConceptId::new(42), "C", "c").is_err());
    }

    #[test]
    fn single_node_ontology() {
        let o = OntologyBuilder::new("R", "root").build();
        assert_eq!(o.len(), 1);
        assert_eq!(o.root(), ConceptId::new(0));
        assert_eq!(o.path_len(o.root(), o.root()), 0);
        assert_eq!(o.max_depth(), 0);
        assert_eq!(o.leaves(), vec![o.root()]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random tree of `n` nodes by attaching node `i` to a parent
    /// chosen among `0..i`.
    fn arb_tree() -> impl Strategy<Value = Ontology> {
        proptest::collection::vec(0usize..1000, 1..60).prop_map(|choices| {
            let mut b = OntologyBuilder::new("R", "root");
            for (i, c) in choices.iter().enumerate() {
                let parent = ConceptId::new((c % (i + 1)) as u32);
                b.add_child(parent, format!("C{i}"), format!("label {i}"))
                    .unwrap();
            }
            b.build()
        })
    }

    proptest! {
        #[test]
        fn path_len_is_a_tree_metric(o in arb_tree(), xs in proptest::collection::vec(0u32..61, 3)) {
            let n = o.len() as u32;
            let a = ConceptId::new(xs[0] % n);
            let b = ConceptId::new(xs[1] % n);
            let c = ConceptId::new(xs[2] % n);
            // Symmetry and identity.
            prop_assert_eq!(o.path_len(a, b), o.path_len(b, a));
            prop_assert_eq!(o.path_len(a, a), 0);
            // Triangle inequality.
            prop_assert!(o.path_len(a, c) <= o.path_len(a, b) + o.path_len(b, c));
            // Path vector agrees with the length.
            prop_assert_eq!(o.path(a, b).len() as u32, o.path_len(a, b) + 1);
        }

        #[test]
        fn lca_is_a_common_ancestor_of_max_depth(o in arb_tree(), xs in proptest::collection::vec(0u32..61, 2)) {
            let n = o.len() as u32;
            let a = ConceptId::new(xs[0] % n);
            let b = ConceptId::new(xs[1] % n);
            let l = o.lca(a, b);
            prop_assert!(o.is_ancestor(l, a));
            prop_assert!(o.is_ancestor(l, b));
            // No child of l is a common ancestor.
            for &ch in o.children(l) {
                prop_assert!(!(o.is_ancestor(ch, a) && o.is_ancestor(ch, b)));
            }
        }
    }
}
