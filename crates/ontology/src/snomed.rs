//! Hand-curated clinical ontology fragment.
//!
//! SNOMED CT is distributed under a national-licence model, so this module
//! ships a small curated is-a fragment instead (the substitution is recorded
//! in `DESIGN.md`). It is built to two requirements:
//!
//! 1. it contains every concept appearing in the paper's Table I (acute
//!    bronchitis, chest pain, tracheobronchitis, broken arm), and
//! 2. the worked example of §V-C holds **exactly**: the shortest path
//!    between *acute bronchitis* and *chest pain* has length 5, and between
//!    *tracheobronchitis* and *acute bronchitis* length 2 — so the paper's
//!    conclusion "patients 1 and 3 are more similar than patients 1 and 2"
//!    is reproduced by construction.
//!
//! Concept codes are SNOMED-CT-style numeric strings; they are stable
//! within this crate but are illustrative, not an extract of the licensed
//! terminology.

use crate::hierarchy::{Ontology, OntologyBuilder};

/// Well-known concept labels used across examples and tests.
pub mod labels {
    /// Table I, patient 1 problem.
    pub const ACUTE_BRONCHITIS: &str = "Acute bronchitis";
    /// Table I, patient 2 problem.
    pub const CHEST_PAIN: &str = "Chest pain";
    /// Table I, patient 3 problem (a).
    pub const TRACHEOBRONCHITIS: &str = "Tracheobronchitis";
    /// Table I, patient 3 problem (b).
    pub const BROKEN_ARM: &str = "Fracture of upper limb";
}

/// Builds the curated clinical fragment (57 concepts, max depth 4).
///
/// Layout (depths): root(0) → clinical finding(1) → body-system disorder
/// families(2) → diseases(3) → specific diseases(4).
pub fn clinical_fragment() -> Ontology {
    let mut b = OntologyBuilder::new("138875005", "SNOMED CT Concept");
    let root = b.root_id();

    let finding = b
        .add_child(root, "404684003", "Clinical finding")
        .expect("fresh builder");

    // --- Respiratory ------------------------------------------------------
    let resp = b
        .add_child(finding, "50043002", "Disorder of respiratory system")
        .unwrap();
    let bronchitis = b.add_child(resp, "32398004", "Bronchitis").unwrap();
    // Table I anchors: siblings under Bronchitis ⇒ path(trach, acute) = 2.
    b.add_child(bronchitis, "10509002", labels::ACUTE_BRONCHITIS)
        .unwrap();
    b.add_child(bronchitis, "63480004", "Chronic bronchitis")
        .unwrap();
    b.add_child(bronchitis, "247007002", labels::TRACHEOBRONCHITIS)
        .unwrap();
    let pneumonia = b.add_child(resp, "233604007", "Pneumonia").unwrap();
    b.add_child(pneumonia, "385093006", "Community acquired pneumonia")
        .unwrap();
    b.add_child(pneumonia, "425464007", "Nosocomial pneumonia")
        .unwrap();
    b.add_child(resp, "195967001", "Asthma").unwrap();
    b.add_child(resp, "54150009", "Upper respiratory infection")
        .unwrap();
    b.add_child(resp, "13645005", "Chronic obstructive lung disease")
        .unwrap();

    // --- Pain findings ----------------------------------------------------
    // Chest pain sits at depth 2 under a *pain* family at depth 1... no:
    // pain family at depth 2 under Clinical finding(1) ⇒ chest pain depth 3.
    // path(acute bronchitis, chest pain)
    //   = depth(AB) + depth(CP) − 2·depth(lca = Clinical finding)
    //   = 4 + 3 − 2·1 = 5  ✓ (the paper's worked value).
    let pain = b.add_child(finding, "22253000", "Pain finding").unwrap();
    b.add_child(pain, "29857009", labels::CHEST_PAIN).unwrap();
    b.add_child(pain, "25064002", "Headache").unwrap();
    b.add_child(pain, "21522001", "Abdominal pain").unwrap();
    b.add_child(pain, "30989003", "Knee pain").unwrap();
    b.add_child(pain, "161891005", "Back pain").unwrap();

    // --- Cardiovascular ---------------------------------------------------
    let cardio = b
        .add_child(finding, "49601007", "Disorder of cardiovascular system")
        .unwrap();
    let heart = b.add_child(cardio, "56265001", "Heart disease").unwrap();
    b.add_child(heart, "22298006", "Myocardial infarction")
        .unwrap();
    b.add_child(heart, "194828000", "Angina pectoris").unwrap();
    b.add_child(heart, "84114007", "Heart failure").unwrap();
    b.add_child(heart, "49436004", "Atrial fibrillation")
        .unwrap();
    b.add_child(cardio, "38341003", "Hypertensive disorder")
        .unwrap();
    b.add_child(cardio, "400047006", "Peripheral vascular disease")
        .unwrap();

    // --- Musculoskeletal --------------------------------------------------
    let musculo = b
        .add_child(finding, "928000", "Disorder of musculoskeletal system")
        .unwrap();
    let fracture = b
        .add_child(musculo, "125605004", "Fracture of bone")
        .unwrap();
    b.add_child(fracture, "65966004", labels::BROKEN_ARM)
        .unwrap();
    b.add_child(fracture, "46866001", "Fracture of lower limb")
        .unwrap();
    b.add_child(fracture, "207957008", "Fracture of rib")
        .unwrap();
    let arthritis = b.add_child(musculo, "3723001", "Arthritis").unwrap();
    b.add_child(arthritis, "69896004", "Rheumatoid arthritis")
        .unwrap();
    b.add_child(arthritis, "396275006", "Osteoarthritis")
        .unwrap();
    b.add_child(musculo, "64859006", "Osteoporosis").unwrap();

    // --- Neoplastic (the iManageCancer context) ---------------------------
    let neoplasm = b
        .add_child(finding, "55342001", "Neoplastic disease")
        .unwrap();
    let malignant = b
        .add_child(neoplasm, "363346000", "Malignant neoplastic disease")
        .unwrap();
    b.add_child(malignant, "254837009", "Malignant neoplasm of breast")
        .unwrap();
    b.add_child(malignant, "363358000", "Malignant neoplasm of lung")
        .unwrap();
    b.add_child(malignant, "363406005", "Malignant neoplasm of colon")
        .unwrap();
    b.add_child(malignant, "399068003", "Malignant neoplasm of prostate")
        .unwrap();
    b.add_child(malignant, "93143009", "Leukemia").unwrap();
    b.add_child(neoplasm, "20376005", "Benign neoplastic disease")
        .unwrap();

    // --- Metabolic / endocrine --------------------------------------------
    let metabolic = b
        .add_child(finding, "75934005", "Metabolic disease")
        .unwrap();
    let diabetes = b
        .add_child(metabolic, "73211009", "Diabetes mellitus")
        .unwrap();
    b.add_child(diabetes, "46635009", "Diabetes mellitus type 1")
        .unwrap();
    b.add_child(diabetes, "44054006", "Diabetes mellitus type 2")
        .unwrap();
    b.add_child(metabolic, "55822004", "Hyperlipidemia")
        .unwrap();
    b.add_child(metabolic, "66999008", "Obesity").unwrap();

    // --- Mental / behavioural ---------------------------------------------
    let mental = b.add_child(finding, "74732009", "Mental disorder").unwrap();
    b.add_child(mental, "35489007", "Depressive disorder")
        .unwrap();
    b.add_child(mental, "197480006", "Anxiety disorder")
        .unwrap();
    b.add_child(mental, "13746004", "Bipolar disorder").unwrap();

    // --- Digestive ---------------------------------------------------------
    let digestive = b
        .add_child(finding, "53619000", "Disorder of digestive system")
        .unwrap();
    b.add_child(digestive, "235595009", "Gastroesophageal reflux disease")
        .unwrap();
    b.add_child(digestive, "397825006", "Gastric ulcer")
        .unwrap();
    b.add_child(digestive, "34000006", "Crohn's disease")
        .unwrap();

    // --- Neurological -------------------------------------------------------
    let neuro = b
        .add_child(finding, "118940003", "Disorder of nervous system")
        .unwrap();
    b.add_child(neuro, "84757009", "Epilepsy").unwrap();
    b.add_child(neuro, "24700007", "Multiple sclerosis")
        .unwrap();
    b.add_child(neuro, "49049000", "Parkinson's disease")
        .unwrap();

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_path_lengths_hold_exactly() {
        let o = clinical_fragment();
        let acute = o.by_label(labels::ACUTE_BRONCHITIS).unwrap();
        let chest = o.by_label(labels::CHEST_PAIN).unwrap();
        let trach = o.by_label(labels::TRACHEOBRONCHITIS).unwrap();
        // §V-C: "the shortest path between those two nodes is 5".
        assert_eq!(o.path_len(acute, chest), 5);
        // §V-C: "the shortest path ... is only 2".
        assert_eq!(o.path_len(trach, acute), 2);
    }

    #[test]
    fn paper_conclusion_patient1_closer_to_patient3() {
        let o = clinical_fragment();
        let acute = o.by_label(labels::ACUTE_BRONCHITIS).unwrap();
        let chest = o.by_label(labels::CHEST_PAIN).unwrap();
        let trach = o.by_label(labels::TRACHEOBRONCHITIS).unwrap();
        let s = crate::similarity::PathScoring::InversePath;
        assert!(s.score(&o, acute, trach) > s.score(&o, acute, chest));
    }

    #[test]
    fn all_table1_concepts_present() {
        let o = clinical_fragment();
        for label in [
            labels::ACUTE_BRONCHITIS,
            labels::CHEST_PAIN,
            labels::TRACHEOBRONCHITIS,
            labels::BROKEN_ARM,
        ] {
            assert!(o.by_label(label).is_some(), "missing {label}");
        }
    }

    #[test]
    fn fragment_shape() {
        let o = clinical_fragment();
        assert!(o.len() > 50, "fragment should be a non-trivial tree");
        assert_eq!(o.max_depth(), 4);
        assert_eq!(o.concept(o.root()).label, "SNOMED CT Concept");
        // Every leaf reachable from root; depths consistent.
        for c in o.iter() {
            if let Some(p) = o.parent(c.id) {
                assert_eq!(o.depth(c.id), o.depth(p) + 1);
            }
        }
    }

    #[test]
    fn codes_are_unique_and_resolvable() {
        let o = clinical_fragment();
        for c in o.iter() {
            assert_eq!(o.by_code(&c.code), Some(c.id), "code {:?}", c.code);
        }
    }
}
