//! Concept nodes.

use fairrec_types::ConceptId;

/// One node of the clinical ontology.
///
/// `code` plays the role of a SNOMED-CT concept identifier (an opaque,
/// stable external string); `label` is the preferred human-readable term,
/// which is also what patient profiles carry in their *problem* fields
/// (Table I of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// Dense internal identifier.
    pub id: ConceptId,
    /// External stable code (SNOMED-CT-style).
    pub code: String,
    /// Preferred term.
    pub label: String,
}

impl Concept {
    /// Creates a concept record.
    pub fn new(id: ConceptId, code: impl Into<String>, label: impl Into<String>) -> Self {
        Self {
            id,
            code: code.into(),
            label: label.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_stores_fields() {
        let c = Concept::new(ConceptId::new(3), "10509002", "Acute bronchitis");
        assert_eq!(c.id, ConceptId::new(3));
        assert_eq!(c.code, "10509002");
        assert_eq!(c.label, "Acute bronchitis");
    }
}
