//! Path-length → similarity transforms.
//!
//! §V-C of the paper specifies the *ordering* ("longer path means a smaller
//! similarity") but not the functional form. This module offers the standard
//! transforms from the ontology-similarity literature; all of them map a
//! path length `d ∈ {0, 1, 2, …}` into `(0, 1]`, are strictly decreasing in
//! `d`, and give identical concepts similarity 1 (except Wu–Palmer, which is
//! 1 for identical concepts by construction).
//!
//! The strictly positive lower bound matters downstream: the overall
//! patient similarity (Equation 4) is a *harmonic* mean, which is undefined
//! when any pair similarity is 0.

use crate::hierarchy::Ontology;
use fairrec_types::ConceptId;

/// A transform from tree distance to concept similarity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PathScoring {
    /// `1 / (1 + d)` — the simplest strictly-decreasing transform; default.
    #[default]
    InversePath,
    /// `exp(−λ·d)` with decay rate `λ > 0`.
    ExponentialDecay {
        /// Decay rate; larger values punish distance harder.
        lambda: f64,
    },
    /// Wu–Palmer: `(2·(depth(lca)+1)) / ((depth(a)+1) + (depth(b)+1))`.
    ///
    /// Depths are shifted by one so the root-vs-root case is well defined
    /// (and equals 1). Unlike the pure path transforms this one also rewards
    /// *specificity*: two deep siblings are more similar than two shallow
    /// siblings at the same path distance.
    WuPalmer,
    /// Leacock–Chodorow, normalised into `(0, 1]`:
    /// `ln(2·D / (d + 1)) / ln(2·D)` where `D = max_depth + 1`.
    LeacockChodorow,
}

impl PathScoring {
    /// Similarity of two concepts in `(0, 1]`.
    pub fn score(self, ontology: &Ontology, a: ConceptId, b: ConceptId) -> f64 {
        match self {
            Self::InversePath => {
                let d = f64::from(ontology.path_len(a, b));
                1.0 / (1.0 + d)
            }
            Self::ExponentialDecay { lambda } => {
                debug_assert!(lambda > 0.0, "lambda must be positive");
                let d = f64::from(ontology.path_len(a, b));
                (-lambda * d).exp()
            }
            Self::WuPalmer => {
                let l = ontology.lca(a, b);
                let dl = f64::from(ontology.depth(l)) + 1.0;
                let da = f64::from(ontology.depth(a)) + 1.0;
                let db = f64::from(ontology.depth(b)) + 1.0;
                2.0 * dl / (da + db)
            }
            Self::LeacockChodorow => {
                let big_d = f64::from(ontology.max_depth()) + 1.0;
                let d = f64::from(ontology.path_len(a, b));
                // ln(2D / (d+1)) / ln(2D): d = 0 ⇒ 1; d = 2D−1 (diameter
                // bound) ⇒ 0⁺.
                ((2.0 * big_d) / (d + 1.0)).ln() / (2.0 * big_d).ln()
            }
        }
    }

    /// Similarity from a raw path length, for transforms that depend only
    /// on `d` (panics for [`PathScoring::WuPalmer`], which needs node
    /// depths).
    pub fn score_from_distance(self, max_depth: u32, d: u32) -> f64 {
        match self {
            Self::InversePath => 1.0 / (1.0 + f64::from(d)),
            Self::ExponentialDecay { lambda } => (-lambda * f64::from(d)).exp(),
            Self::WuPalmer => panic!("WuPalmer requires node identities, not just distance"),
            Self::LeacockChodorow => {
                let big_d = f64::from(max_depth) + 1.0;
                ((2.0 * big_d) / (f64::from(d) + 1.0)).ln() / (2.0 * big_d).ln()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::OntologyBuilder;

    fn chain(len: u32) -> (Ontology, Vec<ConceptId>) {
        let mut b = OntologyBuilder::new("R", "root");
        let mut ids = vec![b.root_id()];
        for i in 0..len {
            let id = b
                .add_child(*ids.last().unwrap(), format!("C{i}"), format!("l{i}"))
                .unwrap();
            ids.push(id);
        }
        (b.build(), ids)
    }

    #[test]
    fn inverse_path_values() {
        let (o, ids) = chain(4);
        let s = PathScoring::InversePath;
        assert_eq!(s.score(&o, ids[0], ids[0]), 1.0);
        assert_eq!(s.score(&o, ids[0], ids[1]), 0.5);
        assert_eq!(s.score(&o, ids[0], ids[3]), 0.25);
    }

    #[test]
    fn exponential_decay_values() {
        let (o, ids) = chain(3);
        let s = PathScoring::ExponentialDecay { lambda: 0.5 };
        assert!((s.score(&o, ids[0], ids[0]) - 1.0).abs() < 1e-12);
        assert!((s.score(&o, ids[0], ids[2]) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn wu_palmer_rewards_depth() {
        // root ── a ── a1, a2 (deep siblings)  and  b1, b2 (shallow siblings)
        let mut b = OntologyBuilder::new("R", "root");
        let root = b.root_id();
        let a = b.add_child(root, "A", "a").unwrap();
        let a1 = b.add_child(a, "A1", "a1").unwrap();
        let a2 = b.add_child(a, "A2", "a2").unwrap();
        let b1 = b.add_child(root, "B1", "b1").unwrap();
        let b2 = b.add_child(root, "B2", "b2").unwrap();
        let o = b.build();
        let s = PathScoring::WuPalmer;
        // Same path distance (2), but the deep pair is judged more similar.
        assert_eq!(o.path_len(a1, a2), o.path_len(b1, b2));
        assert!(s.score(&o, a1, a2) > s.score(&o, b1, b2));
        assert_eq!(s.score(&o, a1, a1), 1.0);
    }

    #[test]
    fn leacock_chodorow_is_one_at_zero_distance() {
        let (o, ids) = chain(5);
        let s = PathScoring::LeacockChodorow;
        assert!((s.score(&o, ids[2], ids[2]) - 1.0).abs() < 1e-12);
        assert!(s.score(&o, ids[0], ids[5]) > 0.0);
    }

    #[test]
    fn all_transforms_are_strictly_decreasing_in_distance() {
        let (o, ids) = chain(6);
        for scoring in [
            PathScoring::InversePath,
            PathScoring::ExponentialDecay { lambda: 0.3 },
            PathScoring::LeacockChodorow,
        ] {
            let mut prev = f64::INFINITY;
            for hop in 0..6 {
                let s = scoring.score(&o, ids[0], ids[hop]);
                assert!(
                    s < prev,
                    "{scoring:?} not strictly decreasing at hop {hop}: {s} !< {prev}"
                );
                assert!(s > 0.0 && s <= 1.0, "{scoring:?} out of (0,1] at hop {hop}");
                prev = s;
            }
        }
    }

    #[test]
    fn score_from_distance_matches_score_for_pure_path_transforms() {
        let (o, ids) = chain(5);
        for scoring in [
            PathScoring::InversePath,
            PathScoring::ExponentialDecay { lambda: 0.7 },
            PathScoring::LeacockChodorow,
        ] {
            for hop in 0..5 {
                let via_nodes = scoring.score(&o, ids[0], ids[hop]);
                let via_distance = scoring.score_from_distance(o.max_depth(), hop as u32);
                assert!((via_nodes - via_distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "WuPalmer")]
    fn wu_palmer_rejects_distance_only_scoring() {
        PathScoring::WuPalmer.score_from_distance(4, 2);
    }

    #[test]
    fn default_is_inverse_path() {
        assert_eq!(PathScoring::default(), PathScoring::InversePath);
    }
}
