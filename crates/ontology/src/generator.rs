//! Seeded random ontology generator.
//!
//! Scale experiments (similarity ablations, MapReduce sweeps) need
//! hierarchies far larger than the curated fragment. The generator grows a
//! tree one node at a time, choosing each parent uniformly among the nodes
//! whose depth is below `max_depth` — the classic *random recursive tree*
//! process, which yields broad, shallow hierarchies similar in spirit to
//! clinical terminologies (many mid-level families, long thin tails).
//!
//! A `branchiness` knob skews parent choice toward already-popular parents
//! (preferential attachment), producing the heavy-tailed fan-outs observed
//! in real terminologies.

use crate::hierarchy::{Ontology, OntologyBuilder};
use fairrec_types::ConceptId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`OntologyGenerator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OntologyGenerator {
    /// Number of concepts to generate, including the root. Minimum 1.
    pub num_concepts: u32,
    /// Maximum depth of any node; parents are only drawn from strictly
    /// shallower levels.
    pub max_depth: u32,
    /// In `[0, 1]`: probability that a new node attaches via preferential
    /// attachment (to a parent sampled proportionally to its fan-out + 1)
    /// instead of uniformly.
    pub branchiness: f64,
    /// RNG seed; equal configurations produce identical trees.
    pub seed: u64,
}

impl Default for OntologyGenerator {
    fn default() -> Self {
        Self {
            num_concepts: 1_000,
            max_depth: 8,
            branchiness: 0.5,
            seed: 42,
        }
    }
}

impl OntologyGenerator {
    /// Generates the tree.
    ///
    /// # Panics
    /// Panics if `num_concepts == 0` or `branchiness ∉ [0, 1]` — these are
    /// programmer-supplied experiment parameters, not runtime data.
    pub fn generate(&self) -> Ontology {
        assert!(self.num_concepts >= 1, "need at least the root");
        assert!(
            (0.0..=1.0).contains(&self.branchiness),
            "branchiness must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = OntologyBuilder::new("SYN0", "synthetic root");

        // Eligible parents (depth < max_depth), flat list for uniform
        // sampling, plus a weighted list where each parent appears once per
        // child it already has (plus once unconditionally) for preferential
        // attachment.
        let mut eligible: Vec<ConceptId> = vec![b.root_id()];
        let mut weighted: Vec<ConceptId> = vec![b.root_id()];
        let mut depth = vec![0u32; 1];

        for n in 1..self.num_concepts {
            let parent = if rng.gen_bool(self.branchiness) {
                weighted[rng.gen_range(0..weighted.len())]
            } else {
                eligible[rng.gen_range(0..eligible.len())]
            };
            let id = b
                .add_child(parent, format!("SYN{n}"), format!("synthetic concept {n}"))
                .expect("generated codes are unique");
            let d = depth[parent.index()] + 1;
            depth.push(d);
            // The new node becomes a candidate parent if it is shallow
            // enough; it always contributes weight to its own parent.
            if d < self.max_depth {
                eligible.push(id);
                weighted.push(id);
            }
            weighted.push(parent);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let o = OntologyGenerator {
            num_concepts: 500,
            ..Default::default()
        }
        .generate();
        assert_eq!(o.len(), 500);
    }

    #[test]
    fn respects_max_depth() {
        let o = OntologyGenerator {
            num_concepts: 2_000,
            max_depth: 3,
            ..Default::default()
        }
        .generate();
        for c in o.iter() {
            assert!(o.depth(c.id) <= 3);
        }
        assert_eq!(o.max_depth(), 3); // 2000 nodes certainly reach depth 3
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = OntologyGenerator {
            num_concepts: 300,
            seed: 7,
            ..Default::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
            assert_eq!(a.parent(x.id), b.parent(y.id));
        }
        let c = OntologyGenerator { seed: 8, ..cfg }.generate();
        let same = a
            .iter()
            .zip(c.iter())
            .all(|(x, y)| a.parent(x.id) == c.parent(y.id));
        assert!(!same, "different seeds should give different trees");
    }

    #[test]
    fn branchiness_increases_max_fanout() {
        let base = OntologyGenerator {
            num_concepts: 1_500,
            max_depth: 10,
            seed: 11,
            branchiness: 0.0,
        };
        let uniform = base.generate();
        let preferential = OntologyGenerator {
            branchiness: 1.0,
            ..base
        }
        .generate();
        let max_fanout = |o: &Ontology| o.iter().map(|c| o.children(c.id).len()).max().unwrap_or(0);
        assert!(
            max_fanout(&preferential) > max_fanout(&uniform),
            "preferential attachment should produce heavier-tailed fan-out"
        );
    }

    #[test]
    fn single_node_tree() {
        let o = OntologyGenerator {
            num_concepts: 1,
            ..Default::default()
        }
        .generate();
        assert_eq!(o.len(), 1);
        assert_eq!(o.max_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "at least the root")]
    fn zero_concepts_rejected() {
        OntologyGenerator {
            num_concepts: 0,
            ..Default::default()
        }
        .generate();
    }
}
