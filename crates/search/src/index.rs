//! Inverted index with BM25 ranking.
//!
//! Standard Okapi BM25 (`k1 = 1.2`, `b = 0.75`) with the non-negative idf
//! variant `ln(1 + (N − df + 0.5) / (df + 0.5))`. Title terms are indexed
//! alongside body terms with a small boost (titles of curated medical
//! pages are dense in diagnosis terms). Results rank by descending score
//! with ascending item id on ties, so searches are deterministic.

use crate::store::DocumentStore;
use fairrec_text::{TermId, Tokenizer, Vocabulary};
use fairrec_types::{ItemId, TopK};

/// Title terms count this many times (body terms count once).
const TITLE_BOOST: u32 = 2;
const K1: f64 = 1.2;
const B: f64 = 0.75;

/// Conjunctive or disjunctive matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Every query term must appear in the document.
    All,
    /// Any query term suffices (pure BM25 ranking).
    #[default]
    Any,
}

/// One ranked hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The matching document's item id.
    pub item: ItemId,
    /// BM25 score (higher is better).
    pub score: f64,
}

/// Posting: document slot + in-document term frequency.
type Posting = (u32, u32);

/// Immutable inverted index over the **approved** documents of a store.
#[derive(Debug, Clone)]
pub struct SearchIndex {
    tokenizer: Tokenizer,
    vocab: Vocabulary,
    /// Per term: postings sorted by document slot.
    postings: Vec<Vec<Posting>>,
    /// Document slot → item id.
    doc_items: Vec<ItemId>,
    /// Document slot → token count (boosted).
    doc_lens: Vec<u32>,
    avg_doc_len: f64,
}

impl SearchIndex {
    /// Indexes every approved document of `store` with the default
    /// tokenizer.
    pub fn build(store: &DocumentStore) -> Self {
        Self::build_with(store, Tokenizer::new())
    }

    /// Indexes with a custom tokenizer.
    pub fn build_with(store: &DocumentStore, tokenizer: Tokenizer) -> Self {
        let mut vocab = Vocabulary::new();
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut doc_items = Vec::new();
        let mut doc_lens = Vec::new();

        for doc in store.approved() {
            let slot = u32::try_from(doc_items.len()).expect("doc count fits u32");
            doc_items.push(doc.item);
            // term → boosted frequency for this document.
            let mut counts: Vec<(TermId, u32)> = Vec::new();
            let mut add = |vocab: &mut Vocabulary, text: &str, weight: u32| {
                for token in tokenizer.tokenize(text) {
                    let id = vocab.intern(&token);
                    match counts.iter_mut().find(|(t, _)| *t == id) {
                        Some((_, c)) => *c += weight,
                        None => counts.push((id, weight)),
                    }
                }
            };
            add(&mut vocab, &doc.title, TITLE_BOOST);
            add(&mut vocab, &doc.body, 1);

            let len: u32 = counts.iter().map(|&(_, c)| c).sum();
            doc_lens.push(len);
            for (term, count) in counts {
                if term as usize >= postings.len() {
                    postings.resize(term as usize + 1, Vec::new());
                }
                postings[term as usize].push((slot, count));
            }
        }
        let avg_doc_len = if doc_lens.is_empty() {
            0.0
        } else {
            doc_lens.iter().map(|&l| f64::from(l)).sum::<f64>() / doc_lens.len() as f64
        };
        Self {
            tokenizer,
            vocab,
            postings,
            doc_items,
            doc_lens,
            avg_doc_len,
        }
    }

    /// Number of indexed documents.
    pub fn num_documents(&self) -> usize {
        self.doc_items.len()
    }

    /// Number of distinct indexed terms.
    pub fn num_terms(&self) -> usize {
        self.vocab.len()
    }

    /// Searches for `query`, returning the best `limit` hits.
    ///
    /// Unknown terms are ignored under [`QueryMode::Any`]; under
    /// [`QueryMode::All`] an unknown term means no document can match.
    pub fn search(&self, query: &str, mode: QueryMode, limit: usize) -> Vec<SearchResult> {
        let mut terms: Vec<TermId> = self
            .tokenizer
            .tokenize(query)
            .iter()
            .filter_map(|t| self.vocab.get(t))
            .collect();
        let had_unknown = self.tokenizer.tokenize(query).len() > terms.len();
        terms.sort_unstable();
        terms.dedup();
        if terms.is_empty() || (mode == QueryMode::All && had_unknown) {
            return Vec::new();
        }

        let n = self.num_documents() as f64;
        // Accumulate per-document scores and match counts.
        let mut scores = vec![0.0f64; self.doc_items.len()];
        let mut matches = vec![0u32; self.doc_items.len()];
        for &term in &terms {
            let list = &self.postings[term as usize];
            let df = list.len() as f64;
            let idf = (1.0 + (n - df + 0.5) / (df + 0.5)).ln();
            for &(slot, tf) in list {
                let tf = f64::from(tf);
                let len_norm =
                    K1 * (1.0 - B + B * f64::from(self.doc_lens[slot as usize]) / self.avg_doc_len);
                scores[slot as usize] += idf * (tf * (K1 + 1.0)) / (tf + len_norm);
                matches[slot as usize] += 1;
            }
        }

        let required = match mode {
            QueryMode::All => terms.len() as u32,
            QueryMode::Any => 1,
        };
        let mut top = TopK::new(limit);
        for (slot, &score) in scores.iter().enumerate() {
            if matches[slot] >= required && score > 0.0 {
                top.push(self.doc_items[slot], score);
            }
        }
        top.into_sorted_vec()
            .into_iter()
            .map(|s| SearchResult {
                item: s.item,
                score: s.score,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{CurationStatus, StoredDocument};

    fn store() -> DocumentStore {
        let mk = |id: u32, title: &str, body: &str, status| StoredDocument {
            item: ItemId::new(id),
            title: title.into(),
            body: body.into(),
            status,
        };
        [
            mk(
                0,
                "Managing chemotherapy side effects",
                "chemotherapy nausea fatigue oncology patient guide",
                CurationStatus::Approved,
            ),
            mk(
                1,
                "Diet during chemotherapy",
                "nutrition diet appetite chemotherapy patient",
                CurationStatus::Approved,
            ),
            mk(
                2,
                "Understanding asthma inhalers",
                "asthma inhaler bronchial technique",
                CurationStatus::Approved,
            ),
            mk(
                3,
                "Unreviewed miracle cure",
                "chemotherapy miracle",
                CurationStatus::Pending,
            ),
            mk(
                4,
                "Rejected spam",
                "chemotherapy spam",
                CurationStatus::Rejected,
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn only_approved_documents_are_indexed() {
        let idx = SearchIndex::build(&store());
        assert_eq!(idx.num_documents(), 3);
        let hits = idx.search("chemotherapy", QueryMode::Any, 10);
        let ids: Vec<u32> = hits.iter().map(|h| h.item.raw()).collect();
        assert!(!ids.contains(&3), "pending doc must be invisible");
        assert!(!ids.contains(&4), "rejected doc must be invisible");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn ranking_prefers_term_dense_documents() {
        let idx = SearchIndex::build(&store());
        let hits = idx.search("chemotherapy diet", QueryMode::Any, 10);
        // Doc 1 matches both terms (diet twice via title boost), doc 0 one.
        assert_eq!(hits[0].item, ItemId::new(1));
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn title_matches_outrank_body_matches() {
        let mk = |id: u32, title: &str, body: &str| StoredDocument {
            item: ItemId::new(id),
            title: title.into(),
            body: body.into(),
            status: CurationStatus::Approved,
        };
        let store: DocumentStore = [
            mk(0, "asthma guide", "general information and tips"),
            mk(1, "general guide", "asthma information and tips"),
        ]
        .into_iter()
        .collect();
        let idx = SearchIndex::build(&store);
        let hits = idx.search("asthma", QueryMode::Any, 2);
        assert_eq!(hits[0].item, ItemId::new(0));
    }

    #[test]
    fn all_mode_requires_every_term() {
        let idx = SearchIndex::build(&store());
        let any = idx.search("chemotherapy asthma", QueryMode::Any, 10);
        assert_eq!(any.len(), 3);
        let all = idx.search("chemotherapy asthma", QueryMode::All, 10);
        assert!(all.is_empty(), "no document has both terms");
        let all2 = idx.search("chemotherapy patient", QueryMode::All, 10);
        assert_eq!(all2.len(), 2);
    }

    #[test]
    fn unknown_terms() {
        let idx = SearchIndex::build(&store());
        assert!(idx.search("zzz", QueryMode::Any, 5).is_empty());
        // Unknown term is fatal under All…
        assert!(idx.search("chemotherapy zzz", QueryMode::All, 5).is_empty());
        // …and ignored under Any.
        assert_eq!(idx.search("chemotherapy zzz", QueryMode::Any, 5).len(), 2);
    }

    #[test]
    fn limit_and_determinism() {
        let idx = SearchIndex::build(&store());
        let one = idx.search("patient", QueryMode::Any, 1);
        assert_eq!(one.len(), 1);
        let again = idx.search("patient", QueryMode::Any, 1);
        assert_eq!(one, again);
    }

    #[test]
    fn empty_index_and_empty_query() {
        let idx = SearchIndex::build(&DocumentStore::new());
        assert_eq!(idx.num_documents(), 0);
        assert!(idx.search("anything", QueryMode::Any, 5).is_empty());
        let idx = SearchIndex::build(&store());
        assert!(idx.search("", QueryMode::Any, 5).is_empty());
        assert!(idx.search("the of", QueryMode::Any, 5).is_empty()); // stopwords
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::store::{CurationStatus, StoredDocument};
    use proptest::prelude::*;

    fn arb_store() -> impl Strategy<Value = DocumentStore> {
        let word = proptest::sample::select(vec![
            "pain", "cancer", "diet", "sleep", "drug", "dose", "heart", "lung",
        ]);
        proptest::collection::vec(proptest::collection::vec(word, 1..12), 1..12).prop_map(|docs| {
            docs.into_iter()
                .enumerate()
                .map(|(id, words)| StoredDocument {
                    item: fairrec_types::ItemId::new(id as u32),
                    title: words.first().map(|w| w.to_string()).unwrap_or_default(),
                    body: words.join(" "),
                    status: CurationStatus::Approved,
                })
                .collect()
        })
    }

    proptest! {
        /// Every hit actually contains at least one query term, and All ⊆ Any.
        #[test]
        fn hits_contain_query_terms(store in arb_store(), q in "(pain|cancer|diet)( (pain|cancer|diet))?") {
            let idx = SearchIndex::build(&store);
            let any = idx.search(&q, QueryMode::Any, 100);
            let all = idx.search(&q, QueryMode::All, 100);
            let terms: Vec<&str> = q.split(' ').collect();
            for hit in &any {
                let doc = store.get(hit.item).unwrap();
                let text = format!("{} {}", doc.title, doc.body);
                prop_assert!(terms.iter().any(|t| text.contains(t)));
                prop_assert!(hit.score > 0.0);
            }
            let any_ids: Vec<_> = any.iter().map(|h| h.item).collect();
            for hit in &all {
                prop_assert!(any_ids.contains(&hit.item), "All must be a subset of Any");
                let doc = store.get(hit.item).unwrap();
                let text = format!("{} {}", doc.title, doc.body);
                prop_assert!(terms.iter().all(|t| text.contains(t)));
            }
        }

        /// Scores are sorted descending with deterministic ties.
        #[test]
        fn results_are_ranked(store in arb_store()) {
            let idx = SearchIndex::build(&store);
            let hits = idx.search("pain cancer diet sleep", QueryMode::Any, 100);
            for w in hits.windows(2) {
                prop_assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].item < w[1].item)
                );
            }
        }
    }
}
