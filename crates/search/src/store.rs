//! The curated document store.

use fairrec_types::{FairrecError, ItemId, Result};

/// Expert-curation state of a document (§I goal 2: experts control what
/// patients can be shown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurationStatus {
    /// Submitted, not yet reviewed — not searchable.
    #[default]
    Pending,
    /// Approved by a medical expert — searchable.
    Approved,
    /// Rejected — never searchable.
    Rejected,
}

/// One curated document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDocument {
    /// Item id, aligned with the rating matrix.
    pub item: ItemId,
    /// Title.
    pub title: String,
    /// Body text.
    pub body: String,
    /// Curation state.
    pub status: CurationStatus,
}

/// Registry of documents, indexed densely by [`ItemId`].
#[derive(Debug, Default, Clone)]
pub struct DocumentStore {
    docs: Vec<Option<StoredDocument>>,
}

impl DocumentStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a document; returns the previous version.
    pub fn upsert(&mut self, doc: StoredDocument) -> Option<StoredDocument> {
        let idx = doc.item.index();
        if idx >= self.docs.len() {
            self.docs.resize(idx + 1, None);
        }
        self.docs[idx].replace(doc)
    }

    /// The document for `item`, if registered.
    pub fn get(&self, item: ItemId) -> Option<&StoredDocument> {
        self.docs.get(item.index())?.as_ref()
    }

    /// The document, or an [`FairrecError::UnknownItem`] error.
    ///
    /// # Errors
    /// When `item` is not registered.
    pub fn get_required(&self, item: ItemId) -> Result<&StoredDocument> {
        self.get(item).ok_or(FairrecError::UnknownItem { item })
    }

    /// Sets the curation status of an item.
    ///
    /// # Errors
    /// [`FairrecError::UnknownItem`] when the item is not registered.
    pub fn set_status(&mut self, item: ItemId, status: CurationStatus) -> Result<()> {
        let doc = self
            .docs
            .get_mut(item.index())
            .and_then(|d| d.as_mut())
            .ok_or(FairrecError::UnknownItem { item })?;
        doc.status = status;
        Ok(())
    }

    /// Number of registered documents.
    pub fn len(&self) -> usize {
        self.docs.iter().filter(|d| d.is_some()).count()
    }

    /// Whether no documents are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered documents, ascending by item id.
    pub fn iter(&self) -> impl Iterator<Item = &StoredDocument> {
        self.docs.iter().filter_map(|d| d.as_ref())
    }

    /// Approved documents only — the searchable subset.
    pub fn approved(&self) -> impl Iterator<Item = &StoredDocument> {
        self.iter().filter(|d| d.status == CurationStatus::Approved)
    }
}

impl FromIterator<StoredDocument> for DocumentStore {
    fn from_iter<T: IntoIterator<Item = StoredDocument>>(iter: T) -> Self {
        let mut store = Self::new();
        for d in iter {
            store.upsert(d);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, status: CurationStatus) -> StoredDocument {
        StoredDocument {
            item: ItemId::new(id),
            title: format!("Doc {id}"),
            body: "body".into(),
            status,
        }
    }

    #[test]
    fn upsert_get_roundtrip() {
        let mut s = DocumentStore::new();
        assert!(s.upsert(doc(3, CurationStatus::Approved)).is_none());
        assert_eq!(s.get(ItemId::new(3)).unwrap().title, "Doc 3");
        assert!(s.get(ItemId::new(0)).is_none());
        assert!(s.get_required(ItemId::new(9)).is_err());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn status_transitions() {
        let mut s = DocumentStore::new();
        s.upsert(doc(1, CurationStatus::Pending));
        assert_eq!(s.approved().count(), 0);
        s.set_status(ItemId::new(1), CurationStatus::Approved)
            .unwrap();
        assert_eq!(s.approved().count(), 1);
        s.set_status(ItemId::new(1), CurationStatus::Rejected)
            .unwrap();
        assert_eq!(s.approved().count(), 0);
        assert!(s
            .set_status(ItemId::new(5), CurationStatus::Approved)
            .is_err());
    }

    #[test]
    fn iteration_in_item_order() {
        let s: DocumentStore = [
            doc(4, CurationStatus::Approved),
            doc(1, CurationStatus::Pending),
        ]
        .into_iter()
        .collect();
        let ids: Vec<u32> = s.iter().map(|d| d.item.raw()).collect();
        assert_eq!(ids, vec![1, 4]);
        assert!(!s.is_empty());
    }
}
