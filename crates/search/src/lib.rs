//! Expert-curated health document search engine.
//!
//! §II of the paper: *"Via the available app, users can use a search
//! engine to find useful documents selected by the experts and then, can
//! rate the individual results."* The search engine is the front door of
//! the platform — ratings (the recommender's fuel) are collected on its
//! result lists — so a faithful reproduction needs one.
//!
//! * [`DocumentStore`] — curated documents with expert-approval state
//!   (mirroring HONcode-style curation the paper discusses in §VII),
//! * [`SearchIndex`] — an inverted index over title+body with BM25
//!   ranking and conjunctive/disjunctive query modes,
//! * [`SearchResult`] — ranked hits, deterministic tie-breaking.
//!
//! Only approved documents are searchable — *"giving medical experts the
//! chance to control the information that is given"* (§I, goal 2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod index;
mod store;

pub use index::{QueryMode, SearchIndex, SearchResult};
pub use store::{CurationStatus, DocumentStore, StoredDocument};
