//! Per-package metric computation: one `GroupRecommendation` in, one
//! [`PackageFairnessMetrics`] out.
//!
//! Every formula is a fixed-order fold over the package, so two
//! bitwise-identical recommendations produce bitwise-identical metrics
//! regardless of store layout or thread count — the property the
//! mono-vs-sharded equivalence tests pin.

use fairrec_engine::GroupRecommendation;
use fairrec_types::{MemberUtility, PackageFairnessMetrics, RATING_MAX, RATING_MIN};

/// Maps a rating-domain score into `[0, 1]`.
///
/// Relevance predictions are weighted means of ratings (Equation 1), so
/// they already live in `[RATING_MIN, RATING_MAX]`; the clamp only
/// guards against future score sources.
pub fn normalize(score: f64) -> f64 {
    ((score - RATING_MIN) / (RATING_MAX - RATING_MIN)).clamp(0.0, 1.0)
}

/// Per-member utility breakdown of one package, in group member order.
///
/// A member's utility is the mean normalised relevance of the package
/// items *defined* for them (Equation 1 can be undefined when none of
/// the member's peers rated an item); a member with no defined item
/// scores 0 — the conservative reading: an invisible member is an
/// unfairly treated one, not a missing data point.
pub fn member_utilities(recommendation: &GroupRecommendation) -> Vec<MemberUtility> {
    recommendation
        .members
        .iter()
        .enumerate()
        .map(|(m, sat)| {
            let mut sum = 0.0;
            let mut defined = 0u32;
            for item in &recommendation.items {
                if let Some(score) = item.member_relevance[m] {
                    sum += normalize(score);
                    defined += 1;
                }
            }
            let utility = if defined == 0 {
                0.0
            } else {
                sum / f64::from(defined)
            };
            MemberUtility {
                user: sat.user,
                utility,
                defined_items: defined,
                satisfied: sat.satisfied,
            }
        })
        .collect()
}

/// Computes every per-package metric of one served recommendation.
///
/// Formulas (all utilities normalised into `[0, 1]` via [`normalize`]):
///
/// * `fairness`, `value` — copied from the package (Definition 3),
/// * `mean_member_utility` — mean over members of [`member_utilities`],
/// * `worst_member_utility` — the minimum (the Rawlsian floor),
/// * `member_cv` — population σ / mean of member utilities, 0 when the
///   mean is 0 (an all-undefined package carries no dispersion signal),
/// * `group_member_disparity` — |mean normalised `group_relevance` over
///   package items − `mean_member_utility`|; an empty package scores 0
///   on both sides.
pub fn package_metrics(recommendation: &GroupRecommendation) -> PackageFairnessMetrics {
    let utilities = member_utilities(recommendation);
    let num_members = utilities.len() as u32;
    let satisfied_members = utilities.iter().filter(|u| u.satisfied).count() as u32;

    let mean_member_utility = if utilities.is_empty() {
        0.0
    } else {
        utilities.iter().map(|u| u.utility).sum::<f64>() / f64::from(num_members)
    };
    let worst_member_utility = utilities
        .iter()
        .map(|u| u.utility)
        .fold(f64::INFINITY, f64::min)
        .min(1.0); // empty group: INFINITY → the neutral 1.0

    let member_cv = if utilities.is_empty() || mean_member_utility == 0.0 {
        0.0
    } else {
        let variance = utilities
            .iter()
            .map(|u| {
                let d = u.utility - mean_member_utility;
                d * d
            })
            .sum::<f64>()
            / f64::from(num_members);
        variance.sqrt() / mean_member_utility
    };

    let group_score = if recommendation.items.is_empty() {
        0.0
    } else {
        recommendation
            .items
            .iter()
            .map(|i| normalize(i.group_relevance))
            .sum::<f64>()
            / recommendation.items.len() as f64
    };
    let group_member_disparity = (group_score - mean_member_utility).abs();

    PackageFairnessMetrics {
        fairness: recommendation.fairness,
        value: recommendation.value,
        mean_member_utility,
        worst_member_utility,
        member_cv,
        group_member_disparity,
        satisfied_members,
        num_members,
        package_len: recommendation.items.len() as u32,
    }
}
