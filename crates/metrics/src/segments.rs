//! User segmentation for statistical-parity-style exposure.
//!
//! The health-domain fairness literature (Rampisela et al.) tracks
//! whether a recommender serves *low-activity* users — patients with
//! few ratings — as well as it serves prolific ones. [`SegmentSpec`]
//! splits the user population into activity terciles from rating
//! degrees read through [`RatingsRead`], so the same segmentation is
//! computed, bit for bit, on monolithic and sharded stores.

use fairrec_types::{ExposureParity, RatingsRead, SegmentExposure, UserId};

/// Number of activity segments (terciles).
pub const NUM_SEGMENTS: usize = 3;

/// A frozen user → activity-segment assignment.
///
/// Built once from a rating store snapshot; requests evaluated later
/// are judged against this frozen segmentation (the monitor's sampling
/// contract — see `FairnessMonitor`). Users that did not exist at
/// freeze time had no ratings then, so they map to segment 0 (least
/// active).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSpec {
    segment_of: Vec<u8>,
}

impl SegmentSpec {
    /// Splits the store's users into activity terciles by rating degree
    /// (number of ratings a user has left).
    ///
    /// Cutoffs are the degrees at ranks ⌊n/3⌋ and ⌊2n/3⌋ of the sorted
    /// degree sequence; a user lands in the highest segment whose
    /// cutoff their degree reaches. Ties therefore resolve identically
    /// everywhere — the assignment depends only on the degree
    /// multiset, which mono and sharded reads agree on exactly.
    pub fn activity_terciles(reads: &dyn RatingsRead) -> Self {
        let num_users = reads.num_users() as usize;
        let mut degrees = vec![0u32; num_users];
        for raw in 0..reads.num_items() {
            reads.for_each_rater(fairrec_types::ItemId::new(raw), &mut |user, _| {
                degrees[user.index()] += 1;
            });
        }
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        let cutoff = |rank: usize| sorted.get(rank).copied().unwrap_or(u32::MAX);
        let (lo, hi) = (cutoff(num_users / 3), cutoff(2 * num_users / 3));
        let segment_of = degrees
            .iter()
            .map(|&d| {
                if d >= hi {
                    2
                } else if d >= lo {
                    1
                } else {
                    0
                }
            })
            .collect();
        Self { segment_of }
    }

    /// The segment of `user` (0 = least active). Users unknown at
    /// freeze time map to segment 0.
    pub fn segment(&self, user: UserId) -> usize {
        self.segment_of.get(user.index()).map_or(0, |&s| s as usize)
    }

    /// Users covered by the frozen assignment.
    pub fn num_users(&self) -> usize {
        self.segment_of.len()
    }
}

/// Plain (single-threaded) exposure accumulator: counts, per segment,
/// how many member-slots were observed and how many of those the
/// served package satisfied. The monitor keeps the same counts in
/// atomics; this form backs the offline evaluation harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExposureTracker {
    segments: [SegmentExposure; NUM_SEGMENTS],
}

impl ExposureTracker {
    /// Records one member outcome.
    pub fn record(&mut self, segment: usize, satisfied: bool) {
        let slot = &mut self.segments[segment.min(NUM_SEGMENTS - 1)];
        slot.observed += 1;
        slot.satisfied += u64::from(satisfied);
    }

    /// The accumulated per-segment exposures and their parity gap.
    pub fn parity(&self) -> ExposureParity {
        ExposureParity {
            segments: self.segments.to_vec(),
            gap: parity_gap(&self.segments),
        }
    }
}

/// `max − min` satisfaction rate over segments with observations; 0
/// when at most one segment was observed (a gap needs two rates to
/// compare).
pub fn parity_gap(segments: &[SegmentExposure]) -> f64 {
    let mut rates = segments
        .iter()
        .filter(|s| s.observed > 0)
        .map(SegmentExposure::exposure);
    let Some(first) = rates.next() else {
        return 0.0;
    };
    let (min, max) = rates.fold((first, first), |(lo, hi), r| (lo.min(r), hi.max(r)));
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::{ItemId, Rating, RatingMatrixBuilder};

    #[test]
    fn terciles_split_by_degree() {
        // Degrees: u0=1, u1=1, u2=2, u3=3, u4=4, u5=5. Sorted cutoffs
        // at ranks 2 and 4: lo=2, hi=4.
        let mut b = RatingMatrixBuilder::new().reserve_ids(6, 5);
        let degrees = [1u32, 1, 2, 3, 4, 5];
        for (u, &d) in degrees.iter().enumerate() {
            for i in 0..d {
                b.add(
                    UserId::new(u as u32),
                    ItemId::new(i),
                    Rating::new(3.0).unwrap(),
                );
            }
        }
        let m = b.build().unwrap();
        let spec = SegmentSpec::activity_terciles(&m);
        let got: Vec<usize> = (0..6).map(|u| spec.segment(UserId::new(u))).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2]);
        // Unknown-at-freeze users are least-active by definition.
        assert_eq!(spec.segment(UserId::new(99)), 0);
    }

    #[test]
    fn parity_gap_ignores_unobserved_segments() {
        let mut t = ExposureTracker::default();
        assert_eq!(t.parity().gap, 0.0);
        t.record(0, true);
        t.record(0, false);
        assert_eq!(t.parity().gap, 0.0, "one observed segment: no gap");
        t.record(2, true);
        let p = t.parity();
        assert_eq!(p.gap, 0.5);
        assert_eq!(p.segments[1].observed, 0);
    }
}
