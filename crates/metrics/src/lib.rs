//! Fairness evaluation and runtime monitoring for `fairrec`.
//!
//! The engine *optimises* Definition-1/3 fairness on every request;
//! this crate *measures* the outcomes it produces — the paper's claim
//! ("group fairness without destroying per-member quality") as a set of
//! regression-gated numbers rather than an assumption:
//!
//! * [`package_metrics`] / [`member_utilities`] — per-package and
//!   per-member metrics from a served [`GroupRecommendation`]:
//!   group↔member disparity, worst-member utility, member coefficient
//!   of variation ([`package`] documents the exact formulas),
//! * [`SegmentSpec`] / [`ExposureTracker`] — statistical-parity-style
//!   exposure across user-activity terciles, computed through
//!   [`RatingsRead`](fairrec_types::RatingsRead) so monolithic and
//!   sharded stores segment identically,
//! * [`FairnessMonitor`] — a sampled, threshold-checked
//!   [`RecommendationObserver`](fairrec_engine::RecommendationObserver)
//!   for the serving path, with `ServerStats`-style counters and a
//!   pass/fail [`FairnessReport`](fairrec_types::FairnessReport),
//! * [`evaluate`] / [`tradeoff_curve`] — the offline evaluation harness
//!   behind `examples/fairness_eval` and `benches/fairness.rs`, whose
//!   rows the committed `BENCH_*.json` trajectory gates in CI.
//!
//! Every computation is a fixed-order fold, so metric values are
//! bitwise identical across store layouts and thread counts — which is
//! what lets CI gate them as tightly as the perf ratios.
//!
//! [`GroupRecommendation`]: fairrec_engine::GroupRecommendation

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod eval;
mod monitor;
pub mod package;
mod segments;

pub use eval::{evaluate, tradeoff_curve, EvalAccumulator, EvalSummary};
pub use monitor::{FairnessMonitor, FairnessThresholds, MonitorConfig};
pub use package::{member_utilities, normalize, package_metrics};
pub use segments::{parity_gap, ExposureTracker, SegmentSpec, NUM_SEGMENTS};
