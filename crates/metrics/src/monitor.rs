//! Runtime fairness monitoring: a threshold-checked
//! [`RecommendationObserver`] that rides the engine's serving path.
//!
//! Modelled on the `HealthcareFairness` evaluator pattern: a fixed set
//! of named checks, each a `{value, threshold, passed}` triple, rolled
//! into one pass/fail [`FairnessReport`]. Counters follow the
//! `ServerStats` idiom — monotone atomics, snapshotted, never reset —
//! so the monitor is safe to share across the serving fan-out.

use crate::package::package_metrics;
use crate::segments::{parity_gap, SegmentSpec, NUM_SEGMENTS};
use fairrec_core::group::Group;
use fairrec_engine::{GroupRecommendation, RecommendationObserver};
use fairrec_types::{FairnessReport, MetricCheck, MonitorStats, RatingsRead, SegmentExposure};
use std::sync::atomic::{AtomicU64, Ordering};

/// The monitor's pass/fail thresholds, one per check.
///
/// The defaults encode the paper's promise — *group fairness without
/// destroying per-member quality* — loosely enough to hold on any
/// reasonable configuration; tighten them per deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessThresholds {
    /// Floor on the lowest Definition-3 fairness served.
    pub min_fairness: f64,
    /// Floor on the lowest worst-member utility served.
    pub min_worst_member_utility: f64,
    /// Ceiling on the member coefficient of variation.
    pub max_member_cv: f64,
    /// Ceiling on the group↔member disparity.
    pub max_group_member_disparity: f64,
    /// Ceiling on the segment exposure parity gap.
    pub max_exposure_gap: f64,
}

impl Default for FairnessThresholds {
    fn default() -> Self {
        Self {
            min_fairness: 0.25,
            min_worst_member_utility: 0.05,
            max_member_cv: 1.0,
            max_group_member_disparity: 0.5,
            max_exposure_gap: 0.5,
        }
    }
}

/// Monitor construction knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Evaluate every `sample_every`-th observed request (1 = all).
    /// Values below 1 are treated as 1.
    pub sample_every: u64,
    /// The pass/fail thresholds.
    pub thresholds: FairnessThresholds,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            sample_every: 1,
            thresholds: FairnessThresholds::default(),
        }
    }
}

/// Lock-free f64 extremum cells (bit-cast through `AtomicU64`).
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Monotone update: keeps the more extreme of the current and new
    /// value under `keep_new` (finite values only — metrics are).
    fn update(&self, new: f64, keep_new: impl Fn(f64, f64) -> bool) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while keep_new(f64::from_bits(cur), new) {
            match self.0.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A sampled, threshold-checked fairness monitor for the serving path.
///
/// **Sampling contract.** The monitor counts every request its engine
/// serves (`observed`) and fully evaluates every `sample_every`-th one
/// (`evaluated`), starting with the first. Evaluation is a fixed-order
/// fold over the already-assembled recommendation plus O(|G|) segment
/// lookups against a user→segment assignment **frozen at construction
/// time** from the store snapshot passed to [`FairnessMonitor::new`] —
/// the hook never re-reads the rating store, so its cost is independent
/// of dataset size and it never perturbs the engine's own outputs.
/// Users ingested after construction fall into segment 0 (least
/// active) until a new monitor is built.
pub struct FairnessMonitor {
    config: MonitorConfig,
    segments: SegmentSpec,
    observed: AtomicU64,
    evaluated: AtomicU64,
    violations: AtomicU64,
    min_fairness: AtomicF64,
    min_worst_member_utility: AtomicF64,
    max_member_cv: AtomicF64,
    max_group_member_disparity: AtomicF64,
    seg_observed: [AtomicU64; NUM_SEGMENTS],
    seg_satisfied: [AtomicU64; NUM_SEGMENTS],
}

impl FairnessMonitor {
    /// Builds a monitor, freezing the activity segmentation from the
    /// given store snapshot (pass `engine.ratings().reads()`).
    pub fn new(config: MonitorConfig, reads: &dyn RatingsRead) -> Self {
        Self {
            config,
            segments: SegmentSpec::activity_terciles(reads),
            observed: AtomicU64::new(0),
            evaluated: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            min_fairness: AtomicF64::new(1.0),
            min_worst_member_utility: AtomicF64::new(1.0),
            max_member_cv: AtomicF64::new(0.0),
            max_group_member_disparity: AtomicF64::new(0.0),
            seg_observed: Default::default(),
            seg_satisfied: Default::default(),
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> &FairnessThresholds {
        &self.config.thresholds
    }

    /// The frozen segmentation the monitor judges exposure against.
    pub fn segments(&self) -> &SegmentSpec {
        &self.segments
    }

    /// Snapshot of the monotone counters.
    pub fn stats(&self) -> MonitorStats {
        MonitorStats {
            observed: self.observed.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            min_fairness: self.min_fairness.get(),
            min_worst_member_utility: self.min_worst_member_utility.get(),
            max_member_cv: self.max_member_cv.get(),
            max_group_member_disparity: self.max_group_member_disparity.get(),
        }
    }

    /// Per-segment exposure snapshot.
    pub fn exposure(&self) -> [SegmentExposure; NUM_SEGMENTS] {
        let mut out = [SegmentExposure::default(); NUM_SEGMENTS];
        for (i, slot) in out.iter_mut().enumerate() {
            slot.observed = self.seg_observed[i].load(Ordering::Relaxed);
            slot.satisfied = self.seg_satisfied[i].load(Ordering::Relaxed);
        }
        out
    }

    /// The pass/fail verdict over everything evaluated so far: one
    /// check per threshold against the running extrema plus the
    /// exposure parity gap. Passes vacuously before any evaluation.
    pub fn report(&self) -> FairnessReport {
        let stats = self.stats();
        let t = &self.config.thresholds;
        let checks = vec![
            MetricCheck::new("min_fairness", stats.min_fairness, t.min_fairness, true),
            MetricCheck::new(
                "min_worst_member_utility",
                stats.min_worst_member_utility,
                t.min_worst_member_utility,
                true,
            ),
            MetricCheck::new("max_member_cv", stats.max_member_cv, t.max_member_cv, false),
            MetricCheck::new(
                "max_group_member_disparity",
                stats.max_group_member_disparity,
                t.max_group_member_disparity,
                false,
            ),
            MetricCheck::new(
                "exposure_gap",
                parity_gap(&self.exposure()),
                t.max_exposure_gap,
                false,
            ),
        ];
        let passed = stats.evaluated == 0 || checks.iter().all(|c| c.passed);
        FairnessReport {
            checks,
            observed: stats.observed,
            evaluated: stats.evaluated,
            passed,
        }
    }
}

impl RecommendationObserver for FairnessMonitor {
    fn observe_recommendation(
        &self,
        group: &Group,
        _z: usize,
        recommendation: &GroupRecommendation,
        _reads: &dyn RatingsRead,
    ) {
        let seen = self.observed.fetch_add(1, Ordering::Relaxed);
        if !seen.is_multiple_of(self.config.sample_every.max(1)) {
            return;
        }
        self.evaluated.fetch_add(1, Ordering::Relaxed);

        let metrics = package_metrics(recommendation);
        self.min_fairness
            .update(metrics.fairness, |cur, new| new < cur);
        self.min_worst_member_utility
            .update(metrics.worst_member_utility, |cur, new| new < cur);
        self.max_member_cv
            .update(metrics.member_cv, |cur, new| new > cur);
        self.max_group_member_disparity
            .update(metrics.group_member_disparity, |cur, new| new > cur);

        for (member, sat) in group.members().iter().zip(&recommendation.members) {
            let seg = self.segments.segment(*member);
            self.seg_observed[seg].fetch_add(1, Ordering::Relaxed);
            self.seg_satisfied[seg].fetch_add(u64::from(sat.satisfied), Ordering::Relaxed);
        }

        let t = &self.config.thresholds;
        let breached = metrics.fairness < t.min_fairness
            || metrics.worst_member_utility < t.min_worst_member_utility
            || metrics.member_cv > t.max_member_cv
            || metrics.group_member_disparity > t.max_group_member_disparity;
        if breached {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::{ItemId, Rating, RatingMatrix, RatingMatrixBuilder, UserId};

    fn tiny_store() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new().reserve_ids(4, 3);
        for (u, i, s) in [(0u32, 0u32, 5.0), (1, 0, 3.0), (2, 1, 4.0), (3, 2, 2.0)] {
            b.add(UserId::new(u), ItemId::new(i), Rating::new(s).unwrap());
        }
        b.build().unwrap()
    }

    #[test]
    fn vacuous_report_passes() {
        let m = FairnessMonitor::new(MonitorConfig::default(), &tiny_store());
        let report = m.report();
        assert!(report.passed);
        assert_eq!(report.evaluated, 0);
        assert_eq!(report.checks.len(), 5);
        assert_eq!(m.stats(), MonitorStats::default());
    }

    #[test]
    fn atomic_extrema_track_both_directions() {
        let cell = AtomicF64::new(1.0);
        cell.update(0.5, |cur, new| new < cur);
        cell.update(0.8, |cur, new| new < cur);
        assert_eq!(cell.get(), 0.5);
        let cell = AtomicF64::new(0.0);
        cell.update(0.3, |cur, new| new > cur);
        cell.update(0.1, |cur, new| new > cur);
        assert_eq!(cell.get(), 0.3);
    }
}
