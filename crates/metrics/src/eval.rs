//! Offline evaluation over a recommend run: aggregate the per-package
//! metrics of a batch of group requests into one summary, and sweep the
//! fairness/quality trade-off over the package size `z`.
//!
//! Everything here is a fixed-order fold over the input groups, so the
//! summary inherits the engine's bitwise-determinism contract: mono vs.
//! sharded stores and `recommend_batch` vs. `recommend_requests`
//! produce byte-identical summaries (proptest-pinned).

use crate::package::package_metrics;
use crate::segments::{ExposureTracker, SegmentSpec};
use fairrec_core::group::Group;
use fairrec_engine::{GroupRecommendation, RecommenderEngine};
use fairrec_types::{ExposureParity, Result, TradeoffPoint};

/// Aggregated fairness metrics of one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSummary {
    /// Packages evaluated.
    pub evaluated: u64,
    /// Mean Definition-3 fairness.
    pub mean_fairness: f64,
    /// Mean `value(G, D)`.
    pub mean_value: f64,
    /// Mean member utility (normalised, see `package_metrics`).
    pub mean_member_utility: f64,
    /// Lowest worst-member utility over the run — the Rawlsian floor.
    pub worst_member_utility: f64,
    /// Highest member coefficient of variation over the run.
    pub max_member_cv: f64,
    /// Highest group↔member disparity over the run.
    pub max_group_member_disparity: f64,
    /// Exposure across activity segments.
    pub exposure: ExposureParity,
}

/// Streaming accumulator behind [`EvalSummary`] — record packages in a
/// fixed order, then summarise.
#[derive(Debug, Clone)]
pub struct EvalAccumulator {
    segments: SegmentSpec,
    exposure: ExposureTracker,
    evaluated: u64,
    sum_fairness: f64,
    sum_value: f64,
    sum_member_utility: f64,
    worst_member_utility: f64,
    max_member_cv: f64,
    max_group_member_disparity: f64,
}

impl EvalAccumulator {
    /// An empty accumulator judging exposure against `segments`.
    pub fn new(segments: SegmentSpec) -> Self {
        Self {
            segments,
            exposure: ExposureTracker::default(),
            evaluated: 0,
            sum_fairness: 0.0,
            sum_value: 0.0,
            sum_member_utility: 0.0,
            worst_member_utility: 1.0,
            max_member_cv: 0.0,
            max_group_member_disparity: 0.0,
        }
    }

    /// Folds one served package into the run.
    pub fn record(&mut self, group: &Group, recommendation: &GroupRecommendation) {
        let m = package_metrics(recommendation);
        self.evaluated += 1;
        self.sum_fairness += m.fairness;
        self.sum_value += m.value;
        self.sum_member_utility += m.mean_member_utility;
        self.worst_member_utility = self.worst_member_utility.min(m.worst_member_utility);
        self.max_member_cv = self.max_member_cv.max(m.member_cv);
        self.max_group_member_disparity = self
            .max_group_member_disparity
            .max(m.group_member_disparity);
        for (member, sat) in group.members().iter().zip(&recommendation.members) {
            self.exposure
                .record(self.segments.segment(*member), sat.satisfied);
        }
    }

    /// The run summary (means over everything recorded; an empty run
    /// summarises to the neutral values).
    pub fn summary(&self) -> EvalSummary {
        let n = if self.evaluated == 0 {
            1.0
        } else {
            self.evaluated as f64
        };
        EvalSummary {
            evaluated: self.evaluated,
            mean_fairness: self.sum_fairness / n,
            mean_value: self.sum_value / n,
            mean_member_utility: self.sum_member_utility / n,
            worst_member_utility: self.worst_member_utility,
            max_member_cv: self.max_member_cv,
            max_group_member_disparity: self.max_group_member_disparity,
            exposure: self.exposure.parity(),
        }
    }
}

/// Evaluates one batch of groups at package size `z`: recommends every
/// group through the engine and summarises the served packages.
///
/// # Errors
/// Propagates the first recommendation failure.
pub fn evaluate(engine: &RecommenderEngine, groups: &[Group], z: usize) -> Result<EvalSummary> {
    let mut acc = EvalAccumulator::new(SegmentSpec::activity_terciles(engine.ratings().reads()));
    for (group, rec) in groups.iter().zip(engine.recommend_batch(groups, z)?) {
        acc.record(group, &rec);
    }
    Ok(acc.summary())
}

/// Sweeps the fairness/quality trade-off over package sizes `zs` —
/// the curve the paper's §IV experiments plot: fairness rises with `z`
/// (Proposition 1 guarantees 1.0 once `z ≥ |G|`) while per-item value
/// concentrates at small `z`.
///
/// # Errors
/// Propagates the first recommendation failure.
pub fn tradeoff_curve(
    engine: &RecommenderEngine,
    groups: &[Group],
    zs: &[usize],
) -> Result<Vec<TradeoffPoint>> {
    zs.iter()
        .map(|&z| {
            let s = evaluate(engine, groups, z)?;
            Ok(TradeoffPoint {
                z,
                fairness: s.mean_fairness,
                value: s.mean_value,
                mean_member_utility: s.mean_member_utility,
                worst_member_utility: s.worst_member_utility,
            })
        })
        .collect()
}
