//! Bitwise-equivalence pins for the fairness evaluation pipeline.
//!
//! The engine's determinism contract says mono vs. sharded stores and
//! `recommend_batch` vs. `recommend_requests` produce bitwise-identical
//! recommendations; every metric here is a fixed-order fold over those
//! recommendations, so the *metric reports* must be bitwise identical
//! too — that is what lets CI gate the committed fairness trajectory
//! at a tight tolerance regardless of which store layout or serving
//! path produced it. These proptests pin that end to end:
//!
//! * [`evaluate`] over a monolithic engine equals, bit for bit, the
//!   same evaluation over engines sharded at S ∈ {1, 2, 3, 8}, and a
//!   manual `recommend_requests` + [`EvalAccumulator`] replay of the
//!   same workload;
//! * a [`FairnessMonitor`] observing `recommend_batch` finishes with
//!   exactly the stats and report of one observing
//!   `recommend_requests`, on every store layout (with `sample_every
//!   = 1` every counter is an order-independent sum/min/max, so even
//!   the parallel serving path cannot perturb them).

use fairrec_core::group::Group;
use fairrec_data::{SyntheticConfig, SyntheticDataset};
use fairrec_engine::{EngineConfig, RecommendationObserver, RecommenderEngine};
use fairrec_metrics::{evaluate, EvalAccumulator, FairnessMonitor, MonitorConfig, SegmentSpec};
use fairrec_ontology::snomed::clinical_fragment;
use fairrec_types::{GroupId, UserId};
use proptest::prelude::*;
use std::sync::Arc;

const NUM_USERS: u32 = 32;
const NUM_ITEMS: u32 = 60;
const SHARD_COUNTS: [u32; 4] = [1, 2, 3, 8];

fn engine(num_shards: Option<u32>) -> RecommenderEngine {
    let ontology = clinical_fragment();
    let data = SyntheticDataset::generate(
        SyntheticConfig {
            num_users: NUM_USERS,
            num_items: NUM_ITEMS,
            num_communities: 4,
            ratings_per_user: 12,
            seed: 23,
            ..Default::default()
        },
        &ontology,
    )
    .unwrap();
    RecommenderEngine::new(
        data.matrix,
        data.profiles,
        ontology,
        EngineConfig {
            num_shards,
            ..Default::default()
        },
    )
    .unwrap()
}

fn groups_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0..NUM_USERS, 1..5), 1..5)
}

fn build_groups(raw: &[Vec<u32>]) -> Vec<Group> {
    raw.iter()
        .enumerate()
        .map(|(i, members)| {
            let mut m = members.clone();
            m.sort_unstable();
            m.dedup();
            Group::new(GroupId::new(i as u32), m.into_iter().map(UserId::new)).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `evaluate` is store-layout- and serving-path-invariant, bitwise.
    #[test]
    fn eval_summary_is_store_and_path_invariant(
        raw in groups_strategy(),
        z in 2usize..8,
    ) {
        let groups = build_groups(&raw);
        let mono = engine(None);
        let expected = evaluate(&mono, &groups, z).unwrap();

        // Same workload through `recommend_requests` + a manual
        // accumulator replay: identical summary, bit for bit.
        let spec = SegmentSpec::activity_terciles(mono.ratings().reads());
        let requests: Vec<(Group, usize)> =
            groups.iter().map(|g| (g.clone(), z)).collect();
        let mut acc = EvalAccumulator::new(spec);
        for (req, outcome) in requests.iter().zip(mono.recommend_requests(&requests)) {
            acc.record(&req.0, &outcome.unwrap());
        }
        prop_assert_eq!(&acc.summary(), &expected, "recommend_requests replay");

        for s in SHARD_COUNTS {
            let sharded = engine(Some(s));
            prop_assert_eq!(
                &evaluate(&sharded, &groups, z).unwrap(),
                &expected,
                "sharded S={}",
                s
            );
        }
    }

    /// A serving-path monitor finishes with identical stats and an
    /// identical threshold report whichever store layout and batch API
    /// carried the workload.
    #[test]
    fn monitor_report_is_store_and_path_invariant(
        raw in groups_strategy(),
        z in 2usize..8,
    ) {
        let groups = build_groups(&raw);
        let requests: Vec<(Group, usize)> =
            groups.iter().map(|g| (g.clone(), z)).collect();

        let run = |num_shards: Option<u32>, batch: bool| {
            let mut e = engine(num_shards);
            let monitor = Arc::new(FairnessMonitor::new(
                MonitorConfig::default(),
                e.ratings().reads(),
            ));
            e.set_observer(Arc::clone(&monitor) as Arc<dyn RecommendationObserver>);
            if batch {
                e.recommend_batch(&groups, z).unwrap();
            } else {
                for outcome in e.recommend_requests(&requests) {
                    outcome.unwrap();
                }
            }
            (monitor.stats(), monitor.report())
        };

        let expected = run(None, true);
        prop_assert_eq!(&run(None, false), &expected, "mono, recommend_requests");
        for s in SHARD_COUNTS {
            prop_assert_eq!(&run(Some(s), true), &expected, "S={}, recommend_batch", s);
            prop_assert_eq!(&run(Some(s), false), &expected, "S={}, recommend_requests", s);
        }
    }
}
