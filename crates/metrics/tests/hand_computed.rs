//! Hand-computed metric pins: every formula in `fairrec-metrics`
//! checked against values worked out on paper for a two-member,
//! two-item package (the same worked example docs/ARCHITECTURE.md
//! walks through).
//!
//! The fixture is chosen so every intermediate value is exactly
//! representable in binary floating point (quarters and sixteenths),
//! which lets the pins use `assert_eq!` instead of epsilon comparisons
//! — the metrics feed a tight CI drift gate, so their exactness is part
//! of the contract.

use fairrec_core::group::Group;
use fairrec_engine::{GroupRecommendation, MemberSatisfaction, RecommendedItem};
use fairrec_metrics::{
    member_utilities, normalize, package_metrics, parity_gap, EvalAccumulator, SegmentSpec,
};
use fairrec_types::{GroupId, ItemId, Rating, RatingMatrixBuilder, SegmentExposure, UserId};

fn member(user: u32, satisfied: bool) -> MemberSatisfaction {
    MemberSatisfaction {
        user: UserId::new(user),
        satisfied,
        best_package_rank: None,
        personal_best: None,
    }
}

fn item(id: u32, group_relevance: f64, member_relevance: Vec<Option<f64>>) -> RecommendedItem {
    RecommendedItem {
        item: ItemId::new(id),
        group_relevance,
        member_relevance,
        padded: false,
    }
}

/// The worked example. Normalised scores (via `(r − 1) / 4`):
///
/// |        | group | member 0 | member 1 |
/// |--------|-------|----------|----------|
/// | item 0 | 1.0   | 1.0      | 0.5      |
/// | item 1 | 0.5   | 0.75     | undefined|
///
/// * member utilities: `(1.0 + 0.75) / 2 = 0.875` and `0.5 / 1 = 0.5`,
/// * mean member utility: `(0.875 + 0.5) / 2 = 0.6875`,
/// * worst member utility: `0.5`,
/// * member CV: deviations ±0.1875, population σ = 0.1875,
///   CV = `0.1875 / 0.6875` (= 3/11),
/// * group score: `(1.0 + 0.5) / 2 = 0.75`,
///   disparity = `|0.75 − 0.6875| = 0.0625`.
fn worked_example() -> GroupRecommendation {
    GroupRecommendation {
        items: vec![
            item(0, 5.0, vec![Some(5.0), Some(3.0)]),
            item(1, 3.0, vec![Some(4.0), None]),
        ],
        fairness: 0.5,
        value: 7.25,
        members: vec![member(0, true), member(1, false)],
        pool_size: 10,
    }
}

#[test]
fn normalize_maps_the_rating_domain_onto_the_unit_interval() {
    assert_eq!(normalize(1.0), 0.0);
    assert_eq!(normalize(3.0), 0.5);
    assert_eq!(normalize(5.0), 1.0);
    // Out-of-domain scores clamp rather than leak past the interval.
    assert_eq!(normalize(0.0), 0.0);
    assert_eq!(normalize(9.0), 1.0);
}

#[test]
fn member_utilities_match_hand_computation() {
    let utilities = member_utilities(&worked_example());
    assert_eq!(utilities.len(), 2);

    assert_eq!(utilities[0].user, UserId::new(0));
    assert_eq!(utilities[0].utility, 0.875);
    assert_eq!(utilities[0].defined_items, 2);
    assert!(utilities[0].satisfied);

    assert_eq!(utilities[1].user, UserId::new(1));
    assert_eq!(utilities[1].utility, 0.5);
    assert_eq!(utilities[1].defined_items, 1);
    assert!(!utilities[1].satisfied);
}

#[test]
fn package_metrics_match_hand_computation() {
    let m = package_metrics(&worked_example());
    assert_eq!(m.fairness, 0.5);
    assert_eq!(m.value, 7.25);
    assert_eq!(m.mean_member_utility, 0.6875);
    assert_eq!(m.worst_member_utility, 0.5);
    assert_eq!(m.member_cv, 0.1875 / 0.6875);
    assert_eq!(m.group_member_disparity, 0.0625);
    assert_eq!(m.satisfied_members, 1);
    assert_eq!(m.num_members, 2);
    assert_eq!(m.package_len, 2);
}

#[test]
fn invisible_member_scores_zero_and_dominates_the_floor() {
    // Member 1 has no defined item at all: utility 0 (the conservative
    // reading), so utilities are [1.0, 0.0] → mean 0.5, σ = 0.5,
    // CV = 1.0 exactly, and the Rawlsian floor collapses to 0.
    let rec = GroupRecommendation {
        items: vec![item(0, 5.0, vec![Some(5.0), None])],
        fairness: 0.5,
        value: 1.0,
        members: vec![member(0, true), member(1, false)],
        pool_size: 4,
    };
    let m = package_metrics(&rec);
    assert_eq!(m.mean_member_utility, 0.5);
    assert_eq!(m.worst_member_utility, 0.0);
    assert_eq!(m.member_cv, 1.0);
    // group score 1.0 vs mean member utility 0.5.
    assert_eq!(m.group_member_disparity, 0.5);
}

#[test]
fn degenerate_packages_take_the_documented_neutral_values() {
    // All-undefined package: mean 0 → CV defined as 0 (no dispersion
    // signal), disparity is the full group score.
    let rec = GroupRecommendation {
        items: vec![item(0, 3.0, vec![None, None])],
        fairness: 0.0,
        value: 0.0,
        members: vec![member(0, false), member(1, false)],
        pool_size: 4,
    };
    let m = package_metrics(&rec);
    assert_eq!(m.mean_member_utility, 0.0);
    assert_eq!(m.worst_member_utility, 0.0);
    assert_eq!(m.member_cv, 0.0);
    assert_eq!(m.group_member_disparity, 0.5);

    // Empty package over an empty group: everything neutral, and the
    // worst-member floor is 1.0 (min over nothing must not trip the
    // threshold monitor).
    let empty = GroupRecommendation {
        items: vec![],
        fairness: 0.0,
        value: 0.0,
        members: vec![],
        pool_size: 0,
    };
    let m = package_metrics(&empty);
    assert_eq!(m.mean_member_utility, 0.0);
    assert_eq!(m.worst_member_utility, 1.0);
    assert_eq!(m.member_cv, 0.0);
    assert_eq!(m.group_member_disparity, 0.0);
    assert_eq!(m.package_len, 0);
}

#[test]
fn parity_gap_matches_hand_computation() {
    let segments = [
        SegmentExposure {
            observed: 4,
            satisfied: 2,
        },
        SegmentExposure::default(),
        SegmentExposure {
            observed: 5,
            satisfied: 5,
        },
    ];
    // Observed rates 0.5 and 1.0; the unobserved middle segment is
    // skipped, not treated as 1.0.
    assert_eq!(parity_gap(&segments), 0.5);
}

#[test]
fn eval_accumulator_aggregates_exactly() {
    // Degrees [1, 1, 2, 3, 4, 5] → tercile cutoffs lo=2, hi=4 →
    // segments [0, 0, 1, 1, 2, 2] (pinned in fairrec-metrics's own
    // segment tests; re-derived here so the aggregate is end-to-end
    // hand-checkable).
    let mut b = RatingMatrixBuilder::new().reserve_ids(6, 5);
    for (u, &d) in [1u32, 1, 2, 3, 4, 5].iter().enumerate() {
        for i in 0..d {
            b.add(
                UserId::new(u as u32),
                ItemId::new(i),
                Rating::new(3.0).unwrap(),
            );
        }
    }
    let spec = SegmentSpec::activity_terciles(&b.build().unwrap());
    let mut acc = EvalAccumulator::new(spec);

    // Run 1: the worked example served to users {0, 4} — segments 0
    // and 2, satisfied flags (true, false).
    let g1 = Group::new(GroupId::new(1), [0u32, 4].into_iter().map(UserId::new)).unwrap();
    acc.record(&g1, &worked_example());

    // Run 2: the invisible-member package served to users {2, 3} —
    // both segment 1, both satisfied.
    let g2 = Group::new(GroupId::new(2), [2u32, 3].into_iter().map(UserId::new)).unwrap();
    let rec2 = GroupRecommendation {
        items: vec![item(0, 5.0, vec![Some(5.0), None])],
        fairness: 1.0,
        value: 2.0,
        members: vec![member(2, true), member(3, true)],
        pool_size: 4,
    };
    acc.record(&g2, &rec2);

    let s = acc.summary();
    assert_eq!(s.evaluated, 2);
    assert_eq!(s.mean_fairness, 0.75); // (0.5 + 1.0) / 2
    assert_eq!(s.mean_value, 4.625); // (7.25 + 2.0) / 2
    assert_eq!(s.mean_member_utility, 0.59375); // (0.6875 + 0.5) / 2
    assert_eq!(s.worst_member_utility, 0.0); // run 2's invisible member
    assert_eq!(s.max_member_cv, 1.0); // max(3/11, 1.0)
    assert_eq!(s.max_group_member_disparity, 0.5); // max(0.0625, 0.5)

    // Exposure: segment 0 = {1 observed, 1 satisfied} (user 0),
    // segment 1 = {2, 2} (users 2, 3), segment 2 = {1, 0} (user 4) —
    // rates 1.0, 1.0, 0.0 → gap 1.0.
    assert_eq!(s.exposure.segments[0].observed, 1);
    assert_eq!(s.exposure.segments[0].satisfied, 1);
    assert_eq!(s.exposure.segments[1].observed, 2);
    assert_eq!(s.exposure.segments[1].satisfied, 2);
    assert_eq!(s.exposure.segments[2].observed, 1);
    assert_eq!(s.exposure.segments[2].satisfied, 0);
    assert_eq!(s.exposure.gap, 1.0);
}
