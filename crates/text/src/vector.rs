//! Sparse vectors and cosine similarity (Equation 3).

use crate::vocab::TermId;

/// A sparse vector over term ids, stored as `(id, weight)` pairs sorted by
/// id. Weights of zero are never stored.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    entries: Vec<(TermId, f64)>,
}

impl SparseVector {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from unsorted `(id, weight)` pairs, summing duplicates and
    /// dropping zeros.
    pub fn from_pairs(mut pairs: Vec<(TermId, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(TermId, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => entries.push((id, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        Self { entries }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of `id` (0 if absent).
    pub fn get(&self, id: TermId) -> f64 {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|slot| self.entries[slot].1)
            .unwrap_or(0.0)
    }

    /// Iterator over `(id, weight)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Dot product (merge-join over the sorted entries).
    pub fn dot(&self, other: &Self) -> f64 {
        let (mut a, mut b) = (self.entries.as_slice(), other.entries.as_slice());
        let mut acc = 0.0;
        while let (Some(&(ia, wa)), Some(&(ib, wb))) = (a.first(), b.first()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => a = &a[1..],
                std::cmp::Ordering::Greater => b = &b[1..],
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    a = &a[1..];
                    b = &b[1..];
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }
}

impl FromIterator<(TermId, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (TermId, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

/// Cosine similarity of Equation 3: `A·B / (‖A‖·‖B‖)`.
///
/// Returns 0 when either vector is all-zero — an empty profile shares no
/// interests with anyone, which matches the paper's intent even though the
/// formula is undefined there.
pub fn cosine(a: &SparseVector, b: &SparseVector) -> f64 {
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        return 0.0;
    }
    // Guard against floating-point drift pushing the ratio past 1.
    (a.dot(b) / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_sums_and_drops_zeros() {
        let x = v(&[(3, 1.0), (1, 2.0), (3, 2.0), (2, 0.0)]);
        let entries: Vec<_> = x.iter().collect();
        assert_eq!(entries, vec![(1, 2.0), (3, 3.0)]);
        assert_eq!(x.nnz(), 2);
        assert_eq!(x.get(3), 3.0);
        assert_eq!(x.get(2), 0.0);
    }

    #[test]
    fn dot_product_over_shared_terms_only() {
        let a = v(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = v(&[(2, 4.0), (3, 9.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + 3.0 * 1.0);
    }

    #[test]
    fn norm_matches_hand_value() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_basic_geometry() {
        let a = v(&[(0, 1.0)]);
        let b = v(&[(1, 1.0)]);
        let c = v(&[(0, 2.0)]);
        assert_eq!(cosine(&a, &b), 0.0); // orthogonal
        assert!((cosine(&a, &c) - 1.0).abs() < 1e-12); // parallel
        let mixed = v(&[(0, 1.0), (1, 1.0)]);
        assert!((cosine(&a, &mixed) - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cosine_with_empty_vector_is_zero() {
        let a = v(&[(0, 1.0)]);
        let empty = SparseVector::new();
        assert_eq!(cosine(&a, &empty), 0.0);
        assert_eq!(cosine(&empty, &empty), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let x: SparseVector = [(2u32, 1.0), (1u32, 1.0)].into_iter().collect();
        assert_eq!(x.iter().collect::<Vec<_>>(), vec![(1, 1.0), (2, 1.0)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_vec() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0u32..30, -5.0f64..5.0), 0..20)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        #[test]
        fn cosine_is_symmetric_and_bounded(a in arb_vec(), b in arb_vec()) {
            let ab = cosine(&a, &b);
            let ba = cosine(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((-1.0..=1.0).contains(&ab));
        }

        #[test]
        fn self_cosine_is_one_for_nonzero(a in arb_vec()) {
            prop_assume!(!a.is_empty());
            prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn dot_matches_dense_computation(a in arb_vec(), b in arb_vec()) {
            let dense: f64 = (0u32..30).map(|i| a.get(i) * b.get(i)).sum();
            prop_assert!((a.dot(&b) - dense).abs() < 1e-9);
        }
    }
}
