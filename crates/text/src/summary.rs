//! Extractive document summarisation (extension — the paper's future
//! work: *"present a semantically enhanced summary of the indexed
//! document to the patient to augment his understanding"*).
//!
//! Two classic, corpus-statistics-only primitives:
//!
//! * [`key_terms`] — the document's most discriminative terms by tf-idf
//!   weight (what makes *this* document different from the corpus),
//! * [`summarize`] — extractive summary: sentences scored by the mean
//!   tf-idf of their tokens, the best `n` returned **in original order**
//!   (a summary that reorders sentences reads like noise).

use crate::tfidf::TfIdfModel;
use crate::tokenize::Tokenizer;

/// The `n` most discriminative terms of a tokenised document, best first
/// (ties alphabetically for determinism).
pub fn key_terms<S: AsRef<str>>(model: &TfIdfModel, tokens: &[S], n: usize) -> Vec<String> {
    let vector = model.vectorize(tokens);
    let mut weighted: Vec<(String, f64)> = vector
        .iter()
        .map(|(id, w)| (model.vocabulary().term(id).to_string(), w))
        .collect();
    weighted.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("tf-idf weights are finite")
            .then(a.0.cmp(&b.0))
    });
    weighted.truncate(n);
    weighted.into_iter().map(|(t, _)| t).collect()
}

/// Splits `text` into sentences on `.`, `!`, `?` boundaries, keeping
/// non-empty trimmed sentences.
fn split_sentences(text: &str) -> Vec<&str> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Extractive summary: the `max_sentences` highest-scoring sentences of
/// `text`, in their original order. A sentence's score is the **mean**
/// tf-idf weight of its tokens under `model` (mean, not sum — otherwise
/// long sentences always win).
pub fn summarize(
    model: &TfIdfModel,
    tokenizer: &Tokenizer,
    text: &str,
    max_sentences: usize,
) -> Vec<String> {
    let sentences = split_sentences(text);
    if sentences.is_empty() || max_sentences == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(usize, f64)> = sentences
        .iter()
        .enumerate()
        .map(|(idx, sentence)| {
            let tokens = tokenizer.tokenize(sentence);
            if tokens.is_empty() {
                return (idx, 0.0);
            }
            let vector = model.vectorize(&tokens);
            let total: f64 = vector.iter().map(|(_, w)| w).sum();
            (idx, total / tokens.len() as f64)
        })
        .collect();
    // Best-first, ties to the earlier sentence.
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are finite")
            .then(a.0.cmp(&b.0))
    });
    let mut keep: Vec<usize> = scored.iter().take(max_sentences).map(|&(i, _)| i).collect();
    keep.sort_unstable(); // restore document order
    keep.into_iter().map(|i| sentences[i].to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::CorpusBuilder;

    fn model(docs: &[&str]) -> (TfIdfModel, Tokenizer) {
        let tokenizer = Tokenizer::new();
        let mut corpus = CorpusBuilder::new();
        for d in docs {
            corpus.add_document(&tokenizer.tokenize(d));
        }
        (corpus.build(), tokenizer)
    }

    const CORPUS: &[&str] = &[
        "chemotherapy can cause nausea and fatigue in many patients",
        "a balanced diet helps patients keep strength during treatment",
        "asthma inhalers must be used with correct technique",
        "patients should discuss treatment side effects with their doctor",
    ];

    #[test]
    fn key_terms_surface_discriminative_words() {
        let (m, t) = model(CORPUS);
        let terms = key_terms(&m, &t.tokenize(CORPUS[2]), 3);
        assert!(terms.contains(&"asthma".to_string()) || terms.contains(&"inhalers".to_string()));
        // The ubiquitous word "patients" is never a key term: idf ≈ 0.
        assert!(!terms.contains(&"patients".to_string()));
    }

    #[test]
    fn key_terms_truncate_and_are_deterministic() {
        let (m, t) = model(CORPUS);
        let toks = t.tokenize(CORPUS[0]);
        assert_eq!(key_terms(&m, &toks, 2).len(), 2);
        assert_eq!(key_terms(&m, &toks, 2), key_terms(&m, &toks, 2));
        assert!(key_terms(&m, &toks, 0).is_empty());
    }

    #[test]
    fn summary_keeps_document_order() {
        let (m, t) = model(CORPUS);
        let text = "General words only here. Chemotherapy nausea fatigue chemotherapy. \
                    Another generic sentence follows. Inhalers asthma technique inhalers.";
        let summary = summarize(&m, &t, text, 2);
        assert_eq!(summary.len(), 2);
        // The two term-dense sentences, in original order.
        assert!(summary[0].contains("Chemotherapy"));
        assert!(summary[1].contains("Inhalers"));
    }

    #[test]
    fn summary_of_short_text_returns_everything() {
        let (m, t) = model(CORPUS);
        let summary = summarize(&m, &t, "Only one sentence here.", 5);
        assert_eq!(summary, vec!["Only one sentence here".to_string()]);
    }

    #[test]
    fn degenerate_inputs() {
        let (m, t) = model(CORPUS);
        assert!(summarize(&m, &t, "", 3).is_empty());
        assert!(summarize(&m, &t, "...!!!???", 3).is_empty());
        assert!(summarize(&m, &t, "some text.", 0).is_empty());
    }

    #[test]
    fn mean_scoring_does_not_reward_padding() {
        let (m, t) = model(CORPUS);
        // Same key content; the padded variant dilutes with corpus-wide
        // stop-ish words, so the dense sentence must win a 1-sentence cut.
        let text = "chemotherapy nausea. chemotherapy nausea patients patients patients patients.";
        let summary = summarize(&m, &t, text, 1);
        assert_eq!(summary, vec!["chemotherapy nausea".to_string()]);
    }
}
