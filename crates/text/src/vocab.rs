//! Term interning.

use std::collections::HashMap;

/// Dense identifier of an interned term.
pub type TermId = u32;

/// Bidirectional term ↔ id mapping.
///
/// Interning happens once at corpus-build time; lookups afterwards are
/// read-only, so a plain `HashMap` + `Vec` pair suffices (no locking).
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("vocabulary fits in u32");
        self.by_term.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        id
    }

    /// Looks up an existing term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The term for an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterator over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TermId, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("pain");
        let b = v.intern("chest");
        let a2 = v.intern("pain");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut v = Vocabulary::new();
        let id = v.intern("bronchitis");
        assert_eq!(v.get("bronchitis"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.term(id), "bronchitis");
    }

    #[test]
    fn iteration_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("b");
        v.intern("a");
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(0, "b"), (1, "a")]);
        assert!(!v.is_empty());
    }
}
