//! Tokenization.
//!
//! Profiles are short, semi-structured documents ("Acute bronchitis",
//! "Ramipril 10 MG Oral Capsule", "gender Female", …). The tokenizer
//! lower-cases, splits on any non-alphanumeric character, drops one-letter
//! fragments, and removes stop words. Numbers are kept: dosages ("10",
//! "500") carry real signal in medication strings.

use std::collections::HashSet;

/// Default English + template stop words.
///
/// The template words ("problem", "medication", …) appear in *every*
/// rendered profile, so they carry no discriminating power; idf would
/// down-weight them anyway, but dropping them keeps vectors small.
const DEFAULT_STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "she", "that", "the", "to", "was", "were", "will", "with",
];

/// Configurable tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stop_words: HashSet<String>,
    min_token_len: usize,
    keep_numbers: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            stop_words: DEFAULT_STOP_WORDS.iter().map(|s| s.to_string()).collect(),
            min_token_len: 2,
            keep_numbers: true,
        }
    }
}

impl Tokenizer {
    /// Tokenizer with the default stop-word list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizer with no stop words and no length filter — useful in tests
    /// and when the caller wants raw terms.
    pub fn verbatim() -> Self {
        Self {
            stop_words: HashSet::new(),
            min_token_len: 1,
            keep_numbers: true,
        }
    }

    /// Adds extra stop words (e.g. domain template words).
    pub fn with_stop_words<I, S>(mut self, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.stop_words
            .extend(words.into_iter().map(|w| w.as_ref().to_lowercase()));
        self
    }

    /// Discards purely numeric tokens.
    pub fn without_numbers(mut self) -> Self {
        self.keep_numbers = false;
        self
    }

    /// Tokenizes `text` into lower-cased terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| t.len() >= self.min_token_len)
            .map(|t| t.to_lowercase())
            .filter(|t| !self.stop_words.contains(t))
            .filter(|t| self.keep_numbers || !t.chars().all(|c| c.is_ascii_digit()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_on_punctuation() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("Ramipril 10 MG Oral-Capsule!"),
            vec!["ramipril", "10", "mg", "oral", "capsule"]
        );
    }

    #[test]
    fn removes_stop_words_and_short_tokens() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("the pain in a chest of I"),
            vec!["pain", "chest"]
        );
    }

    #[test]
    fn custom_stop_words_are_case_insensitive() {
        let t = Tokenizer::new().with_stop_words(["Problem", "MEDICATION"]);
        assert_eq!(
            t.tokenize("Problem: acute bronchitis; medication none"),
            vec!["acute", "bronchitis", "none"]
        );
    }

    #[test]
    fn numbers_can_be_dropped() {
        let t = Tokenizer::new().without_numbers();
        assert_eq!(t.tokenize("niacin 500 mg"), vec!["niacin", "mg"]);
    }

    #[test]
    fn verbatim_keeps_everything() {
        let t = Tokenizer::verbatim();
        assert_eq!(t.tokenize("a b the"), vec!["a", "b", "the"]);
    }

    #[test]
    fn empty_and_symbolic_input() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn unicode_is_handled() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("Ménière's disease"), vec!["ménière", "disease"]);
    }
}
