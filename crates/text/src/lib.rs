//! Vector-space text substrate.
//!
//! §V-B of the paper compares users by treating each profile as a document:
//! *"we consider all the information contained in a profile as a single
//! document … compute the term frequency (tf) and inverse document
//! frequency (idf) scores … each document can be represented as a vector …
//! calculating their cosine similarity"* (Definition 4, Equation 3).
//!
//! This crate is that machinery, independent of any health semantics:
//!
//! * [`Tokenizer`] — lower-casing, alphanumeric tokenization with a
//!   stop-word list,
//! * [`Vocabulary`] — term interning to dense `u32` ids,
//! * [`SparseVector`] — sorted sparse vectors with dot/norm/cosine,
//! * [`TfIdfModel`] / [`CorpusBuilder`] — corpus statistics (Definition 4)
//!   and document vectorisation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod summary;
mod tfidf;
mod tokenize;
mod vector;
mod vocab;

pub use summary::{key_terms, summarize};
pub use tfidf::{CorpusBuilder, TfIdfModel, TfWeighting};
pub use tokenize::Tokenizer;
pub use vector::{cosine, SparseVector};
pub use vocab::{TermId, Vocabulary};
