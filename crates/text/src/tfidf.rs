//! Corpus statistics and tf-idf vectorisation (Definition 4).
//!
//! The paper: *"The idf score is the log of the ratio of the total number
//! of documents to the number of documents containing that word"* and
//! *"by multiplying the tf and idf scores, we can determine how common a
//! word is in our documents"*. [`CorpusBuilder`] accumulates document
//! frequencies; [`TfIdfModel`] freezes them and turns any token list into a
//! [`SparseVector`] with weight `tf(t, d) · idf(t, D)`.
//!
//! Out-of-vocabulary terms in a query document receive weight 0 (their idf
//! over the training corpus is undefined); with `N` documents, a term in
//! every document gets `idf = ln(1) = 0`, exactly the paper's observation
//! that *"as a term appears in more documents … bringing the idf and
//! tf-idf closer to 0"*.

use crate::vector::SparseVector;
use crate::vocab::{TermId, Vocabulary};

/// Term-frequency weighting variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TfWeighting {
    /// `tf = count` — the paper's plain "occurrences within a document".
    #[default]
    RawCount,
    /// `tf = 1 + ln(count)` — sublinear damping for long documents.
    Sublinear,
    /// `tf = count / |d|` — length normalisation.
    LengthNormalized,
}

impl TfWeighting {
    fn apply(self, count: usize, doc_len: usize) -> f64 {
        debug_assert!(count > 0);
        match self {
            Self::RawCount => count as f64,
            Self::Sublinear => 1.0 + (count as f64).ln(),
            Self::LengthNormalized => count as f64 / doc_len.max(1) as f64,
        }
    }
}

/// Accumulates documents, then builds a [`TfIdfModel`].
#[derive(Debug, Default, Clone)]
pub struct CorpusBuilder {
    vocab: Vocabulary,
    /// Document frequency per term id.
    df: Vec<u32>,
    num_docs: usize,
    tf: TfWeighting,
}

impl CorpusBuilder {
    /// Empty corpus with the default ([`TfWeighting::RawCount`]) weighting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the term-frequency weighting.
    pub fn with_tf_weighting(mut self, tf: TfWeighting) -> Self {
        self.tf = tf;
        self
    }

    /// Adds one document given as tokens (see
    /// [`Tokenizer`](crate::Tokenizer)). Duplicate tokens within a document
    /// count once toward document frequency.
    pub fn add_document<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.num_docs += 1;
        let mut seen_in_doc: Vec<TermId> = tokens
            .iter()
            .map(|t| {
                let id = self.vocab.intern(t.as_ref());
                if id as usize >= self.df.len() {
                    self.df.resize(id as usize + 1, 0);
                }
                id
            })
            .collect();
        seen_in_doc.sort_unstable();
        seen_in_doc.dedup();
        for id in seen_in_doc {
            self.df[id as usize] += 1;
        }
    }

    /// Number of documents added.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Freezes the corpus statistics into a model.
    pub fn build(self) -> TfIdfModel {
        let n = self.num_docs.max(1) as f64;
        let idf = self
            .df
            .iter()
            .map(|&df| {
                if df == 0 {
                    0.0
                } else {
                    (n / f64::from(df)).ln()
                }
            })
            .collect();
        TfIdfModel {
            vocab: self.vocab,
            idf,
            num_docs: self.num_docs,
            tf: self.tf,
        }
    }
}

/// Frozen corpus statistics; vectorises documents.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    vocab: Vocabulary,
    idf: Vec<f64>,
    num_docs: usize,
    tf: TfWeighting,
}

impl TfIdfModel {
    /// The vocabulary observed during corpus construction.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of training documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// idf of a term (Definition 4), or `None` if unseen.
    pub fn idf(&self, term: &str) -> Option<f64> {
        self.vocab.get(term).map(|id| self.idf[id as usize])
    }

    /// Vectorises a tokenised document: weight `tf(t,d) · idf(t,D)`.
    /// Out-of-vocabulary terms are skipped.
    pub fn vectorize<S: AsRef<str>>(&self, tokens: &[S]) -> SparseVector {
        let doc_len = tokens.len();
        let mut ids: Vec<TermId> = tokens
            .iter()
            .filter_map(|t| self.vocab.get(t.as_ref()))
            .collect();
        ids.sort_unstable();
        let mut pairs: Vec<(TermId, f64)> = Vec::with_capacity(ids.len());
        let mut slot = 0;
        while slot < ids.len() {
            let id = ids[slot];
            let mut end = slot + 1;
            while end < ids.len() && ids[end] == id {
                end += 1;
            }
            let weight = self.tf.apply(end - slot, doc_len) * self.idf[id as usize];
            if weight != 0.0 {
                pairs.push((id, weight));
            }
            slot = end;
        }
        SparseVector::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;

    fn toks(s: &str) -> Vec<String> {
        crate::tokenize::Tokenizer::verbatim().tokenize(s)
    }

    fn model(docs: &[&str]) -> TfIdfModel {
        let mut b = CorpusBuilder::new();
        for d in docs {
            b.add_document(&toks(d));
        }
        b.build()
    }

    #[test]
    fn idf_definition_4() {
        let m = model(&["cancer pain", "cancer therapy", "diet"]);
        // cancer: df 2 of 3 ⇒ ln(3/2); diet: df 1 ⇒ ln(3); unseen ⇒ None.
        assert!((m.idf("cancer").unwrap() - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        assert!((m.idf("diet").unwrap() - 3.0f64.ln()).abs() < 1e-12);
        assert_eq!(m.idf("unknown"), None);
    }

    #[test]
    fn ubiquitous_terms_get_zero_weight() {
        // "the paper's observation": term in every doc ⇒ idf = ln(1) = 0.
        let m = model(&["pain cancer", "pain diet", "pain sleep"]);
        assert_eq!(m.idf("pain"), Some(0.0));
        let v = m.vectorize(&toks("pain pain cancer"));
        assert_eq!(v.get(m.vocabulary().get("pain").unwrap()), 0.0);
        assert!(v.get(m.vocabulary().get("cancer").unwrap()) > 0.0);
    }

    #[test]
    fn tf_multiplies_idf() {
        let m = model(&["pain pain cancer", "diet"]);
        let v = m.vectorize(&toks("pain pain pain"));
        let id = m.vocabulary().get("pain").unwrap();
        assert!((v.get(id) - 3.0 * (2.0f64 / 1.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn sublinear_and_normalized_weightings() {
        let docs = ["pain pain pain pain cancer", "diet"];
        for (w, expected_tf) in [
            (TfWeighting::Sublinear, 1.0 + 4.0f64.ln()),
            (TfWeighting::LengthNormalized, 4.0 / 5.0),
        ] {
            let mut b = CorpusBuilder::new().with_tf_weighting(w);
            for d in &docs {
                b.add_document(&toks(d));
            }
            let m = b.build();
            let v = m.vectorize(&toks(docs[0]));
            let id = m.vocabulary().get("pain").unwrap();
            let idf = m.idf("pain").unwrap();
            assert!(
                (v.get(id) - expected_tf * idf).abs() < 1e-12,
                "weighting {w:?}"
            );
        }
    }

    #[test]
    fn out_of_vocabulary_terms_are_skipped() {
        let m = model(&["cancer pain", "diet"]);
        let v = m.vectorize(&toks("quantum entanglement"));
        assert!(v.is_empty());
    }

    #[test]
    fn similar_profiles_have_higher_cosine() {
        let m = model(&[
            "acute bronchitis ramipril female",
            "chest pains niacin male",
            "tracheobronchitis broken arm ramipril male",
            "diabetes insulin female",
        ]);
        let p1 = m.vectorize(&toks("acute bronchitis ramipril female"));
        let p2 = m.vectorize(&toks("chest pains niacin male"));
        let p3 = m.vectorize(&toks("tracheobronchitis broken arm ramipril male"));
        // Patient 1 shares "ramipril" with patient 3 but nothing with 2.
        assert!(cosine(&p1, &p3) > cosine(&p1, &p2));
    }

    #[test]
    fn empty_corpus_vectorizes_to_empty() {
        let m = CorpusBuilder::new().build();
        assert_eq!(m.num_docs(), 0);
        assert!(m.vectorize(&toks("anything")).is_empty());
    }

    #[test]
    fn duplicate_tokens_count_df_once() {
        let m = model(&["pain pain pain", "pain cancer"]);
        // df(pain) = 2 (not 4) ⇒ idf = ln(2/2) = 0.
        assert_eq!(m.idf("pain"), Some(0.0));
    }
}
