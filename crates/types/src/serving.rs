//! Request-deadline type for the streaming serving front-end.
//!
//! The admission queue rejects requests whose latency budget has already
//! lapsed instead of burning kernel time on answers nobody is waiting
//! for. [`Deadline`] is that budget: an optional wall-clock instant
//! checked at admission, again at dispatch, and by the waiting caller.
//! `Deadline::none()` opts a request out of the expiry checks entirely.

use std::time::{Duration, Instant};

/// A request's latency budget: the instant after which the response is
/// worthless to its caller. Copyable and comparison-friendly so it can
/// ride inside queue entries without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: the request waits as long as it takes.
    pub fn none() -> Self {
        Self { at: None }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self {
            at: Some(Instant::now() + budget),
        }
    }

    /// A deadline at an explicit instant (e.g. one shared by a wave of
    /// requests admitted under a common SLO clock).
    pub fn at(instant: Instant) -> Self {
        Self { at: Some(instant) }
    }

    /// The expiry instant, when one is set.
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// Whether the deadline has lapsed as of `now`. The explicit clock
    /// parameter lets a dispatcher triage a whole batch against one
    /// consistent reading.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.at.is_some_and(|at| now >= at)
    }

    /// Whether the deadline has lapsed right now.
    pub fn expired(&self) -> bool {
        self.expired_at(Instant::now())
    }

    /// Time left before expiry: `None` for unbounded deadlines, zero once
    /// lapsed — the shape `Condvar::wait_timeout` loops want.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

impl Default for Deadline {
    /// The default is no deadline, matching a plain blocking call.
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(d.instant().is_none());
        assert!(d.remaining().is_none());
        assert_eq!(Deadline::default(), d);
    }

    #[test]
    fn within_expires_after_the_budget() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3599));
        let lapsed = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(lapsed.expired());
        assert_eq!(lapsed.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn expired_at_uses_the_given_clock() {
        let now = Instant::now();
        let d = Deadline::at(now + Duration::from_millis(5));
        assert!(!d.expired_at(now));
        assert!(d.expired_at(now + Duration::from_millis(5)));
        assert!(d.expired_at(now + Duration::from_millis(6)));
    }
}
