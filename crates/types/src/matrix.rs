//! Sparse rating matrix.
//!
//! §IV of the paper takes as input *"a set of user rating triples
//! `R = {(u, i, rating(u, i))}`"*. [`RatingMatrix`] is the in-memory form of
//! that relation, stored twice for the two access patterns the model needs:
//!
//! * **user-major (CSR)** — `I(u)`, the items rated by a user, used when
//!   computing user means, Pearson correlations, and per-user candidate
//!   filtering;
//! * **item-major (CSC)** — `U(i)`, the users who rated an item, used by the
//!   relevance prediction of Equation 1 (`P_u ∩ U(i)`) and by MapReduce
//!   Job 1, which groups the input by item.
//!
//! Both views keep entries sorted by id so that intersections (co-rated
//! items, peers-that-rated) run as linear merge-joins over contiguous
//! arrays — the hot path of the whole system.

use crate::error::{FairrecError, Result};
use crate::ids::{ItemId, UserId};
use crate::rating::Rating;

/// One `(u, i, rating(u, i))` fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingTriple {
    /// The rating user.
    pub user: UserId,
    /// The rated item.
    pub item: ItemId,
    /// The validated score.
    pub rating: Rating,
}

/// Accumulates rating triples and freezes them into a [`RatingMatrix`].
///
/// Duplicate `(user, item)` pairs are rejected at [`build`](Self::build)
/// time: silently keeping one of the two scores would make downstream
/// experiments depend on insertion order.
#[derive(Debug, Default, Clone)]
pub struct RatingMatrixBuilder {
    triples: Vec<(UserId, ItemId, f64)>,
    min_users: u32,
    min_items: u32,
}

impl RatingMatrixBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with a capacity hint for the number of triples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            triples: Vec::with_capacity(n),
            min_users: 0,
            min_items: 0,
        }
    }

    /// Forces the id spaces to cover at least `n_users` users and
    /// `n_items` items, so entities without any rating still exist in the
    /// matrix (a patient who has not rated anything is still a patient).
    pub fn reserve_ids(mut self, n_users: u32, n_items: u32) -> Self {
        self.min_users = self.min_users.max(n_users);
        self.min_items = self.min_items.max(n_items);
        self
    }

    /// Adds one rating triple.
    pub fn add(&mut self, user: UserId, item: ItemId, rating: Rating) -> &mut Self {
        self.triples.push((user, item, rating.value()));
        self
    }

    /// Adds one triple, validating the raw score.
    ///
    /// # Errors
    /// Returns [`FairrecError::InvalidRating`] if `score ∉ [1, 5]`.
    pub fn add_raw(&mut self, user: UserId, item: ItemId, score: f64) -> Result<&mut Self> {
        let rating = Rating::new(score)?;
        Ok(self.add(user, item, rating))
    }

    /// Number of triples accumulated so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no triples have been added.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Freezes the builder into an immutable matrix.
    ///
    /// # Errors
    /// Returns [`FairrecError::DuplicateRating`] if the same `(user, item)`
    /// pair was added twice.
    pub fn build(self) -> Result<RatingMatrix> {
        let Self {
            mut triples,
            min_users,
            min_items,
        } = self;

        let n_users = triples
            .iter()
            .map(|t| t.0.raw() + 1)
            .max()
            .unwrap_or(0)
            .max(min_users);
        let n_items = triples
            .iter()
            .map(|t| t.1.raw() + 1)
            .max()
            .unwrap_or(0)
            .max(min_items);

        // Sort user-major; detect duplicates on the sorted sequence.
        triples.sort_unstable_by_key(|&(u, i, _)| (u, i));
        for w in triples.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(FairrecError::DuplicateRating {
                    user: w[0].0,
                    item: w[0].1,
                });
            }
        }

        let nnz = triples.len();
        let mut user_offsets = vec![0u32; n_users as usize + 1];
        let mut user_items = Vec::with_capacity(nnz);
        let mut user_scores = Vec::with_capacity(nnz);
        for &(u, i, s) in &triples {
            user_offsets[u.index() + 1] += 1;
            user_items.push(i);
            user_scores.push(s);
        }
        for k in 1..user_offsets.len() {
            user_offsets[k] += user_offsets[k - 1];
        }

        // Item-major copy: counting sort by item, preserving user order.
        let mut item_counts = vec![0u32; n_items as usize + 1];
        for &(_, i, _) in &triples {
            item_counts[i.index() + 1] += 1;
        }
        for k in 1..item_counts.len() {
            item_counts[k] += item_counts[k - 1];
        }
        let item_offsets = item_counts.clone();
        let mut item_users = vec![UserId::new(0); nnz];
        let mut item_scores = vec![0.0f64; nnz];
        let mut cursor = item_counts;
        for &(u, i, s) in &triples {
            let pos = cursor[i.index()] as usize;
            item_users[pos] = u;
            item_scores[pos] = s;
            cursor[i.index()] += 1;
        }

        // Cached per-user means (µ_u of Equation 2) and degrees (|I(u)|).
        // Both are hot inputs of the bulk similarity kernel, so they are
        // frozen into contiguous arrays here rather than recomputed (or
        // re-derived from offsets) per pair. 0 ratings ⇒ NaN mean slot,
        // surfaced as None by `user_mean`.
        let mut user_means = vec![f64::NAN; n_users as usize];
        let mut user_degrees = vec![0u32; n_users as usize];
        for u in 0..n_users as usize {
            let (lo, hi) = (user_offsets[u] as usize, user_offsets[u + 1] as usize);
            user_degrees[u] = (hi - lo) as u32;
            if hi > lo {
                let sum: f64 = user_scores[lo..hi].iter().sum();
                user_means[u] = sum / (hi - lo) as f64;
            }
        }

        Ok(RatingMatrix {
            n_users,
            n_items,
            user_offsets,
            user_items,
            user_scores,
            item_offsets,
            item_users,
            item_scores,
            user_means,
            user_degrees,
        })
    }
}

/// Sparse rating matrix with user-major and item-major views.
///
/// Matrices are frozen by [`RatingMatrixBuilder::build`] and then served
/// read-only on the hot paths, but the rating relation itself is *live*:
/// health-record ratings arrive continuously, so the matrix supports
/// in-place point mutations — [`insert_rating`](Self::insert_rating),
/// [`update_rating`](Self::update_rating) and
/// [`remove_rating`](Self::remove_rating) — that patch **both** views,
/// the cached per-user means, and the degree array, leaving the matrix
/// bitwise identical to one rebuilt from the final triple relation
/// (pinned by proptests in this module). Each mutation costs one
/// `memmove` of the stored arrays plus an offset-bump — O(|R| + |U| +
/// |I|) worst case, microseconds at serving scale — which is the price
/// of keeping the merge-join-friendly contiguous layout the read paths
/// depend on.
#[derive(Debug, Clone, PartialEq)]
pub struct RatingMatrix {
    n_users: u32,
    n_items: u32,
    user_offsets: Vec<u32>,
    user_items: Vec<ItemId>,
    user_scores: Vec<f64>,
    item_offsets: Vec<u32>,
    item_users: Vec<UserId>,
    item_scores: Vec<f64>,
    user_means: Vec<f64>,
    user_degrees: Vec<u32>,
}

impl RatingMatrix {
    /// Builds a matrix directly from an iterator of validated triples.
    ///
    /// # Errors
    /// Propagates [`RatingMatrixBuilder::build`] errors.
    pub fn from_triples<T: IntoIterator<Item = RatingTriple>>(triples: T) -> Result<Self> {
        let mut b = RatingMatrixBuilder::new();
        for t in triples {
            b.add(t.user, t.item, t.rating);
        }
        b.build()
    }

    /// Size of the user id space (`|U|`, including rating-less users).
    pub fn num_users(&self) -> u32 {
        self.n_users
    }

    /// Size of the item id space (`|I|`, including unrated items).
    pub fn num_items(&self) -> u32 {
        self.n_items
    }

    /// Total number of stored ratings (`|R|`).
    pub fn num_ratings(&self) -> usize {
        self.user_items.len()
    }

    /// Iterator over the full user id space.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.n_users).map(UserId::new)
    }

    /// Iterator over the full item id space.
    pub fn item_ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.n_items).map(ItemId::new)
    }

    /// The items rated by `u` — the set `I(u)` — sorted by item id.
    pub fn items_of(&self, u: UserId) -> &[ItemId] {
        let (lo, hi) = self.user_range(u);
        &self.user_items[lo..hi]
    }

    /// Scores parallel to [`items_of`](Self::items_of).
    pub fn scores_of(&self, u: UserId) -> &[f64] {
        let (lo, hi) = self.user_range(u);
        &self.user_scores[lo..hi]
    }

    /// `(item, score)` pairs rated by `u`, sorted by item id.
    pub fn ratings_of(&self, u: UserId) -> impl Iterator<Item = (ItemId, f64)> + '_ {
        self.items_of(u)
            .iter()
            .copied()
            .zip(self.scores_of(u).iter().copied())
    }

    /// The users who rated `i` — the set `U(i)` — sorted by user id.
    pub fn users_of(&self, i: ItemId) -> &[UserId] {
        let (lo, hi) = self.item_range(i);
        &self.item_users[lo..hi]
    }

    /// `(user, score)` pairs who rated `i`, sorted by user id.
    pub fn raters_of(&self, i: ItemId) -> impl Iterator<Item = (UserId, f64)> + '_ {
        let (lo, hi) = self.item_range(i);
        self.item_users[lo..hi]
            .iter()
            .copied()
            .zip(self.item_scores[lo..hi].iter().copied())
    }

    /// Scores parallel to [`users_of`](Self::users_of) — the slice form of
    /// [`raters_of`](Self::raters_of), for kernels that need random access
    /// (e.g. starting a scan mid-column via `partition_point`).
    pub fn rater_scores_of(&self, i: ItemId) -> &[f64] {
        let (lo, hi) = self.item_range(i);
        &self.item_scores[lo..hi]
    }

    /// Looks up `rating(u, i)`, if present (binary search in `I(u)`).
    pub fn rating(&self, u: UserId, i: ItemId) -> Option<f64> {
        let (lo, hi) = self.user_range(u);
        let slot = self.user_items[lo..hi].binary_search(&i).ok()?;
        Some(self.user_scores[lo + slot])
    }

    /// Whether `u` expressed a rating for `i`.
    pub fn has_rated(&self, u: UserId, i: ItemId) -> bool {
        self.rating(u, i).is_some()
    }

    /// Number of ratings by `u`.
    pub fn degree_of(&self, u: UserId) -> usize {
        if u.raw() >= self.n_users {
            return 0;
        }
        self.user_degrees[u.index()] as usize
    }

    /// Mean rating `µ_u` of Equation 2, or `None` for rating-less users.
    pub fn user_mean(&self, u: UserId) -> Option<f64> {
        if u.raw() >= self.n_users {
            return None;
        }
        let m = self.user_means[u.index()];
        (!m.is_nan()).then_some(m)
    }

    /// The per-user mean array (µ_u), precomputed at
    /// [`build`](RatingMatrixBuilder::build) time, indexed by raw user id;
    /// rating-less users hold `NaN`. This is the raw form behind
    /// [`user_mean`](Self::user_mean), exposed so per-pair and bulk
    /// similarity kernels can read means with one bounds-free slice access
    /// instead of an `Option` round-trip per pair.
    pub fn user_means(&self) -> &[f64] {
        &self.user_means
    }

    /// The per-user degree array (`|I(u)|`), precomputed at build time and
    /// indexed by raw user id — capacity hints and work-size estimates for
    /// bulk kernels without re-deriving sizes from the offset array.
    pub fn user_degrees(&self) -> &[u32] {
        &self.user_degrees
    }

    /// Number of users who rated `i` — the column degree `|U(i)|` (an
    /// O(1) offset subtraction on the CSC view). Unknown items answer 0.
    pub fn item_degree(&self, i: ItemId) -> usize {
        if i.raw() >= self.n_items {
            return 0;
        }
        let (lo, hi) = self.item_range(i);
        hi - lo
    }

    /// Co-rating mass of `u`: `Σ_{i ∈ I(u)} |U(i)|` — the number of
    /// stored ratings sharing an item with `u`, which is exactly the
    /// work one one-vs-all similarity pass from `u` scans (the CSC walk
    /// of the bulk kernel). The ingestion cost model prices a delta
    /// replay for `u` at this figure.
    pub fn co_rating_mass(&self, u: UserId) -> u64 {
        self.items_of(u)
            .iter()
            .map(|&i| self.item_degree(i) as u64)
            .sum()
    }

    /// Total co-rating mass: `Σ_i |U(i)|²` — every item's column degree
    /// squared, i.e. the number of (ordered) co-rating pairs in the whole
    /// relation. Half of it is the pair count a symmetric warm kernel
    /// actually visits, which is what the ingestion cost model prices a
    /// blanket invalidation + rewarm at.
    pub fn total_co_rating_mass(&self) -> u64 {
        (0..self.n_items)
            .map(|raw| {
                let d = self.item_degree(ItemId::new(raw)) as u64;
                d * d
            })
            .sum()
    }

    /// Merge-join over the co-rated items of `u` and `v`, yielding
    /// `(item, rating(u, item), rating(v, item))` in item order.
    ///
    /// This is the intersection `I(u) ∩ I(v)` of Equation 2.
    pub fn co_ratings<'a>(&'a self, u: UserId, v: UserId) -> CoRatings<'a> {
        let (ulo, uhi) = self.user_range(u);
        let (vlo, vhi) = self.user_range(v);
        CoRatings {
            left_items: &self.user_items[ulo..uhi],
            left_scores: &self.user_scores[ulo..uhi],
            right_items: &self.user_items[vlo..vhi],
            right_scores: &self.user_scores[vlo..vhi],
        }
    }

    /// Items that **no** member of `group` has rated — the candidate pool
    /// produced by MapReduce Job 1 (*"the reducer checks if any user in the
    /// group has rated that item; if not, then this item will be considered
    /// as a recommendation"*).
    ///
    /// Only items with at least one rating by a non-member can ever receive
    /// a collaborative prediction, but this method returns every unrated
    /// item; prediction later yields `None` where Equation 1 is undefined.
    pub fn unrated_by_all(&self, group: &[UserId]) -> Vec<ItemId> {
        let mut rated = vec![false; self.n_items as usize];
        for &u in group {
            for &i in self.items_of(u) {
                rated[i.index()] = true;
            }
        }
        (0..self.n_items)
            .filter(|&raw| !rated[raw as usize])
            .map(ItemId::new)
            .collect()
    }

    /// Inserts a new rating fact, patching the CSR view, the CSC view,
    /// `user_means`, and `user_degrees` in place. Ids beyond the current
    /// dimensions grow the id spaces (like
    /// [`reserve_ids`](RatingMatrixBuilder::reserve_ids) would have).
    ///
    /// The patched matrix is **bitwise identical** to one rebuilt from
    /// scratch over the final relation: entries land at their sorted
    /// positions in both views, and the user's mean is recomputed by
    /// re-summing their score slice left-to-right — the exact summation
    /// order of [`build`](RatingMatrixBuilder::build).
    ///
    /// # Errors
    /// Returns [`FairrecError::DuplicateRating`] when `(user, item)` is
    /// already rated (use [`update_rating`](Self::update_rating) to change
    /// an existing score), and [`FairrecError::InvalidParameter`] for id
    /// `u32::MAX` (the id spaces are sized `id + 1`, so the sentinel
    /// maximum cannot be stored without overflow). The matrix is
    /// untouched on error.
    pub fn insert_rating(&mut self, user: UserId, item: ItemId, rating: Rating) -> Result<()> {
        // Guard before any mutation: `raw() + 1` sizing would wrap.
        if user.raw() == u32::MAX {
            return Err(FairrecError::invalid_parameter(
                "user",
                "id u32::MAX would overflow the user id space",
            ));
        }
        if item.raw() == u32::MAX {
            return Err(FairrecError::invalid_parameter(
                "item",
                "id u32::MAX would overflow the item id space",
            ));
        }
        if self.has_rated(user, item) {
            return Err(FairrecError::DuplicateRating { user, item });
        }
        self.grow_users(user);
        self.grow_items(item);
        let score = rating.value();

        let (lo, hi) = self.user_range(user);
        let pos = lo + self.user_items[lo..hi].partition_point(|&j| j < item);
        self.user_items.insert(pos, item);
        self.user_scores.insert(pos, score);
        for offset in &mut self.user_offsets[user.index() + 1..] {
            *offset += 1;
        }

        let (lo, hi) = self.item_range(item);
        let pos = lo + self.item_users[lo..hi].partition_point(|&v| v < user);
        self.item_users.insert(pos, user);
        self.item_scores.insert(pos, score);
        for offset in &mut self.item_offsets[item.index() + 1..] {
            *offset += 1;
        }

        self.user_degrees[user.index()] += 1;
        self.refresh_user_mean(user);
        Ok(())
    }

    /// Replaces the score of an existing rating in both views and
    /// refreshes the user's cached mean. Returns the previous score.
    ///
    /// # Errors
    /// Returns [`FairrecError::MissingRating`] when `(user, item)` holds
    /// no rating; use [`insert_rating`](Self::insert_rating) for new
    /// facts. The matrix is untouched on error.
    pub fn update_rating(&mut self, user: UserId, item: ItemId, rating: Rating) -> Result<f64> {
        let (pos, ipos) = self.locate(user, item)?;
        let previous = self.user_scores[pos];
        self.user_scores[pos] = rating.value();
        self.item_scores[ipos] = rating.value();
        self.refresh_user_mean(user);
        Ok(previous)
    }

    /// Deletes an existing rating from both views, decrementing the
    /// user's degree and refreshing their cached mean (back to the `NaN`
    /// rating-less slot when this was their last rating). The id spaces
    /// never shrink — entities keep existing, exactly as with
    /// [`reserve_ids`](RatingMatrixBuilder::reserve_ids). Returns the
    /// removed score.
    ///
    /// # Errors
    /// Returns [`FairrecError::MissingRating`] when `(user, item)` holds
    /// no rating. The matrix is untouched on error.
    pub fn remove_rating(&mut self, user: UserId, item: ItemId) -> Result<f64> {
        let (pos, ipos) = self.locate(user, item)?;
        let previous = self.user_scores[pos];
        self.user_items.remove(pos);
        self.user_scores.remove(pos);
        for offset in &mut self.user_offsets[user.index() + 1..] {
            *offset -= 1;
        }
        self.item_users.remove(ipos);
        self.item_scores.remove(ipos);
        for offset in &mut self.item_offsets[item.index() + 1..] {
            *offset -= 1;
        }
        self.user_degrees[user.index()] -= 1;
        self.refresh_user_mean(user);
        Ok(previous)
    }

    /// Positions of an existing rating in the CSR and CSC storage.
    fn locate(&self, user: UserId, item: ItemId) -> Result<(usize, usize)> {
        let (lo, hi) = self.user_range(user);
        let slot = self.user_items[lo..hi]
            .binary_search(&item)
            .map_err(|_| FairrecError::MissingRating { user, item })?;
        let (ilo, ihi) = self.item_range(item);
        let islot = self.item_users[ilo..ihi]
            .binary_search(&user)
            .expect("views agree on stored pairs");
        Ok((lo + slot, ilo + islot))
    }

    /// Recomputes `µ_user` from the (already patched) score slice, in the
    /// same left-to-right order as a from-scratch build.
    fn refresh_user_mean(&mut self, user: UserId) {
        let (lo, hi) = self.user_range(user);
        self.user_means[user.index()] = if hi > lo {
            self.user_scores[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        } else {
            f64::NAN
        };
    }

    /// Extends the user id space to at least `n_users` (empty rows).
    ///
    /// The shard layer drives this when a remap admits newly grown
    /// global ids into a shard: the compacted local matrix must add a
    /// dense row per admitted user before any of their ratings arrive.
    /// A no-op when the space is already that large; never shrinks.
    pub fn grow_user_space(&mut self, n_users: u32) {
        if n_users > self.n_users {
            self.grow_users(UserId::new(n_users - 1));
        }
    }

    /// Bytes held by the user-axis metadata arrays (CSR offsets, cached
    /// means, degrees) — the allocations that scale with the *id space*
    /// rather than with the stored ratings. The shard-memory bench
    /// ratio compares this figure per shard against the monolithic
    /// matrix.
    pub fn user_axis_bytes(&self) -> usize {
        self.user_offsets.len() * std::mem::size_of::<u32>()
            + self.user_means.len() * std::mem::size_of::<f64>()
            + self.user_degrees.len() * std::mem::size_of::<u32>()
    }

    /// Extends the user id space to cover `user` (empty rows).
    fn grow_users(&mut self, user: UserId) {
        if user.raw() < self.n_users {
            return;
        }
        let n = user.raw() + 1;
        let nnz = *self.user_offsets.last().expect("offsets are non-empty");
        self.user_offsets.resize(n as usize + 1, nnz);
        self.user_means.resize(n as usize, f64::NAN);
        self.user_degrees.resize(n as usize, 0);
        self.n_users = n;
    }

    /// Extends the item id space to cover `item` (empty columns).
    fn grow_items(&mut self, item: ItemId) {
        if item.raw() < self.n_items {
            return;
        }
        let n = item.raw() + 1;
        let nnz = *self.item_offsets.last().expect("offsets are non-empty");
        self.item_offsets.resize(n as usize + 1, nnz);
        self.n_items = n;
    }

    /// Re-materialises the triple relation, sorted `(user, item)`.
    pub fn to_triples(&self) -> Vec<RatingTriple> {
        let mut out = Vec::with_capacity(self.num_ratings());
        for u in self.user_ids() {
            for (item, score) in self.ratings_of(u) {
                out.push(RatingTriple {
                    user: u,
                    item,
                    rating: Rating::saturating(score),
                });
            }
        }
        out
    }

    /// Summary statistics for dataset reporting.
    pub fn stats(&self) -> MatrixStats {
        let nnz = self.num_ratings();
        let users_with = self.user_degrees.iter().filter(|&&d| d > 0).count();
        let items_with = (0..self.n_items as usize)
            .filter(|&i| self.item_offsets[i + 1] > self.item_offsets[i])
            .count();
        let cells = self.n_users as f64 * self.n_items as f64;
        let density = if cells > 0.0 { nnz as f64 / cells } else { 0.0 };
        let mean_rating = if nnz > 0 {
            self.user_scores.iter().sum::<f64>() / nnz as f64
        } else {
            0.0
        };
        MatrixStats {
            num_users: self.n_users,
            num_items: self.n_items,
            num_ratings: nnz,
            users_with_ratings: users_with,
            items_with_ratings: items_with,
            density,
            mean_rating,
        }
    }

    #[inline]
    fn user_range(&self, u: UserId) -> (usize, usize) {
        if u.raw() >= self.n_users {
            return (0, 0);
        }
        (
            self.user_offsets[u.index()] as usize,
            self.user_offsets[u.index() + 1] as usize,
        )
    }

    #[inline]
    fn item_range(&self, i: ItemId) -> (usize, usize) {
        if i.raw() >= self.n_items {
            return (0, 0);
        }
        (
            self.item_offsets[i.index()] as usize,
            self.item_offsets[i.index() + 1] as usize,
        )
    }
}

/// Iterator produced by [`RatingMatrix::co_ratings`].
#[derive(Debug, Clone)]
pub struct CoRatings<'a> {
    left_items: &'a [ItemId],
    left_scores: &'a [f64],
    right_items: &'a [ItemId],
    right_scores: &'a [f64],
}

impl Iterator for CoRatings<'_> {
    type Item = (ItemId, f64, f64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (&li, &ri) = (self.left_items.first()?, self.right_items.first()?);
            match li.cmp(&ri) {
                std::cmp::Ordering::Less => {
                    self.left_items = &self.left_items[1..];
                    self.left_scores = &self.left_scores[1..];
                }
                std::cmp::Ordering::Greater => {
                    self.right_items = &self.right_items[1..];
                    self.right_scores = &self.right_scores[1..];
                }
                std::cmp::Ordering::Equal => {
                    let out = (li, self.left_scores[0], self.right_scores[0]);
                    self.left_items = &self.left_items[1..];
                    self.left_scores = &self.left_scores[1..];
                    self.right_items = &self.right_items[1..];
                    self.right_scores = &self.right_scores[1..];
                    return Some(out);
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.left_items.len().min(self.right_items.len())))
    }
}

/// Summary statistics of a [`RatingMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Size of the user id space.
    pub num_users: u32,
    /// Size of the item id space.
    pub num_items: u32,
    /// Number of stored ratings.
    pub num_ratings: usize,
    /// Users with at least one rating.
    pub users_with_ratings: usize,
    /// Items with at least one rating.
    pub items_with_ratings: usize,
    /// `num_ratings / (num_users * num_items)`.
    pub density: f64,
    /// Global mean rating.
    pub mean_rating: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> Rating {
        Rating::new(v).unwrap()
    }

    fn small() -> RatingMatrix {
        // u0: i0=5, i2=3 ; u1: i0=4 ; u2: (none) ; item space padded to 4.
        let mut b = RatingMatrixBuilder::new().reserve_ids(3, 4);
        b.add(UserId::new(0), ItemId::new(0), r(5.0));
        b.add(UserId::new(0), ItemId::new(2), r(3.0));
        b.add(UserId::new(1), ItemId::new(0), r(4.0));
        b.build().unwrap()
    }

    #[test]
    fn dimensions_respect_reserved_ids() {
        let m = small();
        assert_eq!(m.num_users(), 3);
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.num_ratings(), 3);
    }

    #[test]
    fn user_major_view_is_sorted() {
        let m = small();
        assert_eq!(
            m.items_of(UserId::new(0)),
            &[ItemId::new(0), ItemId::new(2)]
        );
        assert_eq!(m.scores_of(UserId::new(0)), &[5.0, 3.0]);
        assert_eq!(m.items_of(UserId::new(2)), &[] as &[ItemId]);
    }

    #[test]
    fn item_major_view_is_sorted() {
        let m = small();
        assert_eq!(
            m.users_of(ItemId::new(0)),
            &[UserId::new(0), UserId::new(1)]
        );
        let raters: Vec<_> = m.raters_of(ItemId::new(0)).collect();
        assert_eq!(raters, vec![(UserId::new(0), 5.0), (UserId::new(1), 4.0)]);
        assert!(m.users_of(ItemId::new(3)).is_empty());
    }

    #[test]
    fn point_lookup_and_degree() {
        let m = small();
        assert_eq!(m.rating(UserId::new(0), ItemId::new(2)), Some(3.0));
        assert_eq!(m.rating(UserId::new(1), ItemId::new(2)), None);
        assert!(m.has_rated(UserId::new(1), ItemId::new(0)));
        assert_eq!(m.degree_of(UserId::new(0)), 2);
        assert_eq!(m.degree_of(UserId::new(2)), 0);
    }

    #[test]
    fn out_of_range_ids_behave_as_empty() {
        let m = small();
        assert!(m.items_of(UserId::new(99)).is_empty());
        assert!(m.users_of(ItemId::new(99)).is_empty());
        assert_eq!(m.rating(UserId::new(99), ItemId::new(0)), None);
        assert_eq!(m.user_mean(UserId::new(99)), None);
    }

    #[test]
    fn user_means_match_hand_computation() {
        let m = small();
        assert_eq!(m.user_mean(UserId::new(0)), Some(4.0));
        assert_eq!(m.user_mean(UserId::new(1)), Some(4.0));
        assert_eq!(m.user_mean(UserId::new(2)), None);
    }

    #[test]
    fn precomputed_means_and_degrees_are_exposed() {
        let m = small();
        assert_eq!(m.user_degrees(), &[2, 1, 0]);
        let means = m.user_means();
        assert_eq!(means.len(), 3);
        assert_eq!(means[0], 4.0);
        assert_eq!(means[1], 4.0);
        assert!(means[2].is_nan(), "rating-less user holds a NaN slot");
        assert_eq!(m.rater_scores_of(ItemId::new(0)), &[5.0, 4.0]);
        assert!(m.rater_scores_of(ItemId::new(99)).is_empty());
    }

    #[test]
    fn co_ratings_is_the_sorted_intersection() {
        let m = small();
        let co: Vec<_> = m.co_ratings(UserId::new(0), UserId::new(1)).collect();
        assert_eq!(co, vec![(ItemId::new(0), 5.0, 4.0)]);
        let none: Vec<_> = m.co_ratings(UserId::new(1), UserId::new(2)).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn unrated_by_all_excludes_any_member_rating() {
        let m = small();
        let group = [UserId::new(0), UserId::new(1)];
        assert_eq!(
            m.unrated_by_all(&group),
            vec![ItemId::new(1), ItemId::new(3)]
        );
        // A rating-less member changes nothing.
        let group = [UserId::new(2)];
        assert_eq!(m.unrated_by_all(&group).len(), 4);
    }

    #[test]
    fn duplicate_pairs_are_rejected() {
        let mut b = RatingMatrixBuilder::new();
        b.add(UserId::new(0), ItemId::new(0), r(5.0));
        b.add(UserId::new(0), ItemId::new(0), r(1.0));
        match b.build() {
            Err(FairrecError::DuplicateRating { user, item }) => {
                assert_eq!(user, UserId::new(0));
                assert_eq!(item, ItemId::new(0));
            }
            other => panic!("expected DuplicateRating, got {other:?}"),
        }
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = RatingMatrixBuilder::new().build().unwrap();
        assert_eq!(m.num_users(), 0);
        assert_eq!(m.num_items(), 0);
        assert_eq!(m.num_ratings(), 0);
        assert!(m.unrated_by_all(&[]).is_empty());
        let s = m.stats();
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn add_raw_validates() {
        let mut b = RatingMatrixBuilder::new();
        assert!(b.add_raw(UserId::new(0), ItemId::new(0), 6.0).is_err());
        assert!(b.add_raw(UserId::new(0), ItemId::new(0), 4.0).is_ok());
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn stats_report_coverage_and_density() {
        let m = small();
        let s = m.stats();
        assert_eq!(s.users_with_ratings, 2);
        assert_eq!(s.items_with_ratings, 2);
        assert!((s.density - 3.0 / 12.0).abs() < 1e-12);
        assert!((s.mean_rating - 4.0).abs() < 1e-12);
    }

    /// Both views, the means, and the degrees of `a` and `b` hold the
    /// same bits (derived `PartialEq` cannot be used: rating-less users
    /// carry `NaN` mean slots).
    pub(super) fn assert_bitwise_equal(a: &RatingMatrix, b: &RatingMatrix) {
        assert_eq!(a.num_users(), b.num_users());
        assert_eq!(a.num_items(), b.num_items());
        assert_eq!(a.num_ratings(), b.num_ratings());
        for u in a.user_ids() {
            assert_eq!(a.items_of(u), b.items_of(u), "items of {u}");
            assert_eq!(
                a.scores_of(u)
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                b.scores_of(u)
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                "scores of {u}"
            );
            assert_eq!(a.degree_of(u), b.degree_of(u), "degree of {u}");
            assert_eq!(
                a.user_means()[u.index()].to_bits(),
                b.user_means()[u.index()].to_bits(),
                "mean of {u}"
            );
        }
        for i in a.item_ids() {
            assert_eq!(a.users_of(i), b.users_of(i), "users of {i}");
            assert_eq!(
                a.rater_scores_of(i)
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                b.rater_scores_of(i)
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                "rater scores of {i}"
            );
        }
    }

    #[test]
    fn insert_patches_both_views_and_mean() {
        let mut m = small();
        // Insert into the middle of u0's row and i0's column.
        m.insert_rating(UserId::new(2), ItemId::new(0), r(2.0))
            .unwrap();
        m.insert_rating(UserId::new(0), ItemId::new(1), r(4.0))
            .unwrap();
        assert_eq!(m.num_ratings(), 5);
        assert_eq!(
            m.items_of(UserId::new(0)),
            &[ItemId::new(0), ItemId::new(1), ItemId::new(2)]
        );
        assert_eq!(m.scores_of(UserId::new(0)), &[5.0, 4.0, 3.0]);
        assert_eq!(
            m.users_of(ItemId::new(0)),
            &[UserId::new(0), UserId::new(1), UserId::new(2)]
        );
        assert_eq!(m.rater_scores_of(ItemId::new(0)), &[5.0, 4.0, 2.0]);
        assert_eq!(m.user_mean(UserId::new(0)), Some(4.0));
        assert_eq!(m.user_mean(UserId::new(2)), Some(2.0));
        assert_eq!(m.degree_of(UserId::new(0)), 3);

        // The patched matrix is bitwise the rebuilt one.
        let rebuilt = {
            let mut b = RatingMatrixBuilder::new().reserve_ids(3, 4);
            for t in m.to_triples() {
                b.add(t.user, t.item, t.rating);
            }
            b.build().unwrap()
        };
        assert_bitwise_equal(&m, &rebuilt);
    }

    #[test]
    fn insert_grows_the_id_spaces() {
        let mut m = small();
        m.insert_rating(UserId::new(5), ItemId::new(7), r(1.0))
            .unwrap();
        assert_eq!(m.num_users(), 6);
        assert_eq!(m.num_items(), 8);
        assert_eq!(m.rating(UserId::new(5), ItemId::new(7)), Some(1.0));
        assert_eq!(m.degree_of(UserId::new(4)), 0);
        assert_eq!(m.user_mean(UserId::new(4)), None);
        assert!(m.users_of(ItemId::new(6)).is_empty());
    }

    #[test]
    fn insert_rejects_duplicates_without_touching_state() {
        let mut m = small();
        let before = m.clone();
        match m.insert_rating(UserId::new(0), ItemId::new(0), r(1.0)) {
            Err(FairrecError::DuplicateRating { user, item }) => {
                assert_eq!(user, UserId::new(0));
                assert_eq!(item, ItemId::new(0));
            }
            other => panic!("expected DuplicateRating, got {other:?}"),
        }
        assert_bitwise_equal(&m, &before);
    }

    #[test]
    fn sentinel_max_ids_are_rejected_without_touching_state() {
        let mut m = small();
        let before = m.clone();
        for (u, i) in [(u32::MAX, 0u32), (0, u32::MAX), (u32::MAX, u32::MAX)] {
            assert!(m
                .insert_rating(UserId::new(u), ItemId::new(i), r(3.0))
                .is_err_and(|e| matches!(e, FairrecError::InvalidParameter { .. })));
        }
        assert_bitwise_equal(&m, &before);
    }

    #[test]
    fn update_replaces_score_in_both_views() {
        let mut m = small();
        let old = m
            .update_rating(UserId::new(0), ItemId::new(2), r(1.0))
            .unwrap();
        assert_eq!(old, 3.0);
        assert_eq!(m.rating(UserId::new(0), ItemId::new(2)), Some(1.0));
        assert_eq!(m.rater_scores_of(ItemId::new(2)), &[1.0]);
        assert_eq!(m.user_mean(UserId::new(0)), Some(3.0));
        // Missing pairs error and leave the matrix alone.
        match m.update_rating(UserId::new(1), ItemId::new(2), r(2.0)) {
            Err(FairrecError::MissingRating { user, item }) => {
                assert_eq!(user, UserId::new(1));
                assert_eq!(item, ItemId::new(2));
            }
            other => panic!("expected MissingRating, got {other:?}"),
        }
    }

    #[test]
    fn remove_deletes_from_both_views() {
        let mut m = small();
        assert_eq!(
            m.remove_rating(UserId::new(1), ItemId::new(0)).unwrap(),
            4.0
        );
        assert_eq!(m.num_ratings(), 2);
        assert!(m.items_of(UserId::new(1)).is_empty());
        assert_eq!(m.users_of(ItemId::new(0)), &[UserId::new(0)]);
        // The last rating of a user restores the rating-less NaN slot.
        assert_eq!(m.user_mean(UserId::new(1)), None);
        assert_eq!(m.degree_of(UserId::new(1)), 0);
        // Id spaces never shrink.
        assert_eq!(m.num_users(), 3);
        assert!(m
            .remove_rating(UserId::new(1), ItemId::new(0))
            .is_err_and(|e| matches!(e, FairrecError::MissingRating { .. })));
    }

    #[test]
    fn triples_round_trip() {
        let m = small();
        let again = RatingMatrix::from_triples(m.to_triples()).unwrap();
        // Dimensions shrink to the occupied prefix, so compare the relation.
        assert_eq!(m.to_triples(), again.to_triples());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::btree_map;
    use proptest::prelude::*;

    fn arb_relation() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
        // A map keyed by (u, i) guarantees uniqueness of pairs.
        btree_map((0u32..40, 0u32..60), 1.0f64..=5.0, 0..200).prop_map(|m| {
            m.into_iter()
                .map(|((u, i), s)| (u, i, (s * 2.0).round() / 2.0))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn round_trips_through_triples(rel in arb_relation()) {
            let mut b = RatingMatrixBuilder::new();
            for &(u, i, s) in &rel {
                b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
            }
            let m = b.build().unwrap();
            prop_assert_eq!(m.num_ratings(), rel.len());
            for &(u, i, s) in &rel {
                prop_assert_eq!(m.rating(UserId::new(u), ItemId::new(i)), Some(s));
            }
            let back: Vec<(u32, u32, f64)> = m
                .to_triples()
                .into_iter()
                .map(|t| (t.user.raw(), t.item.raw(), t.rating.value()))
                .collect();
            prop_assert_eq!(back, rel);
        }

        #[test]
        fn co_ratings_matches_naive_intersection(
            rel in arb_relation(), a in 0u32..40, b in 0u32..40
        ) {
            let mut bld = RatingMatrixBuilder::new();
            for &(u, i, s) in &rel {
                bld.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
            }
            let m = bld.build().unwrap();
            let (ua, ub) = (UserId::new(a), UserId::new(b));
            let fast: Vec<_> = m.co_ratings(ua, ub).collect();
            let naive: Vec<_> = m
                .ratings_of(ua)
                .filter_map(|(i, sa)| m.rating(ub, i).map(|sb| (i, sa, sb)))
                .collect();
            prop_assert_eq!(fast, naive);
        }

        /// Any interleaving of inserts, updates, and removes leaves the
        /// matrix bitwise identical to one rebuilt from scratch over the
        /// final relation — the foundation of the incremental peer-index
        /// maintenance contract.
        #[test]
        fn mutations_match_rebuild_bitwise(
            rel in arb_relation(),
            ops in proptest::collection::vec(
                (0u32..48, 0u32..70, 1.0f64..=5.0, 0u8..3), 0..40
            )
        ) {
            let mut b = RatingMatrixBuilder::new();
            for &(u, i, s) in &rel {
                b.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
            }
            let mut live = b.build().unwrap();
            let mut relation: std::collections::BTreeMap<(u32, u32), f64> =
                rel.iter().map(|&(u, i, s)| ((u, i), s)).collect();
            for (u, i, s, kind) in ops {
                let (user, item) = (UserId::new(u), ItemId::new(i));
                let s = (s * 2.0).round() / 2.0;
                let rating = Rating::new(s).unwrap();
                match (relation.contains_key(&(u, i)), kind) {
                    (false, _) => {
                        live.insert_rating(user, item, rating).unwrap();
                        relation.insert((u, i), s);
                    }
                    (true, 0) => {
                        prop_assert!(live.remove_rating(user, item).is_ok());
                        relation.remove(&(u, i));
                    }
                    (true, _) => {
                        prop_assert!(live.update_rating(user, item, rating).is_ok());
                        relation.insert((u, i), s);
                    }
                }
            }
            let mut fresh = RatingMatrixBuilder::new()
                .reserve_ids(live.num_users(), live.num_items());
            for (&(u, i), &s) in &relation {
                fresh.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
            }
            super::tests::assert_bitwise_equal(&live, &fresh.build().unwrap());
        }

        #[test]
        fn item_view_agrees_with_user_view(rel in arb_relation()) {
            let mut bld = RatingMatrixBuilder::new();
            for &(u, i, s) in &rel {
                bld.add_raw(UserId::new(u), ItemId::new(i), s).unwrap();
            }
            let m = bld.build().unwrap();
            let mut from_items: Vec<(u32, u32, f64)> = m
                .item_ids()
                .flat_map(|i| m.raters_of(i).map(move |(u, s)| (u.raw(), i.raw(), s)))
                .collect();
            from_items.sort_by(|x, y| (x.0, x.1).partial_cmp(&(y.0, y.1)).unwrap());
            let from_users: Vec<(u32, u32, f64)> = m
                .to_triples()
                .into_iter()
                .map(|t| (t.user.raw(), t.item.raw(), t.rating.value()))
                .collect();
            prop_assert_eq!(from_items, from_users);
        }
    }
}
