//! Execution-parallelism knob shared by every pipeline stage.
//!
//! The serving path (peer-list construction, Equation 1 scoring, batched
//! group fan-out) is data-parallel: independent per-user / per-item /
//! per-group computations whose outputs are written back in input order.
//! [`Parallelism`] selects how those loops execute:
//!
//! * [`Parallelism::Sequential`] — plain iterators on the calling thread.
//!   Useful for pinning determinism *by construction* in equivalence
//!   tests, and for tiny inputs where thread fan-out costs more than it
//!   saves.
//! * [`Parallelism::Rayon`] — rayon `par_iter` on the ambient thread
//!   pool (the machine's available parallelism, or whatever pool the
//!   caller installed).
//! * [`Parallelism::Threads(n)`] — rayon pinned to exactly `n` threads.
//!
//! **Determinism contract:** every parallel loop in this workspace is a
//! pure, order-preserving map — no reductions whose float result depends
//! on association order. Results are therefore bitwise identical across
//! all three modes and any thread count; the property tests in
//! `fairrec-core` and `fairrec-similarity` assert exactly that.

use rayon::prelude::*;

/// How data-parallel loops execute. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Plain sequential iteration on the calling thread.
    Sequential,
    /// The ambient rayon pool (machine parallelism unless a pool is
    /// installed). The default: correct everywhere, fastest on real
    /// workloads.
    #[default]
    Rayon,
    /// A rayon pool pinned to exactly this many threads (≥ 1; 0 is
    /// treated as 1).
    Threads(usize),
}

impl Parallelism {
    /// Whether this mode may use more than one thread.
    pub fn is_parallel(self) -> bool {
        match self {
            Self::Sequential => false,
            Self::Rayon => true,
            Self::Threads(n) => n > 1,
        }
    }

    /// The number of workers this mode fans out to: 1 for `Sequential`,
    /// the pin for `Threads(n)`, and for `Rayon` the width of the
    /// *ambient* pool (`rayon::current_num_threads()` — the installed
    /// pool when called inside `install`, machine parallelism
    /// otherwise). Callers sizing work chunks (granularity, scratch
    /// allocation) should derive it from here so chunking matches the
    /// pool that actually executes the map.
    pub fn num_workers(self) -> usize {
        match self {
            Self::Sequential => 1,
            Self::Rayon => rayon::current_num_threads().max(1),
            Self::Threads(n) => n.max(1),
        }
    }

    /// Maps every element of `items` through `f`, preserving input order
    /// in the output. The workhorse all pipeline stages share.
    pub fn map<T, R, F>(self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        match self {
            Self::Sequential => items.into_iter().map(f).collect(),
            Self::Rayon => items.into_par_iter().map(f).collect(),
            Self::Threads(n) => {
                pinned_pool(n.max(1)).install(|| items.into_par_iter().map(f).collect())
            }
        }
    }

    /// Like [`map`](Self::map) over an index range `0..n`.
    pub fn map_indexed<R, F>(self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
    {
        self.map((0..n).collect(), f)
    }
}

/// Process-wide cache of pinned pools, one per thread count.
/// `Parallelism::Threads(n)` can sit on a per-request hot path (thread
/// sweeps, determinism pins), and building a pool spawns `n` OS threads
/// — with the real rayon and with the shim's persistent worker pool
/// alike — so that cost must be paid once per `n`, not once per call.
/// The pool's workers carry the pin with them: nested parallel calls
/// inside `install`ed work run on the owning pool at its width.
fn pinned_pool(n: usize) -> &'static rayon::ThreadPool {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static POOLS: OnceLock<Mutex<HashMap<usize, &'static rayon::ThreadPool>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().expect("pool cache poisoned");
    pools.entry(n).or_insert_with(|| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool construction cannot fail");
        // Leaked deliberately: the distinct thread counts a process uses
        // are few and fixed, and pools must outlive every caller.
        Box::leak(Box::new(pool))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_rayon() {
        assert_eq!(Parallelism::default(), Parallelism::Rayon);
        assert!(Parallelism::Rayon.is_parallel());
        assert!(!Parallelism::Sequential.is_parallel());
        assert!(!Parallelism::Threads(1).is_parallel());
        assert!(Parallelism::Threads(4).is_parallel());
    }

    #[test]
    fn all_modes_agree_bitwise_and_preserve_order() {
        let input: Vec<u32> = (0..500).collect();
        let f = |x: u32| f64::from(x).sqrt() * 1.000_000_1;
        let seq = Parallelism::Sequential.map(input.clone(), f);
        let ray = Parallelism::Rayon.map(input.clone(), f);
        for threads in [1, 2, 4, 8] {
            let pinned = Parallelism::Threads(threads).map(input.clone(), f);
            assert_eq!(seq, pinned, "Threads({threads}) must match Sequential");
        }
        assert_eq!(seq, ray);
    }

    #[test]
    fn map_indexed_covers_the_range() {
        let got = Parallelism::Threads(3).map_indexed(7, |i| i * i);
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn num_workers_reflects_the_mode() {
        assert_eq!(Parallelism::Sequential.num_workers(), 1);
        assert_eq!(Parallelism::Threads(1).num_workers(), 1);
        assert_eq!(Parallelism::Threads(6).num_workers(), 6);
        assert_eq!(Parallelism::Threads(0).num_workers(), 1, "0 clamps to 1");
        assert!(Parallelism::Rayon.num_workers() >= 1);
    }

    #[test]
    fn zero_threads_degrades_to_one() {
        let got = Parallelism::Threads(0).map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }
}
