//! Bounded top-k selection.
//!
//! Both the single-user recommendation step (*"the items `A_u` with the
//! top-k relevance scores can be suggested to `u`"*, §III-A) and the group
//! step (§III-B) need the `k` highest-scoring items out of a large candidate
//! stream. [`TopK`] keeps a bounded binary min-heap: pushing is `O(log k)`
//! and memory stays `O(k)` regardless of stream length, which is the same
//! observation that motivates the MapReduce top-k of the paper's ref. \[5\].
//!
//! Ties are broken by *ascending item id* so that results are deterministic
//! and independent of push order — important both for reproducible
//! experiments and for verifying the MapReduce path against the in-memory
//! path.

use crate::ids::ItemId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item together with its (relevance) score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// The scored item.
    pub item: ItemId,
    /// The score; must be finite.
    pub score: f64,
}

impl ScoredItem {
    /// Creates a scored item.
    ///
    /// # Panics
    /// Panics in debug builds if `score` is not finite; NaN scores have no
    /// meaningful rank.
    pub fn new(item: ItemId, score: f64) -> Self {
        debug_assert!(score.is_finite(), "scores must be finite, got {score}");
        Self { item, score }
    }

    /// Ranking key: higher score wins; on equal scores, the *smaller* item
    /// id wins. Returns `Ordering::Greater` when `self` outranks `other`.
    fn rank_cmp(&self, other: &Self) -> Ordering {
        match self.score.partial_cmp(&other.score) {
            Some(Ordering::Equal) | None => other.item.cmp(&self.item),
            Some(ord) => ord,
        }
    }
}

/// Min-heap wrapper: the heap root is the *worst* retained entry.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinEntry(ScoredItem);

impl Eq for MinEntry {}

impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the worst on top.
        other.0.rank_cmp(&self.0)
    }
}

/// Bounded selection of the `k` best-scoring items from a stream.
///
/// ```
/// use fairrec_types::{ItemId, TopK};
///
/// let mut top = TopK::new(2);
/// top.push(ItemId::new(1), 3.0);
/// top.push(ItemId::new(2), 5.0);
/// top.push(ItemId::new(3), 4.0);
/// let best = top.into_sorted_vec();
/// assert_eq!(best[0].item, ItemId::new(2));
/// assert_eq!(best[1].item, ItemId::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<MinEntry>,
}

impl TopK {
    /// Creates a selector retaining the best `k` entries. `k = 0` retains
    /// nothing (useful as a degenerate sweep endpoint).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// The bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of retained entries (`≤ k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers an entry; returns `true` if it was retained.
    ///
    /// Non-finite scores are rejected outright (in release builds too):
    /// a NaN has no meaningful rank — `partial_cmp` against it returns
    /// `None`, which the internal `rank_cmp` ordering would quietly
    /// resolve by item id, letting a NaN-scored item displace real ones.
    pub fn push(&mut self, item: ItemId, score: f64) -> bool {
        if self.k == 0 || !score.is_finite() {
            return false;
        }
        let candidate = ScoredItem::new(item, score);
        if self.heap.len() < self.k {
            self.heap.push(MinEntry(candidate));
            return true;
        }
        // Full: replace the worst retained entry if the candidate outranks it.
        let worst = self.heap.peek().expect("non-empty when full").0;
        if candidate.rank_cmp(&worst) == Ordering::Greater {
            self.heap.pop();
            self.heap.push(MinEntry(candidate));
            true
        } else {
            false
        }
    }

    /// The worst retained score, if any — the current admission threshold
    /// once the selector is full.
    pub fn threshold(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.0.score)
    }

    /// Consumes the selector, returning entries best-first.
    pub fn into_sorted_vec(self) -> Vec<ScoredItem> {
        let mut v: Vec<ScoredItem> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_unstable_by(|a, b| b.rank_cmp(a));
        v
    }

    /// Consumes the selector, returning only the item ids, best-first.
    pub fn into_items(self) -> Vec<ItemId> {
        self.into_sorted_vec().into_iter().map(|s| s.item).collect()
    }
}

impl Extend<ScoredItem> for TopK {
    fn extend<T: IntoIterator<Item = ScoredItem>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.item, s.score);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().copied().map(ItemId::new).collect()
    }

    #[test]
    fn keeps_the_best_k() {
        let mut t = TopK::new(3);
        for (i, s) in [(0, 1.0), (1, 9.0), (2, 5.0), (3, 7.0), (4, 3.0)] {
            t.push(ItemId::new(i), s);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.clone().into_items(), ids(&[1, 3, 2]));
        assert_eq!(t.threshold(), Some(5.0));
    }

    #[test]
    fn ties_break_by_ascending_item_id() {
        let mut t = TopK::new(2);
        t.push(ItemId::new(9), 4.0);
        t.push(ItemId::new(2), 4.0);
        t.push(ItemId::new(5), 4.0);
        assert_eq!(t.into_items(), ids(&[2, 5]));
    }

    #[test]
    fn tie_breaking_is_push_order_independent() {
        let scores = [(7u32, 2.0), (1, 2.0), (4, 2.0), (3, 5.0)];
        let mut perms: Vec<Vec<ItemId>> = Vec::new();
        // All 4! orders.
        let idx = [0usize, 1, 2, 3];
        let mut orders = Vec::new();
        permute(&idx, &mut vec![], &mut orders);
        for order in orders {
            let mut t = TopK::new(3);
            for &p in &order {
                let (i, s) = scores[p];
                t.push(ItemId::new(i), s);
            }
            perms.push(t.into_items());
        }
        for p in &perms {
            assert_eq!(p, &ids(&[3, 1, 4]));
        }
    }

    fn permute(rest: &[usize], acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(acc.clone());
            return;
        }
        for (pos, &x) in rest.iter().enumerate() {
            let mut next: Vec<usize> = rest.to_vec();
            next.remove(pos);
            acc.push(x);
            permute(&next, acc, out);
            acc.pop();
        }
    }

    #[test]
    fn non_finite_scores_are_rejected() {
        let mut t = TopK::new(3);
        assert!(t.push(ItemId::new(0), 1.0));
        assert!(!t.push(ItemId::new(1), f64::NAN));
        assert!(!t.push(ItemId::new(2), f64::INFINITY));
        assert!(!t.push(ItemId::new(3), f64::NEG_INFINITY));
        assert_eq!(t.len(), 1, "only the finite score is retained");
        assert_eq!(t.into_items(), ids(&[0]));
    }

    #[test]
    fn k_zero_retains_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.push(ItemId::new(1), 5.0));
        assert!(t.is_empty());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn under_filled_returns_all_sorted() {
        let mut t = TopK::new(10);
        t.push(ItemId::new(1), 2.0);
        t.push(ItemId::new(2), 8.0);
        assert_eq!(t.into_items(), ids(&[2, 1]));
    }

    #[test]
    fn push_reports_retention() {
        let mut t = TopK::new(1);
        assert!(t.push(ItemId::new(0), 1.0));
        assert!(t.push(ItemId::new(1), 2.0)); // displaces
        assert!(!t.push(ItemId::new(2), 0.5)); // rejected
        assert_eq!(t.into_items(), ids(&[1]));
    }

    #[test]
    fn extend_accepts_scored_items() {
        let mut t = TopK::new(2);
        t.extend([
            ScoredItem::new(ItemId::new(1), 1.0),
            ScoredItem::new(ItemId::new(2), 2.0),
            ScoredItem::new(ItemId::new(3), 3.0),
        ]);
        assert_eq!(t.into_items(), ids(&[3, 2]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn agrees_with_full_sort(
            scores in proptest::collection::vec(0.0f64..100.0, 0..200),
            k in 0usize..20
        ) {
            let mut t = TopK::new(k);
            for (i, &s) in scores.iter().enumerate() {
                t.push(ItemId::new(i as u32), s);
            }
            let got = t.into_sorted_vec();

            let mut all: Vec<ScoredItem> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| ScoredItem::new(ItemId::new(i as u32), s))
                .collect();
            all.sort_unstable_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap()
                    .then(a.item.cmp(&b.item))
            });
            all.truncate(k);

            prop_assert_eq!(got.len(), all.len());
            for (g, e) in got.iter().zip(all.iter()) {
                prop_assert_eq!(g.item, e.item);
                prop_assert!((g.score - e.score).abs() < 1e-12);
            }
        }
    }
}
