//! Owner-routed read access to a rating relation — the trait the
//! Equation-1 tail of the pipeline is generic over.
//!
//! The relevance predictor and the recommendation tails only need four
//! questions answered: how big are the id spaces, who rated an item
//! (in **ascending global user order** — the canonical summation order
//! the bitwise-determinism contract pins), and which items a set of
//! users has left unrated. [`RatingsRead`] captures exactly that, so
//! the same code serves the monolithic [`RatingMatrix`] and the
//! compacted [`ShardedRatingMatrix`] — the latter answering through
//! owner routing alone, with no monolithic shadow copy anywhere.
//!
//! The sharded `for_each_rater` is an S-way merge of the per-shard
//! columns. Each shard's column stores *local* ids, but the monotone
//! remap means the translated per-shard streams each ascend by global
//! id; merging by smallest head therefore replays the exact visiting
//! order of the monolithic column, and Equation 1 sums in the same
//! order to the same bits.

use crate::ids::{ItemId, UserId};
use crate::matrix::RatingMatrix;
use crate::shard::ShardedRatingMatrix;

/// Read access to a rating relation, sufficient for Equation 1 and
/// candidate enumeration. Implementations must visit raters in
/// ascending global user id order — float summation order is part of
/// the output contract.
pub trait RatingsRead: Sync {
    /// Size of the (global) user id space.
    fn num_users(&self) -> u32;

    /// Size of the (global) item id space.
    fn num_items(&self) -> u32;

    /// Visits every `(rater, score)` of `item`, ascending by global
    /// user id.
    fn for_each_rater(&self, item: ItemId, visit: &mut dyn FnMut(UserId, f64));

    /// Items none of `users` has rated, ascending by item id.
    fn unrated_by_all(&self, users: &[UserId]) -> Vec<ItemId>;
}

impl RatingsRead for RatingMatrix {
    fn num_users(&self) -> u32 {
        RatingMatrix::num_users(self)
    }

    fn num_items(&self) -> u32 {
        RatingMatrix::num_items(self)
    }

    fn for_each_rater(&self, item: ItemId, visit: &mut dyn FnMut(UserId, f64)) {
        for (rater, score) in self.raters_of(item) {
            visit(rater, score);
        }
    }

    fn unrated_by_all(&self, users: &[UserId]) -> Vec<ItemId> {
        RatingMatrix::unrated_by_all(self, users)
    }
}

impl RatingsRead for ShardedRatingMatrix {
    fn num_users(&self) -> u32 {
        ShardedRatingMatrix::num_users(self)
    }

    fn num_items(&self) -> u32 {
        ShardedRatingMatrix::num_items(self)
    }

    fn for_each_rater(&self, item: ItemId, visit: &mut dyn FnMut(UserId, f64)) {
        // S-way merge by global id: each shard's translated column
        // already ascends (monotone remap), so repeatedly taking the
        // smallest head replays the monolithic column order exactly.
        let mut streams: Vec<_> = self
            .shards()
            .iter()
            .map(|shard| shard.raters_of(item).peekable())
            .collect();
        loop {
            let mut best: Option<(usize, UserId)> = None;
            for (idx, stream) in streams.iter_mut().enumerate() {
                if let Some(&(u, _)) = stream.peek() {
                    if best.is_none_or(|(_, bu)| u < bu) {
                        best = Some((idx, u));
                    }
                }
            }
            let Some((idx, _)) = best else { break };
            let (u, score) = streams[idx].next().expect("peeked head exists");
            visit(u, score);
        }
    }

    fn unrated_by_all(&self, users: &[UserId]) -> Vec<ItemId> {
        let mut rated = vec![false; ShardedRatingMatrix::num_items(self) as usize];
        for &u in users {
            for &i in self.owning_shard(u).items_of(u) {
                rated[i.index()] = true;
            }
        }
        (0..ShardedRatingMatrix::num_items(self))
            .filter(|&raw| !rated[raw as usize])
            .map(ItemId::new)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RatingMatrixBuilder;
    use crate::rating::Rating;
    use crate::shard::ShardSpec;

    fn sample() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new().reserve_ids(12, 7);
        for (u, i, s) in [
            (0u32, 0u32, 5.0),
            (1, 0, 4.0),
            (2, 0, 1.5),
            (5, 0, 2.0),
            (9, 0, 3.5),
            (11, 0, 4.5),
            (0, 2, 3.0),
            (3, 2, 4.5),
            (7, 5, 1.0),
        ] {
            b.add(UserId::new(u), ItemId::new(i), Rating::new(s).unwrap());
        }
        b.build().unwrap()
    }

    #[test]
    fn sharded_reads_replay_the_monolithic_order() {
        let m = sample();
        for s in [1u32, 2, 3, 8] {
            let part = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(s).unwrap()).unwrap();
            for i in m.item_ids() {
                let mut mono = Vec::new();
                RatingsRead::for_each_rater(&m, i, &mut |u, r| mono.push((u, r.to_bits())));
                let mut merged = Vec::new();
                RatingsRead::for_each_rater(&part, i, &mut |u, r| merged.push((u, r.to_bits())));
                assert_eq!(merged, mono, "S={s}, column {i}");
            }
            for group in [
                vec![],
                vec![UserId::new(0)],
                vec![UserId::new(0), UserId::new(3), UserId::new(7)],
                vec![UserId::new(42)],
            ] {
                assert_eq!(
                    RatingsRead::unrated_by_all(&part, &group),
                    RatingsRead::unrated_by_all(&m, &group),
                    "S={s}, group {group:?}"
                );
            }
        }
    }
}
