//! Validated rating scores.
//!
//! §III-A of the paper: *"A patient, or user, `u ∈ U` might rate an item
//! `i ∈ I` with a score `rating(u, i)` in `[1, 5]`"*. Explicit ratings are
//! therefore validated into the closed interval `[RATING_MIN, RATING_MAX]`.
//! Predicted scores ([`Relevance`]) are plain `f64` values: Equation 1
//! produces a convex combination of peer ratings, so predictions also fall
//! inside `[1, 5]`, but they are *derived* quantities and are not
//! re-validated on every arithmetic step.

use crate::error::{FairrecError, Result};
use std::fmt;

/// Smallest admissible rating value.
pub const RATING_MIN: f64 = 1.0;
/// Largest admissible rating value.
pub const RATING_MAX: f64 = 5.0;

/// Predicted relevance score (`relevance(u, i)` of Equation 1 or
/// `relevanceG(G, i)` of Definition 2).
pub type Relevance = f64;

/// A validated explicit rating in `[1, 5]`.
///
/// The paper's UI collects integer star ratings, but the model is agnostic,
/// so fractional scores (e.g. from implicit-feedback conversion) are
/// accepted as long as they are finite and inside the interval.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Rating(f64);

impl Rating {
    /// Validates `value` into a rating.
    ///
    /// # Errors
    /// Returns [`FairrecError::InvalidRating`] when the value is not finite
    /// or lies outside `[1, 5]`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && (RATING_MIN..=RATING_MAX).contains(&value) {
            Ok(Self(value))
        } else {
            Err(FairrecError::InvalidRating { value })
        }
    }

    /// Builds a rating from an integer star count (1–5).
    ///
    /// # Errors
    /// Returns [`FairrecError::InvalidRating`] for star counts outside 1–5.
    pub fn from_stars(stars: u8) -> Result<Self> {
        Self::new(f64::from(stars))
    }

    /// The underlying score.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Clamps an arbitrary finite value into the valid range.
    ///
    /// Useful when converting model outputs back into the rating domain.
    ///
    /// # Panics
    /// Panics (in debug builds) if `value` is NaN.
    pub fn saturating(value: f64) -> Self {
        debug_assert!(!value.is_nan(), "cannot build a Rating from NaN");
        Self(value.clamp(RATING_MIN, RATING_MAX))
    }
}

impl fmt::Debug for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rating({})", self.0)
    }
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

impl From<Rating> for f64 {
    #[inline]
    fn from(r: Rating) -> f64 {
        r.0
    }
}

impl TryFrom<f64> for Rating {
    type Error = FairrecError;

    fn try_from(value: f64) -> Result<Self> {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_boundary_values() {
        assert_eq!(Rating::new(1.0).unwrap().value(), 1.0);
        assert_eq!(Rating::new(5.0).unwrap().value(), 5.0);
        assert_eq!(Rating::new(3.25).unwrap().value(), 3.25);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Rating::new(0.999).is_err());
        assert!(Rating::new(5.001).is_err());
        assert!(Rating::new(-1.0).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        assert!(Rating::new(f64::NAN).is_err());
        assert!(Rating::new(f64::INFINITY).is_err());
        assert!(Rating::new(f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn from_stars_covers_ui_range() {
        for stars in 1..=5u8 {
            assert_eq!(Rating::from_stars(stars).unwrap().value(), f64::from(stars));
        }
        assert!(Rating::from_stars(0).is_err());
        assert!(Rating::from_stars(6).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Rating::saturating(0.0).value(), 1.0);
        assert_eq!(Rating::saturating(9.0).value(), 5.0);
        assert_eq!(Rating::saturating(2.5).value(), 2.5);
    }

    #[test]
    fn display_rounds_to_two_decimals() {
        assert_eq!(format!("{}", Rating::new(3.456).unwrap()), "3.46");
    }

    #[test]
    fn try_from_round_trips() {
        let r: Rating = 4.5f64.try_into().unwrap();
        let back: f64 = r.into();
        assert_eq!(back, 4.5);
    }
}
