//! Shared error type.
//!
//! One flat error enum is enough for this system: errors are rare,
//! construction-time conditions (bad input data, malformed files,
//! ill-formed queries), not hot-path control flow. Recoverable "no value"
//! situations — a similarity that is undefined, a prediction with no
//! covering peers — are modelled as `Option` in the respective APIs, not
//! as errors.

use crate::ids::{ItemId, UserId};
use std::fmt;

/// Convenience alias used across all `fairrec` crates.
pub type Result<T, E = FairrecError> = std::result::Result<T, E>;

/// Error raised by `fairrec` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FairrecError {
    /// A rating value outside `[1, 5]` or non-finite.
    InvalidRating {
        /// The offending value.
        value: f64,
    },
    /// The same `(user, item)` pair was rated twice.
    DuplicateRating {
        /// The rating user.
        user: UserId,
        /// The rated item.
        item: ItemId,
    },
    /// An update or removal referenced a `(user, item)` pair that holds
    /// no stored rating.
    MissingRating {
        /// The rating user.
        user: UserId,
        /// The rated item.
        item: ItemId,
    },
    /// A referenced user does not exist in the dataset.
    UnknownUser {
        /// The missing user.
        user: UserId,
    },
    /// A referenced item does not exist in the dataset.
    UnknownItem {
        /// The missing item.
        item: ItemId,
    },
    /// A group query with no members (Definition 2 requires `G ⊆ U`,
    /// `G ≠ ∅`).
    EmptyGroup,
    /// A structural parameter was invalid (e.g. `z = 0`, `δ ∉ [-1, 1]`).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A persistence-layer parse failure (TSV loaders, ontology codec).
    Parse {
        /// Line number (1-based) where the failure occurred, when known.
        line: Option<usize>,
        /// Description of the failure.
        message: String,
    },
    /// An I/O failure, carried as a string because `std::io::Error` is
    /// neither `Clone` nor `PartialEq`.
    Io {
        /// Description of the underlying I/O error.
        message: String,
    },
    /// The serving admission queue is at capacity; the request was
    /// rejected immediately instead of queuing unboundedly (backpressure).
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline lapsed before a result was produced — at
    /// admission, at dispatch, or while the caller was waiting.
    DeadlineExpired,
    /// The server is shutting down (or a computation was abandoned by a
    /// dying server) and no longer accepts work.
    ServerShutdown,
    /// A distributed task failed every permitted attempt (worker panic,
    /// lost result) and the retry budget is exhausted.
    TaskFailed {
        /// A human-readable task identifier (e.g. `"map[3]"` or a
        /// `WarmTask` descriptor label).
        task: String,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
    /// An internal invariant was violated — e.g. a lock poisoned by a
    /// panic on another thread. Surfaced as a typed error so waiters
    /// degrade instead of amplifying the panic.
    Internal {
        /// Description of the violated invariant.
        message: String,
    },
}

impl FairrecError {
    /// Builds an [`FairrecError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            message: message.into(),
        }
    }

    /// Builds a [`FairrecError::Internal`].
    pub fn internal(message: impl Into<String>) -> Self {
        Self::Internal {
            message: message.into(),
        }
    }

    /// Builds a [`FairrecError::Parse`] with a line number.
    pub fn parse_at(line: usize, message: impl Into<String>) -> Self {
        Self::Parse {
            line: Some(line),
            message: message.into(),
        }
    }
}

impl fmt::Display for FairrecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRating { value } => {
                write!(
                    f,
                    "invalid rating {value}: must be finite and within [1, 5]"
                )
            }
            Self::DuplicateRating { user, item } => {
                write!(f, "duplicate rating for ({user}, {item})")
            }
            Self::MissingRating { user, item } => {
                write!(f, "no stored rating for ({user}, {item})")
            }
            Self::UnknownUser { user } => write!(f, "unknown user {user}"),
            Self::UnknownItem { item } => write!(f, "unknown item {item}"),
            Self::EmptyGroup => write!(f, "group queries require at least one member"),
            Self::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Self::Parse {
                line: Some(l),
                message,
            } => write!(f, "parse error at line {l}: {message}"),
            Self::Parse {
                line: None,
                message,
            } => write!(f, "parse error: {message}"),
            Self::Io { message } => write!(f, "i/o error: {message}"),
            Self::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity}); retry later")
            }
            Self::DeadlineExpired => write!(f, "request deadline expired before completion"),
            Self::ServerShutdown => write!(f, "server is shut down and accepts no new requests"),
            Self::TaskFailed { task, attempts } => {
                write!(f, "task {task} failed after {attempts} attempt(s)")
            }
            Self::Internal { message } => write!(f, "internal invariant violated: {message}"),
        }
    }
}

impl std::error::Error for FairrecError {}

impl From<std::io::Error> for FairrecError {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(FairrecError, &str)> = vec![
            (
                FairrecError::InvalidRating { value: 7.0 },
                "invalid rating 7",
            ),
            (
                FairrecError::DuplicateRating {
                    user: UserId::new(1),
                    item: ItemId::new(2),
                },
                "duplicate rating for (u1, i2)",
            ),
            (
                FairrecError::MissingRating {
                    user: UserId::new(3),
                    item: ItemId::new(4),
                },
                "no stored rating for (u3, i4)",
            ),
            (
                FairrecError::UnknownUser {
                    user: UserId::new(9),
                },
                "unknown user u9",
            ),
            (
                FairrecError::UnknownItem {
                    item: ItemId::new(9),
                },
                "unknown item i9",
            ),
            (FairrecError::EmptyGroup, "at least one member"),
            (
                FairrecError::invalid_parameter("z", "must be positive"),
                "invalid parameter `z`",
            ),
            (FairrecError::parse_at(12, "bad field"), "line 12"),
            (
                FairrecError::QueueFull { capacity: 64 },
                "queue full (capacity 64)",
            ),
            (FairrecError::DeadlineExpired, "deadline expired"),
            (FairrecError::ServerShutdown, "shut down"),
            (
                FairrecError::TaskFailed {
                    task: "map[3]".into(),
                    attempts: 4,
                },
                "task map[3] failed after 4 attempt(s)",
            ),
            (
                FairrecError::Internal {
                    message: "slot lock poisoned".into(),
                },
                "internal invariant violated: slot lock poisoned",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: FairrecError = io.into();
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&FairrecError::EmptyGroup);
    }
}
