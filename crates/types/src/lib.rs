//! Core data types shared by every `fairrec` crate.
//!
//! This crate defines the vocabulary of the recommender described in
//! *"Fairness in Group Recommendations in the Health Domain"* (Stratigi,
//! Kondylakis, Stefanidis — ICDE 2017):
//!
//! * [`UserId`] / [`ItemId`] — compact, copyable identifiers for the patient
//!   set `U` and the item (document) set `I` of §III-A,
//! * [`Rating`] — a validated score `rating(u, i) ∈ [1, 5]`,
//! * [`RatingMatrix`] — the sparse set of rating triples
//!   `R = {(u, i, rating(u, i))}` with both a user-major (CSR) view `I(u)`
//!   and an item-major inverted index `U(i)`,
//! * [`TopK`] — a bounded max-selection heap used for per-user top-k lists
//!   `A_u` and for the final top-z selection,
//! * [`FairrecError`] — the shared error type.
//!
//! The types are deliberately small and allocation-conscious: identifiers
//! are `u32` newtypes, and the matrix stores ratings in two flat, sorted
//! arrays so that hot loops (peer search, relevance prediction) iterate
//! over contiguous memory.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod ids;
mod matrix;
mod metrics;
mod parallel;
mod rating;
mod reads;
mod serving;
mod shard;
mod topk;

pub use error::{FairrecError, Result};
pub use ids::{ConceptId, GroupId, IdGen, ItemId, UserId};
pub use matrix::{MatrixStats, RatingMatrix, RatingMatrixBuilder, RatingTriple};
pub use metrics::{
    ExposureParity, FairnessReport, MemberUtility, MetricCheck, MonitorStats,
    PackageFairnessMetrics, SegmentExposure, TradeoffPoint,
};
pub use parallel::Parallelism;
pub use rating::{Rating, Relevance, RATING_MAX, RATING_MIN};
pub use reads::RatingsRead;
pub use serving::Deadline;
pub use shard::{IdRemap, ShardMatrix, ShardSpec, ShardedRatingMatrix};
pub use topk::{ScoredItem, TopK};
