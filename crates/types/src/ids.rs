//! Compact newtype identifiers.
//!
//! All entity identifiers are `u32` newtypes: they are `Copy`, hash and
//! compare cheaply, and halve the footprint of the sparse rating matrix
//! compared to `usize` indices (see the type-size guidance of the Rust
//! Performance Book). External string identifiers (e.g. SNOMED-CT codes or
//! PHR usernames) are interned to dense ids at the data-loading boundary.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index widened to `usize` for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a user (patient) `u ∈ U`.
    UserId,
    "u"
);
define_id!(
    /// Identifier of an item (health document) `i ∈ I`.
    ItemId,
    "i"
);
define_id!(
    /// Identifier of a concept node in the clinical ontology (§V-C).
    ConceptId,
    "c"
);
define_id!(
    /// Identifier of a caregiver group `G ⊆ U` (§III-B).
    GroupId,
    "g"
);

/// Monotone generator of dense ids, used when building synthetic datasets
/// or interning external identifiers.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next raw id, advancing the generator.
    ///
    /// # Panics
    /// Panics on `u32` exhaustion (more than 2^32 entities), which is far
    /// beyond the scale this system targets.
    pub fn next_raw(&mut self) -> u32 {
        let id = self.next;
        self.next = self
            .next
            .checked_add(1)
            .expect("id space exhausted (more than u32::MAX entities)");
        id
    }

    /// Returns the next [`UserId`].
    pub fn next_user(&mut self) -> UserId {
        UserId::new(self.next_raw())
    }

    /// Returns the next [`ItemId`].
    pub fn next_item(&mut self) -> ItemId {
        ItemId::new(self.next_raw())
    }

    /// Returns the next [`ConceptId`].
    pub fn next_concept(&mut self) -> ConceptId {
        ConceptId::new(self.next_raw())
    }

    /// Number of ids handed out so far.
    pub fn count(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_raw_values() {
        let u = UserId::new(7);
        assert_eq!(u.raw(), 7);
        assert_eq!(u.index(), 7usize);
        assert_eq!(u32::from(u), 7);
        assert_eq!(UserId::from(7u32), u);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", UserId::new(3)), "u3");
        assert_eq!(format!("{}", ItemId::new(4)), "i4");
        assert_eq!(format!("{}", ConceptId::new(5)), "c5");
        assert_eq!(format!("{}", GroupId::new(6)), "g6");
        assert_eq!(format!("{:?}", UserId::new(3)), "u3");
    }

    #[test]
    fn ids_order_by_raw_value() {
        let mut v = vec![ItemId::new(5), ItemId::new(1), ItemId::new(3)];
        v.sort();
        assert_eq!(v, vec![ItemId::new(1), ItemId::new(3), ItemId::new(5)]);
    }

    #[test]
    fn ids_are_distinct_types() {
        // UserId and ItemId with the same raw value hash equally as u32 but
        // are different types; this is a compile-time property, so we just
        // exercise hashing of one type.
        let set: HashSet<UserId> = [UserId::new(1), UserId::new(1), UserId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn idgen_is_monotone_and_counts() {
        let mut gen = IdGen::new();
        assert_eq!(gen.next_user(), UserId::new(0));
        assert_eq!(gen.next_user(), UserId::new(1));
        assert_eq!(gen.next_item(), ItemId::new(2));
        assert_eq!(gen.count(), 3);
    }

    #[test]
    #[should_panic(expected = "id space exhausted")]
    fn idgen_panics_on_exhaustion() {
        let mut gen = IdGen { next: u32::MAX };
        gen.next_raw(); // returns u32::MAX, then overflows
        gen.next_raw();
    }
}
