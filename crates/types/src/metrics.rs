//! Fairness-evaluation vocabulary: per-package metric values, segment
//! exposure, threshold checks, and the aggregate report.
//!
//! The engine *optimises* Definition-1 fairness on every request; these
//! types are how the system *measures* the outcomes it produces. They
//! are deliberately plain data — the computation lives in
//! `fairrec-metrics`, the serving hook in `fairrec-engine` — so every
//! layer (engine observer, offline evaluation harness, bench rows,
//! committed trajectory files) speaks the same vocabulary.
//!
//! All utility-flavoured values are normalised into `[0, 1]` from the
//! rating domain `[RATING_MIN, RATING_MAX]` so thresholds and committed
//! trajectories are comparable across datasets.

use crate::ids::UserId;

/// Fairness and quality measurements of one served package, derived
/// from a `GroupRecommendation` (items with group/member relevance) —
/// see `fairrec_metrics::package_metrics` for the exact formulas.
///
/// Determinism: every field is a fixed-order fold over the package, so
/// two bitwise-identical recommendations produce bitwise-identical
/// metrics (the property the mono-vs-sharded equivalence tests pin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackageFairnessMetrics {
    /// `fairness(G, D)` — Definition 3, copied from the served package.
    pub fairness: f64,
    /// `value(G, D)` — the paper's objective, copied from the package.
    pub value: f64,
    /// Mean over members of the member utility (mean normalised
    /// relevance of the package items defined for that member; a member
    /// with no defined item scores 0 — the conservative reading of
    /// Definition 3: an invisible member is an unfairly treated one).
    pub mean_member_utility: f64,
    /// The worst-off member's utility — the Rawlsian floor.
    pub worst_member_utility: f64,
    /// Coefficient of variation (population σ / mean) of member
    /// utilities — 0 when every member is served equally well, 0 when
    /// the mean is 0 (all-undefined packages carry no dispersion
    /// signal).
    pub member_cv: f64,
    /// |normalised group score − mean member utility| — how far the
    /// group-level aggregate drifts from what members individually
    /// receive ("group fairness without destroying per-member quality"
    /// is exactly this gap staying small).
    pub group_member_disparity: f64,
    /// Members whose top-k list intersects the package (Definition 3's
    /// `|G_D|`).
    pub satisfied_members: u32,
    /// `|G|`.
    pub num_members: u32,
    /// Package length actually served (including padding).
    pub package_len: u32,
}

/// Exposure bookkeeping of one user-activity segment: how often members
/// of the segment appeared in evaluated requests and how often the
/// served package satisfied them (Definition 3 per member).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentExposure {
    /// Member-slots of this segment across evaluated requests.
    pub observed: u64,
    /// Of those, members the package satisfied.
    pub satisfied: u64,
}

impl SegmentExposure {
    /// Satisfaction rate of the segment (`NaN`-free: 1.0 for an
    /// unobserved segment, so empty segments never widen the parity
    /// gap).
    pub fn exposure(&self) -> f64 {
        if self.observed == 0 {
            1.0
        } else {
            self.satisfied as f64 / self.observed as f64
        }
    }
}

/// Statistical-parity-style exposure across user segments: the spread
/// of per-segment satisfaction rates over an evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureParity {
    /// Per-segment exposure, in segment order (segment 0 = least
    /// active users).
    pub segments: Vec<SegmentExposure>,
    /// `max − min` exposure over segments with observations (0 when at
    /// most one segment was observed).
    pub gap: f64,
}

/// One point of the fairness/quality trade-off curve over the package
/// size `z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The package size requested.
    pub z: usize,
    /// Mean Definition-3 fairness at this `z`.
    pub fairness: f64,
    /// Mean `value(G, D)` at this `z`.
    pub value: f64,
    /// Mean member utility at this `z`.
    pub mean_member_utility: f64,
    /// Worst member utility observed at this `z`.
    pub worst_member_utility: f64,
}

/// One threshold check of a [`FairnessReport`] — the
/// `HealthcareFairness`-style `{value, threshold, passed}` triple, plus
/// the direction the threshold guards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricCheck {
    /// Stable metric name (also the bench-row / trajectory key).
    pub name: &'static str,
    /// The measured value.
    pub value: f64,
    /// The configured threshold.
    pub threshold: f64,
    /// `true` when larger values are better (the check is
    /// `value ≥ threshold`); `false` guards an upper bound
    /// (`value ≤ threshold`).
    pub higher_is_better: bool,
    /// Whether the check passed.
    pub passed: bool,
}

impl MetricCheck {
    /// Builds a check, deriving `passed` from the direction.
    pub fn new(name: &'static str, value: f64, threshold: f64, higher_is_better: bool) -> Self {
        let passed = if higher_is_better {
            value >= threshold
        } else {
            value <= threshold
        };
        Self {
            name,
            value,
            threshold,
            higher_is_better,
            passed,
        }
    }
}

/// The monitor's pass/fail verdict over everything it evaluated: one
/// [`MetricCheck`] per configured threshold, plus the evaluation
/// counts. An empty report (nothing evaluated yet) passes vacuously.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// The individual threshold checks.
    pub checks: Vec<MetricCheck>,
    /// Requests the hook saw (sampled or not).
    pub observed: u64,
    /// Requests actually evaluated (the sampled subset).
    pub evaluated: u64,
    /// `true` iff every check passed.
    pub passed: bool,
}

impl FairnessReport {
    /// The check named `name`, if present.
    pub fn check(&self, name: &str) -> Option<&MetricCheck> {
        self.checks.iter().find(|c| c.name == name)
    }
}

/// ServerStats-style monotone counters of a fairness monitor's life —
/// snapshotted, never reset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorStats {
    /// Requests the serving hook saw.
    pub observed: u64,
    /// Requests the sampler selected and evaluated.
    pub evaluated: u64,
    /// Evaluations that breached at least one threshold.
    pub violations: u64,
    /// Lowest Definition-3 fairness seen (`1.0` before any evaluation).
    pub min_fairness: f64,
    /// Lowest worst-member utility seen (`1.0` before any evaluation).
    pub min_worst_member_utility: f64,
    /// Highest member coefficient of variation seen.
    pub max_member_cv: f64,
    /// Highest group↔member disparity seen.
    pub max_group_member_disparity: f64,
}

impl Default for MonitorStats {
    fn default() -> Self {
        Self {
            observed: 0,
            evaluated: 0,
            violations: 0,
            min_fairness: 1.0,
            min_worst_member_utility: 1.0,
            max_member_cv: 0.0,
            max_group_member_disparity: 0.0,
        }
    }
}

/// Per-member utility breakdown of one package (the transparency
/// companion of [`PackageFairnessMetrics`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberUtility {
    /// The member.
    pub user: UserId,
    /// Mean normalised relevance of the package items defined for the
    /// member (0 when none is defined).
    pub utility: f64,
    /// Package items with a defined relevance for the member.
    pub defined_items: u32,
    /// Whether the package satisfied the member (Definition 3).
    pub satisfied: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_check_directions() {
        assert!(MetricCheck::new("floor", 0.8, 0.5, true).passed);
        assert!(!MetricCheck::new("floor", 0.4, 0.5, true).passed);
        assert!(MetricCheck::new("ceiling", 0.4, 0.5, false).passed);
        assert!(!MetricCheck::new("ceiling", 0.6, 0.5, false).passed);
        // Boundary values pass in both directions.
        assert!(MetricCheck::new("floor", 0.5, 0.5, true).passed);
        assert!(MetricCheck::new("ceiling", 0.5, 0.5, false).passed);
    }

    #[test]
    fn unobserved_segment_exposure_is_neutral() {
        assert_eq!(SegmentExposure::default().exposure(), 1.0);
        let s = SegmentExposure {
            observed: 4,
            satisfied: 3,
        };
        assert_eq!(s.exposure(), 0.75);
    }

    #[test]
    fn report_lookup_finds_checks() {
        let report = FairnessReport {
            checks: vec![MetricCheck::new("a", 1.0, 0.5, true)],
            observed: 10,
            evaluated: 5,
            passed: true,
        };
        assert_eq!(report.check("a").unwrap().value, 1.0);
        assert!(report.check("b").is_none());
    }
}
