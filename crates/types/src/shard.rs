//! User-partitioned rating storage — the matrix side of the sharding
//! layer.
//!
//! The ROADMAP's >10⁶-user goal needs the rating relation split across
//! shards so that cold peer builds (and their memory) scale out instead
//! of up. [`ShardedRatingMatrix`] hash-partitions the **user** dimension:
//! every user is owned by exactly one shard ([`ShardSpec::shard_of`]),
//! and each shard holds a [`ShardMatrix`] — a [`RatingMatrix`] over a
//! *compacted local user-id space* plus the [`IdRemap`] that ties local
//! rows back to global ids. A shard owning `k` of `U` users allocates
//! user-axis metadata (CSR offsets, means, degrees) of length `k`, not
//! `U`, so per-shard memory is O(U/S) and the partition genuinely
//! spreads residency, not just CPU.
//!
//! The remap is **monotone**: `owned` is the ascending list of global
//! ids a shard holds, and local id = rank in that list. Ascending local
//! order therefore *is* ascending global order inside a shard, which
//! buys the three properties the similarity layer depends on:
//!
//! * **CSR rows are exact.** A user's ratings live wholly in their
//!   owning shard, so the local row (items, scores) and the cached mean
//!   `µ_u` are bitwise identical to the unsharded matrix (same triples,
//!   same sorted build order, same left-to-right mean summation).
//! * **CSC columns preserve the global merge-join order.** A shard
//!   column stores *local* rater ids, but because the remap is monotone
//!   those locals ascend exactly as their globals do — a kernel walking
//!   the column visits candidates in the same order the monolithic
//!   kernel would, so the Pearson accumulation order (and hence every
//!   bit of every similarity) is unchanged. Translation back to global
//!   ids happens only at the kernel boundary ([`IdRemap::global_of`]).
//! * **Point mutations route.** `insert`/`update`/`remove` forward to
//!   the owning shard's local [`RatingMatrix`] mutation (unchanged), so
//!   the incremental-ingestion contract ("patched ≡ rebuilt, bitwise")
//!   holds per shard by the existing proptests. Universe growth admits
//!   each new global id to its hash owner *incrementally* — new ids are
//!   larger than all existing ones, so appending keeps every remap
//!   sorted without a rescan.
//!
//! Out-of-range item lookups on a shard matrix answer empty (the
//! [`RatingMatrix`] guard), so shards whose item spaces lag behind a
//! growth event degrade safely: a column a shard has never seen is an
//! empty column, which is also what it holds.

use crate::error::{FairrecError, Result};
use crate::ids::{ItemId, UserId};
use crate::matrix::{RatingMatrix, RatingMatrixBuilder, RatingTriple};
use crate::rating::Rating;

/// Deterministic user → shard assignment.
///
/// The partition is a Fibonacci (multiplicative) hash followed by a
/// fixed-point range reduction: well mixed for the sequential id blocks
/// real cohorts arrive in, allocation-free, and — crucially for the
/// bitwise-equality contract — a pure function of `(user, num_shards)`,
/// so every component (matrix, peer index, engine, MapReduce producer)
/// agrees on ownership without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    num_shards: u32,
}

impl ShardSpec {
    /// A spec with `num_shards` shards.
    ///
    /// # Errors
    /// Rejects zero shards.
    pub fn new(num_shards: u32) -> Result<Self> {
        if num_shards == 0 {
            return Err(FairrecError::invalid_parameter("num_shards", "must be ≥ 1"));
        }
        Ok(Self { num_shards })
    }

    /// Number of shards `S`.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// The shard owning `user` — a pure function of the id and `S`.
    pub fn shard_of(&self, user: UserId) -> usize {
        // Fibonacci hash (golden-ratio multiplier) then take the high
        // bits via a widening multiply: maps uniformly onto 0..S without
        // the modulo's low-bit bias.
        let mixed = user.raw().wrapping_mul(0x9E37_79B9);
        ((u64::from(mixed) * u64::from(self.num_shards)) >> 32) as usize
    }

    /// One [`IdRemap`] per shard covering the universe `0..num_users` —
    /// a single O(U) enumeration at construction time. Per-call lookups
    /// go through the maintained remaps instead
    /// ([`ShardedRatingMatrix::users_of_shard`] is O(1)).
    pub fn partition(&self, num_users: u32) -> Vec<IdRemap> {
        let mut remaps: Vec<IdRemap> = (0..self.num_shards).map(|_| IdRemap::new()).collect();
        for u in (0..num_users).map(UserId::new) {
            remaps[self.shard_of(u)].push(u);
        }
        remaps
    }

    /// The users of `0..num_users` owned by `shard`, ascending.
    ///
    /// O(U) full-range scan — construction/oracle use only; steady-state
    /// callers read the owned list maintained by the remap.
    pub fn users_of_shard(&self, shard: usize, num_users: u32) -> Vec<UserId> {
        (0..num_users)
            .map(UserId::new)
            .filter(|&u| self.shard_of(u) == shard)
            .collect()
    }
}

/// A shard's global↔local user-id translation table.
///
/// `owned` is the ascending list of global ids the shard holds; a
/// user's local id is their rank in that list. Because new users are
/// only ever admitted with ids larger than every existing one, growth
/// is an append and the list stays sorted — which keeps the remap
/// *monotone* (local order ≡ global order), the invariant the kernel
/// merge-joins rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdRemap {
    owned: Vec<UserId>,
}

impl IdRemap {
    /// An empty remap (no owned users).
    pub fn new() -> Self {
        Self { owned: Vec::new() }
    }

    /// Number of owned users (the size of the local id space).
    pub fn len(&self) -> u32 {
        self.owned.len() as u32
    }

    /// True when the shard owns no users.
    pub fn is_empty(&self) -> bool {
        self.owned.is_empty()
    }

    /// The owned global ids, ascending. Local id `l` maps to
    /// `owned()[l]`.
    pub fn owned(&self) -> &[UserId] {
        &self.owned
    }

    /// The global id behind local id `local`.
    ///
    /// # Panics
    /// Panics when `local` is outside the local id space.
    pub fn global_of(&self, local: UserId) -> UserId {
        self.owned[local.index()]
    }

    /// The local id of `global`, or `None` when this shard does not own
    /// it. O(log k) binary search over the owned list.
    pub fn local_of(&self, global: UserId) -> Option<UserId> {
        self.owned
            .binary_search(&global)
            .ok()
            .map(|rank| UserId::new(rank as u32))
    }

    /// Number of owned users with global id strictly below `bound` —
    /// equivalently, the first local id whose global id is `≥ bound`.
    /// This is how a *global* universe bound (or an above-only pivot)
    /// translates into the local id space.
    pub fn rank_of_bound(&self, bound: u32) -> u32 {
        self.owned.partition_point(|g| g.raw() < bound) as u32
    }

    /// Admits `global` as the next local id.
    ///
    /// # Panics
    /// Debug-asserts monotonicity: `global` must exceed every owned id.
    pub fn push(&mut self, global: UserId) {
        debug_assert!(
            self.owned.last().is_none_or(|&last| last < global),
            "remap admissions must be ascending (got {global} after {:?})",
            self.owned.last()
        );
        self.owned.push(global);
    }
}

/// One shard of a [`ShardedRatingMatrix`]: a [`RatingMatrix`] whose
/// user axis is the *compacted local id space* (dense rows
/// `0..remap.len()`), plus the [`IdRemap`] back to global ids. The item
/// axis stays global. Global-facing accessors translate at the edge;
/// kernels that want the raw local view take [`local`](Self::local) and
/// [`remap`](Self::remap) directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMatrix {
    remap: IdRemap,
    local: RatingMatrix,
}

impl ShardMatrix {
    /// The global↔local translation table.
    pub fn remap(&self) -> &IdRemap {
        &self.remap
    }

    /// The compacted local matrix (user axis `0..remap.len()`, item
    /// axis global).
    pub fn local(&self) -> &RatingMatrix {
        &self.local
    }

    /// Items rated by global user `user`, ascending — empty when the
    /// shard does not own the user.
    pub fn items_of(&self, user: UserId) -> &[ItemId] {
        self.remap
            .local_of(user)
            .map_or(&[], |l| self.local.items_of(l))
    }

    /// Scores parallel to [`items_of`](Self::items_of).
    pub fn scores_of(&self, user: UserId) -> &[f64] {
        self.remap
            .local_of(user)
            .map_or(&[], |l| self.local.scores_of(l))
    }

    /// `(item, score)` pairs of global user `user`, ascending by item.
    pub fn ratings_of(&self, user: UserId) -> impl Iterator<Item = (ItemId, f64)> + '_ {
        self.items_of(user)
            .iter()
            .copied()
            .zip(self.scores_of(user).iter().copied())
    }

    /// Raters of `item` owned by this shard as `(global id, score)`,
    /// ascending by global id (the column stores locals; the monotone
    /// remap makes the translated stream ascend).
    pub fn raters_of(&self, item: ItemId) -> impl Iterator<Item = (UserId, f64)> + '_ {
        self.local
            .raters_of(item)
            .map(|(l, r)| (self.remap.global_of(l), r))
    }

    /// `rating(user, item)` for a global user id.
    pub fn rating(&self, user: UserId, item: ItemId) -> Option<f64> {
        self.remap
            .local_of(user)
            .and_then(|l| self.local.rating(l, item))
    }

    /// True when the shard stores `(user, item)`.
    pub fn has_rated(&self, user: UserId, item: ItemId) -> bool {
        self.rating(user, item).is_some()
    }

    /// `µ_user` for a global user id (`None` when unowned or rating-less).
    pub fn user_mean(&self, user: UserId) -> Option<f64> {
        self.remap
            .local_of(user)
            .and_then(|l| self.local.user_mean(l))
    }

    /// Number of ratings by global user `user`.
    pub fn degree_of(&self, user: UserId) -> usize {
        self.remap
            .local_of(user)
            .map_or(0, |l| self.local.degree_of(l))
    }

    /// Stored ratings in this shard.
    pub fn num_ratings(&self) -> usize {
        self.local.num_ratings()
    }

    /// Number of **owned** users who rated `item` — this shard's share
    /// of the global column degree `|U(i)|` (items are global ids in
    /// every shard).
    pub fn item_degree(&self, item: ItemId) -> usize {
        self.local.item_degree(item)
    }

    /// Bytes of user-axis metadata: the compacted local arrays plus the
    /// remap table itself.
    pub fn user_axis_bytes(&self) -> usize {
        self.local.user_axis_bytes() + std::mem::size_of_val(self.remap.owned())
    }

    /// This shard's triples under **global** ids, sorted `(user, item)`
    /// (local user order is global order, so translation preserves the
    /// sort).
    pub fn to_triples(&self) -> Vec<RatingTriple> {
        let mut out = self.local.to_triples();
        for t in &mut out {
            t.user = self.remap.global_of(t.user);
        }
        out
    }

    /// Admits global id `global` as the next local row (empty).
    fn admit_user(&mut self, global: UserId) {
        self.remap.push(global);
        self.local.grow_user_space(self.remap.len());
    }

    /// Maps a mutation error's local user id back to the global id the
    /// caller speaks.
    fn globalize_err(&self, err: FairrecError, global: UserId) -> FairrecError {
        match err {
            FairrecError::DuplicateRating { item, .. } => {
                FairrecError::DuplicateRating { user: global, item }
            }
            FairrecError::MissingRating { item, .. } => {
                FairrecError::MissingRating { user: global, item }
            }
            other => other,
        }
    }
}

/// A user-partitioned [`RatingMatrix`]: one compacted [`ShardMatrix`]
/// per shard. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRatingMatrix {
    spec: ShardSpec,
    shards: Vec<ShardMatrix>,
    n_users: u32,
    n_items: u32,
}

impl ShardedRatingMatrix {
    /// Partitions `matrix` into `spec.num_shards()` compacted
    /// shard-local matrices.
    ///
    /// # Errors
    /// Propagates shard-matrix build failures (cannot occur for a valid
    /// source matrix — its triples are already duplicate-free).
    pub fn from_matrix(matrix: &RatingMatrix, spec: ShardSpec) -> Result<Self> {
        Self::from_triples(
            &matrix.to_triples(),
            spec,
            matrix.num_users(),
            matrix.num_items(),
        )
    }

    /// Builds the partition directly from a triple relation — the
    /// batch-ingest path, which must never materialise a transient
    /// monolithic matrix. Dimensions are the larger of the occupied
    /// space and the `min_*` floors.
    ///
    /// # Errors
    /// Propagates shard-matrix build failures (duplicate pairs).
    pub fn from_triples(
        triples: &[RatingTriple],
        spec: ShardSpec,
        min_users: u32,
        min_items: u32,
    ) -> Result<Self> {
        let n_users = triples
            .iter()
            .map(|t| t.user.raw() + 1)
            .max()
            .unwrap_or(0)
            .max(min_users);
        let n_items = triples
            .iter()
            .map(|t| t.item.raw() + 1)
            .max()
            .unwrap_or(0)
            .max(min_items);
        let remaps = spec.partition(n_users);
        let mut builders: Vec<RatingMatrixBuilder> = remaps
            .iter()
            .map(|remap| RatingMatrixBuilder::new().reserve_ids(remap.len(), n_items))
            .collect();
        for t in triples {
            let s = spec.shard_of(t.user);
            let local = remaps[s]
                .local_of(t.user)
                .expect("partition covers the whole universe");
            builders[s].add(local, t.item, t.rating);
        }
        let shards = remaps
            .into_iter()
            .zip(builders)
            .map(|(remap, builder)| {
                Ok(ShardMatrix {
                    remap,
                    local: builder.build()?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            spec,
            shards,
            n_users,
            n_items,
        })
    }

    /// The partitioning spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.spec.num_shards()
    }

    /// The shard owning `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        self.spec.shard_of(user)
    }

    /// The shard-local matrix of shard `s`.
    ///
    /// # Panics
    /// Panics when `s ≥ num_shards`.
    pub fn shard(&self, s: usize) -> &ShardMatrix {
        &self.shards[s]
    }

    /// All shard-local matrices, in shard order.
    pub fn shards(&self) -> &[ShardMatrix] {
        &self.shards
    }

    /// The shard matrix holding `user`'s CSR row (and mean).
    pub fn owning_shard(&self, user: UserId) -> &ShardMatrix {
        &self.shards[self.shard_of(user)]
    }

    /// Size of the global user id space.
    pub fn num_users(&self) -> u32 {
        self.n_users
    }

    /// Size of the global item id space.
    pub fn num_items(&self) -> u32 {
        self.n_items
    }

    /// Total stored ratings across all shards.
    pub fn num_ratings(&self) -> usize {
        self.shards.iter().map(ShardMatrix::num_ratings).sum()
    }

    /// Total user-axis metadata bytes across all shards (compacted
    /// arrays + remap tables).
    pub fn user_axis_bytes(&self) -> usize {
        self.shards.iter().map(ShardMatrix::user_axis_bytes).sum()
    }

    /// The largest single shard's user-axis metadata bytes — the
    /// per-process residency a distributed deployment would pay.
    pub fn max_shard_user_axis_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(ShardMatrix::user_axis_bytes)
            .max()
            .unwrap_or(0)
    }

    /// The users owned by shard `s` within the global universe,
    /// ascending. O(1): this is the remap's maintained owned list, kept
    /// exact across growth by the append-only admission rule.
    pub fn users_of_shard(&self, s: usize) -> &[UserId] {
        self.shards[s].remap.owned()
    }

    /// Looks up `rating(u, i)` in the owning shard.
    pub fn rating(&self, user: UserId, item: ItemId) -> Option<f64> {
        self.owning_shard(user).rating(user, item)
    }

    /// True when the owning shard stores `(user, item)`.
    pub fn has_rated(&self, user: UserId, item: ItemId) -> bool {
        self.owning_shard(user).has_rated(user, item)
    }

    /// `µ_user` from the owning shard.
    pub fn user_mean(&self, user: UserId) -> Option<f64> {
        self.owning_shard(user).user_mean(user)
    }

    /// Number of ratings by `user`.
    pub fn degree_of(&self, user: UserId) -> usize {
        self.owning_shard(user).degree_of(user)
    }

    /// Global column degree `|U(i)|`: the sum of every shard's share
    /// (each shard stores its owned users' ratings of `item`).
    pub fn item_degree(&self, item: ItemId) -> usize {
        self.shards.iter().map(|s| s.item_degree(item)).sum()
    }

    /// Co-rating mass of `user` — `Σ_{i ∈ I(user)} |U(i)|` over global
    /// column degrees, identical to [`RatingMatrix::co_rating_mass`] on
    /// the equivalent monolithic matrix. The ingestion cost model
    /// prices a delta replay for `user` at this figure.
    pub fn co_rating_mass(&self, user: UserId) -> u64 {
        self.owning_shard(user)
            .items_of(user)
            .iter()
            .map(|&i| self.item_degree(i) as u64)
            .sum()
    }

    /// Total co-rating mass `Σ_i |U(i)|²` over global column degrees —
    /// identical to [`RatingMatrix::total_co_rating_mass`] on the
    /// equivalent monolithic matrix; the cost model's price for a
    /// blanket invalidation + symmetric rewarm (halved by the caller:
    /// the warm visits each unordered pair once).
    pub fn total_co_rating_mass(&self) -> u64 {
        (0..self.n_items)
            .map(|raw| {
                let d = self.item_degree(ItemId::new(raw)) as u64;
                d * d
            })
            .sum()
    }

    /// Inserts a rating into the owning shard, growing the global id
    /// spaces when needed. Growth admits every new global id
    /// `n_users..=user` to its hash owner — an append per id, keeping
    /// all remaps sorted without a rescan.
    ///
    /// # Errors
    /// Propagates [`RatingMatrix::insert_rating`] errors (with global
    /// user ids); the stored relation is untouched on error.
    pub fn insert_rating(&mut self, user: UserId, item: ItemId, rating: Rating) -> Result<()> {
        if user.raw() == u32::MAX {
            return Err(FairrecError::invalid_parameter(
                "user",
                "id u32::MAX is reserved",
            ));
        }
        // Admit any universe growth first; admissions are per-id
        // appends and harmless if the insert below then fails
        // (admitting a user is not observable through the relation).
        for g in self.n_users..=user.raw() {
            let g = UserId::new(g);
            let s = self.spec.shard_of(g);
            self.shards[s].admit_user(g);
        }
        self.n_users = self.n_users.max(user.raw() + 1);
        let s = self.shard_of(user);
        let shard = &mut self.shards[s];
        let local = shard
            .remap
            .local_of(user)
            .expect("owning shard admitted the user");
        shard
            .local
            .insert_rating(local, item, rating)
            .map_err(|e| shard.globalize_err(e, user))?;
        self.n_items = self.n_items.max(item.raw() + 1);
        Ok(())
    }

    /// Updates an existing rating in the owning shard; returns the
    /// previous score.
    ///
    /// # Errors
    /// Propagates [`RatingMatrix::update_rating`] errors (with global
    /// user ids).
    pub fn update_rating(&mut self, user: UserId, item: ItemId, rating: Rating) -> Result<f64> {
        let s = self.shard_of(user);
        let shard = &mut self.shards[s];
        let Some(local) = shard.remap.local_of(user) else {
            return Err(FairrecError::MissingRating { user, item });
        };
        shard
            .local
            .update_rating(local, item, rating)
            .map_err(|e| shard.globalize_err(e, user))
    }

    /// Removes an existing rating from the owning shard; returns the
    /// removed score. Id spaces never shrink.
    ///
    /// # Errors
    /// Propagates [`RatingMatrix::remove_rating`] errors (with global
    /// user ids).
    pub fn remove_rating(&mut self, user: UserId, item: ItemId) -> Result<f64> {
        let s = self.shard_of(user);
        let shard = &mut self.shards[s];
        let Some(local) = shard.remap.local_of(user) else {
            return Err(FairrecError::MissingRating { user, item });
        };
        shard
            .local
            .remove_rating(local, item)
            .map_err(|e| shard.globalize_err(e, user))
    }

    /// Re-materialises the full triple relation, sorted `(user, item)` —
    /// the union of every shard's relation.
    pub fn to_triples(&self) -> Vec<RatingTriple> {
        let mut out: Vec<RatingTriple> = self
            .shards
            .iter()
            .flat_map(ShardMatrix::to_triples)
            .collect();
        out.sort_unstable_by_key(|t| (t.user, t.item));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> Rating {
        Rating::new(v).unwrap()
    }

    fn sample() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new().reserve_ids(10, 6);
        for (u, i, s) in [
            (0u32, 0u32, 5.0),
            (0, 2, 3.0),
            (1, 0, 4.0),
            (3, 1, 2.0),
            (3, 2, 4.5),
            (7, 5, 1.0),
            (9, 0, 3.5),
        ] {
            b.add(UserId::new(u), ItemId::new(i), r(s));
        }
        b.build().unwrap()
    }

    #[test]
    fn spec_rejects_zero_and_partitions_everyone() {
        assert!(ShardSpec::new(0).is_err());
        for s in [1u32, 2, 3, 8] {
            let spec = ShardSpec::new(s).unwrap();
            let mut seen = 0usize;
            for shard in 0..s as usize {
                let users = spec.users_of_shard(shard, 100);
                assert!(users.iter().all(|&u| spec.shard_of(u) == shard));
                seen += users.len();
            }
            assert_eq!(seen, 100, "every user owned by exactly one shard");
        }
    }

    #[test]
    fn remap_is_monotone_and_translates_both_ways() {
        let spec = ShardSpec::new(3).unwrap();
        let remaps = spec.partition(50);
        for (s, remap) in remaps.iter().enumerate() {
            assert_eq!(remap.owned(), spec.users_of_shard(s, 50).as_slice());
            assert!(remap.owned().windows(2).all(|w| w[0] < w[1]), "sorted");
            for (local, &global) in remap.owned().iter().enumerate() {
                let local = UserId::new(local as u32);
                assert_eq!(remap.global_of(local), global);
                assert_eq!(remap.local_of(global), Some(local));
            }
            // A global bound translates to the local rank below it.
            for bound in [0u32, 1, 17, 50, 60] {
                let expect = remap.owned().iter().filter(|g| g.raw() < bound).count();
                assert_eq!(remap.rank_of_bound(bound) as usize, expect);
            }
        }
        let total: u32 = remaps.iter().map(IdRemap::len).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn single_shard_is_the_whole_matrix() {
        let m = sample();
        let sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(1).unwrap()).unwrap();
        // With one shard the remap is the identity, so the local matrix
        // *is* the monolithic matrix. Derived `PartialEq` cannot compare
        // NaN mean slots; the relation plus the dimensions pin the
        // equality.
        assert_eq!(sharded.shard(0).to_triples(), m.to_triples());
        assert_eq!(sharded.shard(0).local().num_users(), m.num_users());
        assert_eq!(sharded.shard(0).local().num_items(), m.num_items());
        assert_eq!(sharded.num_ratings(), m.num_ratings());
    }

    #[test]
    fn rows_live_wholly_in_the_owning_shard() {
        let m = sample();
        for s in [2u32, 3, 8] {
            let sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(s).unwrap()).unwrap();
            assert_eq!(sharded.num_users(), m.num_users());
            assert_eq!(sharded.num_items(), m.num_items());
            assert_eq!(sharded.num_ratings(), m.num_ratings());
            for u in m.user_ids() {
                let owner = sharded.owning_shard(u);
                assert_eq!(owner.items_of(u), m.items_of(u), "S={s}, row of {u}");
                assert_eq!(owner.scores_of(u), m.scores_of(u), "S={s}, scores of {u}");
                let local = owner.remap().local_of(u).expect("owned");
                assert_eq!(
                    owner.local().user_means()[local.index()].to_bits(),
                    m.user_means()[u.index()].to_bits(),
                    "S={s}, mean of {u}"
                );
                // Every *other* shard neither owns u nor holds a row.
                for (t, shard) in sharded.shards().iter().enumerate() {
                    if t != sharded.shard_of(u) {
                        assert!(shard.remap().local_of(u).is_none(), "S={s}, shard {t}");
                        assert!(shard.items_of(u).is_empty(), "S={s}, shard {t}, user {u}");
                    }
                }
            }
            assert_eq!(sharded.to_triples(), m.to_triples());
        }
    }

    #[test]
    fn shard_metadata_is_owned_sized_not_global_sized() {
        let m = sample();
        for s in [2u32, 3, 8] {
            let sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(s).unwrap()).unwrap();
            let mut owned_total = 0u32;
            for (t, shard) in sharded.shards().iter().enumerate() {
                let owned = sharded.users_of_shard(t).len() as u32;
                assert_eq!(
                    shard.local().num_users(),
                    owned,
                    "S={s}: shard {t} user axis is owned-sized"
                );
                assert_eq!(shard.remap().len(), owned);
                owned_total += owned;
            }
            assert_eq!(
                owned_total,
                m.num_users(),
                "S={s}: shards tile the universe"
            );
        }
    }

    #[test]
    fn columns_are_the_shard_restricted_csc() {
        let m = sample();
        let sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(3).unwrap()).unwrap();
        for i in m.item_ids() {
            let mut union: Vec<(UserId, f64)> = sharded
                .shards()
                .iter()
                .flat_map(|shard| shard.raters_of(i).collect::<Vec<_>>())
                .collect();
            union.sort_unstable_by_key(|&(u, _)| u);
            let full: Vec<(UserId, f64)> = m.raters_of(i).collect();
            assert_eq!(union, full, "column {i}");
            for (t, shard) in sharded.shards().iter().enumerate() {
                // Columns hold only owned users, and the translated
                // stream ascends by global id (monotone remap).
                let col: Vec<UserId> = shard.raters_of(i).map(|(u, _)| u).collect();
                assert!(
                    col.iter().all(|&u| sharded.shard_of(u) == t),
                    "column {i} of shard {t} holds only owned users"
                );
                assert!(col.windows(2).all(|w| w[0] < w[1]), "column {i} ascends");
            }
        }
    }

    #[test]
    fn mutations_route_to_the_owning_shard() {
        let m = sample();
        let mut sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(4).unwrap()).unwrap();
        let user = UserId::new(3);
        let owner = sharded.shard_of(user);

        sharded.insert_rating(user, ItemId::new(5), r(2.5)).unwrap();
        assert_eq!(sharded.rating(user, ItemId::new(5)), Some(2.5));
        assert!(sharded.shard(owner).has_rated(user, ItemId::new(5)));

        let prev = sharded.update_rating(user, ItemId::new(5), r(4.0)).unwrap();
        assert_eq!(prev, 2.5);
        assert_eq!(sharded.remove_rating(user, ItemId::new(5)).unwrap(), 4.0);
        assert_eq!(sharded.to_triples(), m.to_triples());

        // Growth past the global dims is tracked at the sharded level.
        sharded
            .insert_rating(UserId::new(12), ItemId::new(9), r(1.0))
            .unwrap();
        assert_eq!(sharded.num_users(), 13);
        assert_eq!(sharded.num_items(), 10);
        assert!(sharded
            .insert_rating(UserId::new(12), ItemId::new(9), r(1.0))
            .is_err());
        // Errors speak global ids even though storage is local.
        match sharded.insert_rating(UserId::new(12), ItemId::new(9), r(1.0)) {
            Err(FairrecError::DuplicateRating { user, item }) => {
                assert_eq!(user, UserId::new(12));
                assert_eq!(item, ItemId::new(9));
            }
            other => panic!("expected DuplicateRating, got {other:?}"),
        }
    }

    #[test]
    fn growth_keeps_owned_lists_sorted_and_exact() {
        let m = sample();
        let spec = ShardSpec::new(3).unwrap();
        let mut sharded = ShardedRatingMatrix::from_matrix(&m, spec).unwrap();
        // Grow the universe in two uneven jumps; each new id must land
        // in its hash owner's remap, in order, with no rescan drift.
        sharded
            .insert_rating(UserId::new(14), ItemId::new(2), r(3.0))
            .unwrap();
        sharded
            .insert_rating(UserId::new(21), ItemId::new(0), r(4.5))
            .unwrap();
        let n = sharded.num_users();
        assert_eq!(n, 22);
        let mut total = 0usize;
        for s in 0..spec.num_shards() as usize {
            let owned = sharded.users_of_shard(s);
            assert!(owned.windows(2).all(|w| w[0] < w[1]), "shard {s} sorted");
            assert_eq!(
                owned,
                spec.users_of_shard(s, n).as_slice(),
                "shard {s} exact vs the O(U) oracle"
            );
            // The local matrix grew in lockstep with the remap.
            assert_eq!(sharded.shard(s).local().num_users(), owned.len() as u32);
            total += owned.len();
        }
        assert_eq!(total, n as usize);
    }

    #[test]
    fn from_triples_matches_from_matrix() {
        let m = sample();
        for s in [1u32, 2, 3, 8] {
            let spec = ShardSpec::new(s).unwrap();
            let via_matrix = ShardedRatingMatrix::from_matrix(&m, spec).unwrap();
            let via_triples = ShardedRatingMatrix::from_triples(
                &m.to_triples(),
                spec,
                m.num_users(),
                m.num_items(),
            )
            .unwrap();
            assert_eq!(via_matrix.to_triples(), via_triples.to_triples());
            assert_eq!(via_matrix.num_users(), via_triples.num_users());
            assert_eq!(via_matrix.num_items(), via_triples.num_items());
        }
    }
}
