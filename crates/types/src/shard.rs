//! User-partitioned rating storage — the matrix side of the sharding
//! layer.
//!
//! The ROADMAP's >10⁶-user goal needs the rating relation split across
//! shards so that cold peer builds (and their memory) scale out instead
//! of up. [`ShardedRatingMatrix`] hash-partitions the **user** dimension:
//! every user is owned by exactly one shard ([`ShardSpec::shard_of`]),
//! and each shard holds a [`RatingMatrix`] containing *only its users'
//! triples* while keeping the **global** id spaces. That one decision
//! buys three properties the similarity layer depends on:
//!
//! * **CSR rows are exact.** A user's ratings live wholly in their
//!   owning shard, so `shard.items_of(u)`, `shard.scores_of(u)`, and the
//!   cached mean `µ_u` are bitwise identical to the unsharded matrix
//!   (same triples, same sorted build order, same left-to-right mean
//!   summation).
//! * **CSC columns are the shard-local view.** `shard.users_of(i)` is
//!   `U(i)` restricted to the shard's users, still ascending by global
//!   user id — exactly the candidate stream a shard-scoped Pearson
//!   kernel pass needs, in exactly the order the monolithic kernel would
//!   have visited those candidates.
//! * **Point mutations route.** `insert`/`update`/`remove` forward to
//!   the owning shard's [`RatingMatrix`] mutation (unchanged), so the
//!   incremental-ingestion contract ("patched ≡ rebuilt, bitwise")
//!   holds per shard by the existing proptests.
//!
//! Out-of-range lookups on a shard matrix answer empty (the
//! [`RatingMatrix`] guard), so shards whose id spaces lag behind a
//! growth event degrade safely: a column a shard has never seen is an
//! empty column, which is also what it holds.

use crate::error::Result;
use crate::ids::{ItemId, UserId};
use crate::matrix::{RatingMatrix, RatingMatrixBuilder, RatingTriple};
use crate::rating::Rating;

/// Deterministic user → shard assignment.
///
/// The partition is a Fibonacci (multiplicative) hash followed by a
/// fixed-point range reduction: well mixed for the sequential id blocks
/// real cohorts arrive in, allocation-free, and — crucially for the
/// bitwise-equality contract — a pure function of `(user, num_shards)`,
/// so every component (matrix, peer index, engine, MapReduce producer)
/// agrees on ownership without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    num_shards: u32,
}

impl ShardSpec {
    /// A spec with `num_shards` shards.
    ///
    /// # Errors
    /// Rejects zero shards.
    pub fn new(num_shards: u32) -> Result<Self> {
        if num_shards == 0 {
            return Err(crate::error::FairrecError::invalid_parameter(
                "num_shards",
                "must be ≥ 1",
            ));
        }
        Ok(Self { num_shards })
    }

    /// Number of shards `S`.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// The shard owning `user` — a pure function of the id and `S`.
    pub fn shard_of(&self, user: UserId) -> usize {
        // Fibonacci hash (golden-ratio multiplier) then take the high
        // bits via a widening multiply: maps uniformly onto 0..S without
        // the modulo's low-bit bias.
        let mixed = user.raw().wrapping_mul(0x9E37_79B9);
        ((u64::from(mixed) * u64::from(self.num_shards)) >> 32) as usize
    }

    /// The users of `0..num_users` owned by `shard`, ascending.
    pub fn users_of_shard(&self, shard: usize, num_users: u32) -> Vec<UserId> {
        (0..num_users)
            .map(UserId::new)
            .filter(|&u| self.shard_of(u) == shard)
            .collect()
    }
}

/// A user-partitioned [`RatingMatrix`]: one shard-local matrix per
/// shard, each holding only its users' triples over the **global** id
/// spaces. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRatingMatrix {
    spec: ShardSpec,
    shards: Vec<RatingMatrix>,
    n_users: u32,
    n_items: u32,
}

impl ShardedRatingMatrix {
    /// Partitions `matrix` into `spec.num_shards()` shard-local matrices.
    ///
    /// # Errors
    /// Propagates shard-matrix build failures (cannot occur for a valid
    /// source matrix — its triples are already duplicate-free).
    pub fn from_matrix(matrix: &RatingMatrix, spec: ShardSpec) -> Result<Self> {
        let (n_users, n_items) = (matrix.num_users(), matrix.num_items());
        let mut builders: Vec<RatingMatrixBuilder> = (0..spec.num_shards())
            .map(|_| RatingMatrixBuilder::new().reserve_ids(n_users, n_items))
            .collect();
        for u in matrix.user_ids() {
            let builder = &mut builders[spec.shard_of(u)];
            for (item, score) in matrix.ratings_of(u) {
                builder.add(u, item, Rating::saturating(score));
            }
        }
        let shards = builders
            .into_iter()
            .map(RatingMatrixBuilder::build)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            spec,
            shards,
            n_users,
            n_items,
        })
    }

    /// The partitioning spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.spec.num_shards()
    }

    /// The shard owning `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        self.spec.shard_of(user)
    }

    /// The shard-local matrix of shard `s`.
    ///
    /// # Panics
    /// Panics when `s ≥ num_shards`.
    pub fn shard(&self, s: usize) -> &RatingMatrix {
        &self.shards[s]
    }

    /// All shard-local matrices, in shard order.
    pub fn shards(&self) -> &[RatingMatrix] {
        &self.shards
    }

    /// The shard matrix holding `user`'s CSR row (and mean).
    pub fn owning_shard(&self, user: UserId) -> &RatingMatrix {
        &self.shards[self.shard_of(user)]
    }

    /// Size of the global user id space.
    pub fn num_users(&self) -> u32 {
        self.n_users
    }

    /// Size of the global item id space.
    pub fn num_items(&self) -> u32 {
        self.n_items
    }

    /// Total stored ratings across all shards.
    pub fn num_ratings(&self) -> usize {
        self.shards.iter().map(RatingMatrix::num_ratings).sum()
    }

    /// The users owned by shard `s` within the global universe,
    /// ascending.
    pub fn users_of_shard(&self, s: usize) -> Vec<UserId> {
        self.spec.users_of_shard(s, self.n_users)
    }

    /// Looks up `rating(u, i)` in the owning shard.
    pub fn rating(&self, user: UserId, item: ItemId) -> Option<f64> {
        self.owning_shard(user).rating(user, item)
    }

    /// Inserts a rating into the owning shard (growing the global id
    /// spaces when needed).
    ///
    /// # Errors
    /// Propagates [`RatingMatrix::insert_rating`] errors; the sharded
    /// matrix is untouched on error.
    pub fn insert_rating(&mut self, user: UserId, item: ItemId, rating: Rating) -> Result<()> {
        let s = self.shard_of(user);
        self.shards[s].insert_rating(user, item, rating)?;
        self.n_users = self.n_users.max(user.raw() + 1);
        self.n_items = self.n_items.max(item.raw() + 1);
        Ok(())
    }

    /// Updates an existing rating in the owning shard; returns the
    /// previous score.
    ///
    /// # Errors
    /// Propagates [`RatingMatrix::update_rating`] errors.
    pub fn update_rating(&mut self, user: UserId, item: ItemId, rating: Rating) -> Result<f64> {
        let s = self.shard_of(user);
        self.shards[s].update_rating(user, item, rating)
    }

    /// Removes an existing rating from the owning shard; returns the
    /// removed score. Id spaces never shrink.
    ///
    /// # Errors
    /// Propagates [`RatingMatrix::remove_rating`] errors.
    pub fn remove_rating(&mut self, user: UserId, item: ItemId) -> Result<f64> {
        let s = self.shard_of(user);
        self.shards[s].remove_rating(user, item)
    }

    /// Re-materialises the full triple relation, sorted `(user, item)` —
    /// the union of every shard's relation.
    pub fn to_triples(&self) -> Vec<RatingTriple> {
        let mut out: Vec<RatingTriple> = self.shards.iter().flat_map(|m| m.to_triples()).collect();
        out.sort_unstable_by_key(|t| (t.user, t.item));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> Rating {
        Rating::new(v).unwrap()
    }

    fn sample() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new().reserve_ids(10, 6);
        for (u, i, s) in [
            (0u32, 0u32, 5.0),
            (0, 2, 3.0),
            (1, 0, 4.0),
            (3, 1, 2.0),
            (3, 2, 4.5),
            (7, 5, 1.0),
            (9, 0, 3.5),
        ] {
            b.add(UserId::new(u), ItemId::new(i), r(s));
        }
        b.build().unwrap()
    }

    #[test]
    fn spec_rejects_zero_and_partitions_everyone() {
        assert!(ShardSpec::new(0).is_err());
        for s in [1u32, 2, 3, 8] {
            let spec = ShardSpec::new(s).unwrap();
            let mut seen = 0usize;
            for shard in 0..s as usize {
                let users = spec.users_of_shard(shard, 100);
                assert!(users.iter().all(|&u| spec.shard_of(u) == shard));
                seen += users.len();
            }
            assert_eq!(seen, 100, "every user owned by exactly one shard");
        }
    }

    #[test]
    fn single_shard_is_the_whole_matrix() {
        let m = sample();
        let sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(1).unwrap()).unwrap();
        // Derived `PartialEq` cannot compare NaN mean slots; the relation
        // plus the dimensions pin the equality.
        assert_eq!(sharded.shard(0).to_triples(), m.to_triples());
        assert_eq!(sharded.shard(0).num_users(), m.num_users());
        assert_eq!(sharded.shard(0).num_items(), m.num_items());
        assert_eq!(sharded.num_ratings(), m.num_ratings());
    }

    #[test]
    fn rows_live_wholly_in_the_owning_shard() {
        let m = sample();
        for s in [2u32, 3, 8] {
            let sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(s).unwrap()).unwrap();
            assert_eq!(sharded.num_users(), m.num_users());
            assert_eq!(sharded.num_items(), m.num_items());
            assert_eq!(sharded.num_ratings(), m.num_ratings());
            for u in m.user_ids() {
                let owner = sharded.owning_shard(u);
                assert_eq!(owner.items_of(u), m.items_of(u), "S={s}, row of {u}");
                assert_eq!(owner.scores_of(u), m.scores_of(u), "S={s}, scores of {u}");
                assert_eq!(
                    owner.user_means()[u.index()].to_bits(),
                    m.user_means()[u.index()].to_bits(),
                    "S={s}, mean of {u}"
                );
                // Every *other* shard holds an empty row for u.
                for (t, shard) in sharded.shards().iter().enumerate() {
                    if t != sharded.shard_of(u) {
                        assert!(shard.items_of(u).is_empty(), "S={s}, shard {t}, user {u}");
                    }
                }
            }
            assert_eq!(sharded.to_triples(), m.to_triples());
        }
    }

    #[test]
    fn columns_are_the_shard_restricted_csc() {
        let m = sample();
        let sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(3).unwrap()).unwrap();
        for i in m.item_ids() {
            let mut union: Vec<(UserId, f64)> = sharded
                .shards()
                .iter()
                .flat_map(|shard| shard.raters_of(i).collect::<Vec<_>>())
                .collect();
            union.sort_unstable_by_key(|&(u, _)| u);
            let full: Vec<(UserId, f64)> = m.raters_of(i).collect();
            assert_eq!(union, full, "column {i}");
            for (t, shard) in sharded.shards().iter().enumerate() {
                assert!(
                    shard.users_of(i).iter().all(|&u| sharded.shard_of(u) == t),
                    "column {i} of shard {t} holds only owned users"
                );
            }
        }
    }

    #[test]
    fn mutations_route_to_the_owning_shard() {
        let m = sample();
        let mut sharded = ShardedRatingMatrix::from_matrix(&m, ShardSpec::new(4).unwrap()).unwrap();
        let user = UserId::new(3);
        let owner = sharded.shard_of(user);

        sharded.insert_rating(user, ItemId::new(5), r(2.5)).unwrap();
        assert_eq!(sharded.rating(user, ItemId::new(5)), Some(2.5));
        assert!(sharded.shard(owner).has_rated(user, ItemId::new(5)));

        let prev = sharded.update_rating(user, ItemId::new(5), r(4.0)).unwrap();
        assert_eq!(prev, 2.5);
        assert_eq!(sharded.remove_rating(user, ItemId::new(5)).unwrap(), 4.0);
        assert_eq!(sharded.to_triples(), m.to_triples());

        // Growth past the global dims is tracked at the sharded level.
        sharded
            .insert_rating(UserId::new(12), ItemId::new(9), r(1.0))
            .unwrap();
        assert_eq!(sharded.num_users(), 13);
        assert_eq!(sharded.num_items(), 10);
        assert!(sharded
            .insert_rating(UserId::new(12), ItemId::new(9), r(1.0))
            .is_err());
    }
}
