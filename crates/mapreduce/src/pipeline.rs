//! The chained Job 0 → 1 → 2 → 3 pipeline (§IV end-to-end).
//!
//! [`mapreduce_group_predictions`] takes the raw rating triples and a
//! caregiver group and produces the same
//! [`GroupPredictions`] the
//! in-memory reference
//! ([`compute_group_predictions`](fairrec_core::predictions::compute_group_predictions))
//! produces — the equivalence is asserted by integration tests on random
//! datasets. After the jobs *"the majority of the computations \[are\]
//! done"*, and Algorithm 1 runs centralised on the assembled pool, exactly
//! as the paper prescribes.

use crate::engine::{run_job, JobConfig, JobMetrics};
use crate::jobs::{
    ItemScores, Job1Mapper, Job1Out, Job1Reducer, Job2Mapper, Job2Reducer, Job3Mapper, Job3Reducer,
    MeansMapper, MeansReducer, SimEdge,
};
use fairrec_core::aggregate::{Aggregation, MissingPolicy};
use fairrec_core::group::Group;
use fairrec_core::predictions::GroupPredictions;
use fairrec_similarity::{
    BulkUserSimilarity, DeltaOutcome, PeerIndex, PeerSelector, RatingsSimilarity, ShardedPeerIndex,
    ShardedRatingsSimilarity, SimScratch,
};
use fairrec_types::{
    FairrecError, ItemId, Parallelism, RatingMatrix, RatingMatrixBuilder, RatingTriple, Relevance,
    Result, ShardSpec, ShardedRatingMatrix, UserId,
};
use std::collections::HashMap;

/// How the pipeline produces its `simU` edges (the output of Job 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeProducer {
    /// The paper's chain: Job 0 means → Job 1 partials → Job 2 sums the
    /// partials in item order and applies δ. The default, because it is
    /// the faithful distributed formulation whose per-stage metrics the
    /// scaling experiments report.
    #[default]
    MapReduce,
    /// The inverted-index one-vs-all kernel
    /// ([`kernel_sim_edges`]): one in-memory bulk pass per member over
    /// the item-major index, skipping Jobs 0 and 2 and Job 1's partial
    /// stream entirely. Bitwise identical edges — Job 2 sums partials in
    /// item order, exactly the kernel's accumulation order — at
    /// co-rating-mass cost instead of a full pair shuffle.
    BulkKernel,
    /// The incremental ingestion path ([`incremental_sim_edges`]): the
    /// relation minus its last `holdout` triples (canonical order) is
    /// built and warmed up front, then the held-out triples stream in
    /// one at a time through `RatingMatrix::insert_rating` +
    /// [`PeerIndex::apply_delta`]. Edges are read off the maintained
    /// index — **bitwise identical** to [`BulkKernel`](Self::BulkKernel)
    /// by the delta contract, which is exactly what this variant is for:
    /// proving, inside the distributed formulation, that a served index
    /// kept fresh by deltas equals one rebuilt from scratch.
    Incremental {
        /// Trailing triples (canonical `(user, item)` order) ingested
        /// incrementally; clamped to the relation size, so
        /// `usize::MAX` replays the whole relation through the delta
        /// path.
        holdout: usize,
    },
    /// The sharded scale-out path ([`sharded_sim_edges`]): the matrix is
    /// hash-partitioned into `num_shards` user shards, the peer lists
    /// come off a
    /// [`ShardedPeerIndex`] warmed
    /// per shard pair, and the members' edges are read from their owning
    /// shards — **bitwise identical** to
    /// [`BulkKernel`](Self::BulkKernel) by the sharding contract. This
    /// variant proves, inside the distributed formulation, that the
    /// partitioned serving substrate equals the monolithic one.
    Sharded {
        /// Number of user shards (≥ 1).
        num_shards: u32,
    },
    /// The distributable form of [`Sharded`](Self::Sharded)
    /// ([`sharded_distributed_sim_edges`]): same partitioning, but the
    /// shard-pair warm schedule is serialised as self-contained
    /// [`WarmTask`](crate::warm::WarmTask) descriptors and executed
    /// through the MapReduce engine
    /// ([`distributed_warm`](crate::warm::distributed_warm)), with the
    /// reduced lists installed via
    /// [`ShardedPeerIndex::adopt_full_lists`] — **bitwise identical** to
    /// [`Sharded`](Self::Sharded) (and hence to
    /// [`BulkKernel`](Self::BulkKernel)) because δ rides the wire as its
    /// exact bit pattern and the pair kernels are the same code. This
    /// variant proves the warm itself is a shippable job, not an
    /// in-process loop.
    ShardedDistributed {
        /// Number of user shards (≥ 1).
        num_shards: u32,
    },
}

/// Pipeline knobs; mirrors the in-memory configuration exactly so the two
/// paths can be compared run-for-run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Peer threshold δ (Definition 1).
    pub delta: f64,
    /// Minimum co-rated overlap for Pearson (in-memory default: 2).
    pub min_overlap: usize,
    /// Optional per-member peer cap, applied between Jobs 2 and 3 (the
    /// kNN variant of Definition 1).
    pub max_peers: Option<usize>,
    /// Definition 2 aggregation.
    pub aggregation: Aggregation,
    /// Missing-prediction policy.
    pub missing: MissingPolicy,
    /// Engine execution knobs.
    pub job: JobConfig,
    /// How the Definition-1 edges are produced.
    pub edge_producer: EdgeProducer,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            delta: 0.0,
            min_overlap: 2,
            max_peers: None,
            aggregation: Aggregation::default(),
            missing: MissingPolicy::default(),
            job: JobConfig::default(),
            edge_producer: EdgeProducer::default(),
        }
    }
}

/// Produces the group's Definition-1 similarity edges with the
/// inverted-index bulk kernel: one [`BulkUserSimilarity`] pass per
/// member, dropping in-group peers (Job 1 pairs members only with
/// non-members) and edges below δ. The output set — members in input
/// order, peers ascending — carries **bitwise** the same similarities as
/// the Job 0 → 1 → 2 chain: Job 2 sorts each pair's partials by item
/// before summing, which is exactly the kernel's ascending-item
/// accumulation order.
pub fn kernel_sim_edges(
    matrix: &RatingMatrix,
    members: &[UserId],
    delta: f64,
    min_overlap: usize,
) -> Vec<SimEdge> {
    let measure = RatingsSimilarity::new(matrix).with_min_overlap(min_overlap);
    let mut scratch = SimScratch::new();
    let mut candidates: Vec<(UserId, f64)> = Vec::new();
    // Capacity guess: a member's edge count is bounded by the number of
    // users sharing an item with them, itself bounded by co-rating mass.
    let degrees = matrix.user_degrees();
    let avg_degree = degrees.iter().map(|&d| d as usize).sum::<usize>() / degrees.len().max(1);
    let mut edges = Vec::with_capacity(members.len() * avg_degree);
    for &member in members {
        candidates.clear();
        measure.similarities_from(member, matrix.num_users(), &mut scratch, &mut candidates);
        edges.extend(candidates.iter().filter_map(|&(peer, sim)| {
            (sim >= delta && !members.contains(&peer)).then_some(SimEdge { member, peer, sim })
        }));
    }
    edges
}

/// Produces the group's Definition-1 similarity edges by *incremental
/// ingestion*: a base matrix holding all but the last `holdout` triples
/// is built and fully warmed (symmetric bulk warm), then each held-out
/// triple is inserted through the live-mutation path and the index is
/// repaired with [`PeerIndex::apply_delta`]. The emitted edge set —
/// every member's δ-qualifying, non-member peers off the maintained
/// index — carries **bitwise** the same similarities as
/// [`kernel_sim_edges`] over the final matrix: the base warm is exact by
/// the bulk-kernel contract, and every delta is exact by the update-path
/// contract (the base index is fully warm, so each insert's user holds
/// a pre-change list).
///
/// `triples` must be duplicate-free and in canonical `(user, item)`
/// order — the pipeline canonicalises before calling.
///
/// # Errors
/// Propagates matrix build/insert failures (duplicate pairs).
pub fn incremental_sim_edges(
    triples: &[RatingTriple],
    members: &[UserId],
    delta: f64,
    min_overlap: usize,
    holdout: usize,
) -> Result<Vec<SimEdge>> {
    let split = triples.len().saturating_sub(holdout);
    let (base, stream) = triples.split_at(split);
    // Pre-size the id spaces to the *final* dimensions so the peer-index
    // universe covers users who only appear in the held-out stream.
    let num_users = triples.iter().map(|t| t.user.raw() + 1).max().unwrap_or(0);
    let num_items = triples.iter().map(|t| t.item.raw() + 1).max().unwrap_or(0);
    let mut builder =
        RatingMatrixBuilder::with_capacity(triples.len()).reserve_ids(num_users, num_items);
    for t in base {
        builder.add(t.user, t.item, t.rating);
    }
    let mut matrix = builder.build()?;

    // Full (uncapped) lists so every qualifying edge is emitted;
    // downstream `PeerIndex::from_edges` applies the caller's cap, same
    // as for the other producers.
    let index = PeerIndex::new(PeerSelector::new(delta)?, num_users);
    index.warm_symmetric(
        &RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap),
        Parallelism::Sequential,
    );
    for t in stream {
        matrix.insert_rating(t.user, t.item, t.rating)?;
        let measure = RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
        let outcome = index.apply_delta(&measure, t.user);
        debug_assert!(
            matches!(outcome, DeltaOutcome::Spliced { .. }),
            "a fully warm index must take the exact splice, got {outcome:?}"
        );
    }

    let measure = RatingsSimilarity::new(&matrix).with_min_overlap(min_overlap);
    let mut edges = Vec::new();
    for &member in members {
        let full = index.full_peers(&measure, member);
        edges.extend(full.iter().filter_map(|&(peer, sim)| {
            (!members.contains(&peer)).then_some(SimEdge { member, peer, sim })
        }));
    }
    Ok(edges)
}

/// Produces the group's Definition-1 similarity edges from the **sharded
/// serving substrate**: the matrix is hash-partitioned into `num_shards`
/// user shards
/// ([`ShardedRatingMatrix`]), a
/// [`ShardedPeerIndex`] is warmed with the per-shard-pair symmetric
/// kernel schedule, and each member's full list is read off its owning
/// shard. By the sharding contract the emitted edges carry **bitwise**
/// the same similarities as [`kernel_sim_edges`] over the unsharded
/// matrix, for any shard count — asserted by this module's tests.
///
/// # Errors
/// Propagates matrix partitioning failures and rejects `num_shards = 0`.
pub fn sharded_sim_edges(
    matrix: &RatingMatrix,
    members: &[UserId],
    delta: f64,
    min_overlap: usize,
    num_shards: u32,
) -> Result<Vec<SimEdge>> {
    let spec = ShardSpec::new(num_shards)?;
    let sharded = ShardedRatingMatrix::from_matrix(matrix, spec)?;
    let measure = ShardedRatingsSimilarity::new(&sharded).with_min_overlap(min_overlap);
    let index = ShardedPeerIndex::new(PeerSelector::new(delta)?, spec, matrix.num_users());
    index.warm_symmetric(&measure, Parallelism::Sequential);
    let mut edges = Vec::new();
    for &member in members {
        let full = index.full_peers(&measure, member);
        edges.extend(full.iter().filter_map(|&(peer, sim)| {
            (!members.contains(&peer)).then_some(SimEdge { member, peer, sim })
        }));
    }
    Ok(edges)
}

/// Produces the group's Definition-1 similarity edges like
/// [`sharded_sim_edges`], except the shard-pair warm runs **as a
/// MapReduce job**: the schedule is serialised into self-contained
/// [`WarmTask`](crate::warm::WarmTask) descriptors, executed through
/// [`run_job`] by [`distributed_warm`](crate::warm::distributed_warm),
/// and the reduced lists are installed with
/// [`ShardedPeerIndex::adopt_full_lists`]. Members' full lists are then
/// read off their owning shards, **bitwise identical** to the in-process
/// variant for any shard count — asserted by this module's tests.
///
/// # Errors
/// Propagates matrix partitioning failures and rejects `num_shards = 0`.
pub fn sharded_distributed_sim_edges(
    matrix: &RatingMatrix,
    members: &[UserId],
    delta: f64,
    min_overlap: usize,
    num_shards: u32,
    job: JobConfig,
) -> Result<Vec<SimEdge>> {
    let spec = ShardSpec::new(num_shards)?;
    let sharded = ShardedRatingMatrix::from_matrix(matrix, spec)?;
    let index = ShardedPeerIndex::new(PeerSelector::new(delta)?, spec, matrix.num_users());
    let report = crate::warm::distributed_warm(&sharded, &index, min_overlap, job)?;
    debug_assert_eq!(
        report.installed,
        Some(matrix.num_users() as usize),
        "a freshly built index is fully cold; adoption must succeed"
    );
    let measure = ShardedRatingsSimilarity::new(&sharded).with_min_overlap(min_overlap);
    let mut edges = Vec::new();
    for &member in members {
        let full = index.full_peers(&measure, member);
        edges.extend(full.iter().filter_map(|&(peer, sim)| {
            (!members.contains(&peer)).then_some(SimEdge { member, peer, sim })
        }));
    }
    Ok(edges)
}

/// Metrics of each stage, for the scaling experiments (A4).
#[derive(Debug, Clone, Default)]
pub struct MapReducePipelineReport {
    /// Job 0 (user means) metrics.
    pub job0: JobMetrics,
    /// Job 1 (candidates + partials) metrics.
    pub job1: JobMetrics,
    /// Job 2 (similarity) metrics.
    pub job2: JobMetrics,
    /// Job 3 (relevance) metrics.
    pub job3: JobMetrics,
    /// Candidate items that had at least one outside rating.
    pub rated_candidates: usize,
    /// Number of (member, peer) similarity edges ≥ δ.
    pub sim_edges: usize,
}

impl MapReducePipelineReport {
    /// Total map+reduce wall-clock across the four jobs.
    pub fn total_duration(&self) -> std::time::Duration {
        [self.job0, self.job1, self.job2, self.job3]
            .iter()
            .map(|m| m.map_duration + m.reduce_duration)
            .sum()
    }
}

/// Runs the full pipeline.
///
/// `num_items` is the size of the item id space. Items with no ratings at
/// all never reach the jobs, yet they are still "unrated by the group";
/// they are reassembled with all-undefined predictions so the output is
/// identical to the in-memory reference.
///
/// # Errors
/// Returns [`FairrecError::DuplicateRating`] when the relation holds the
/// same `(user, item)` pair twice — the workspace-wide invariant
/// [`RatingMatrixBuilder`] enforces,
/// applied here so every edge producer answers duplicate input
/// identically. Group validation happens in [`Group`].
pub fn mapreduce_group_predictions(
    triples: Vec<RatingTriple>,
    num_items: u32,
    group: &Group,
    config: &PipelineConfig,
) -> Result<(GroupPredictions, MapReducePipelineReport)> {
    let mut report = MapReducePipelineReport::default();
    let members: Vec<UserId> = group.members().to_vec();
    let n = members.len();

    // Canonicalise the input order up front. Float summation is order-
    // sensitive in the last ulp, and Job 0 sums each user's ratings in
    // input order while the in-memory reference (and the bulk kernel's
    // `RatingMatrix`) sums in `(user, item)` order — sorting here makes
    // the pipeline's bits independent of how the caller ordered the
    // relation, so the MapReduce/BulkKernel/in-memory equality holds
    // unconditionally rather than only for pre-sorted input.
    let mut triples = triples;
    triples.sort_unstable_by_key(|t| (t.user, t.item));
    // Duplicate pairs are invalid input everywhere in the workspace
    // (`RatingMatrixBuilder` rejects them because keeping one silently
    // would make results depend on insertion order). Rejecting them here
    // keeps the edge producers interchangeable: the kernel path would
    // fail building its matrix while the job chain would silently sum
    // both ratings.
    for w in triples.windows(2) {
        if (w[0].user, w[0].item) == (w[1].user, w[1].item) {
            return Err(FairrecError::DuplicateRating {
                user: w[0].user,
                item: w[0].item,
            });
        }
    }

    // Exclusion set: items any member rated. In the deployed system the
    // caregiver's group ratings are a small, known relation; here it is
    // one scan over the input before the jobs consume it.
    let mut group_rated = vec![false; num_items as usize];
    for t in &triples {
        if group.contains(t.user) {
            group_rated[t.item.index()] = true;
        }
    }

    // ---- Jobs 0–2: the Definition-1 similarity edges ----------------------
    let candidates: Vec<Job1Out>;
    let sim_edges: Vec<SimEdge> = match config.edge_producer {
        EdgeProducer::MapReduce => {
            // Job 0: user means (side data for the Pearson partials).
            let job0 = run_job(&MeansMapper, &MeansReducer, triples.clone(), config.job);
            report.job0 = job0.metrics;
            let means: HashMap<UserId, f64> = job0.output.into_iter().collect();

            // Job 1: per-item grouping — candidates + partial similarities.
            let job1 = run_job(
                &Job1Mapper,
                &Job1Reducer::new(members.clone(), means),
                triples,
                config.job,
            );
            report.job1 = job1.metrics;
            let (candidate_stream, partials): (Vec<Job1Out>, Vec<Job1Out>) = job1
                .output
                .into_iter()
                .partition(|o| matches!(o, Job1Out::Candidate { .. }));
            candidates = candidate_stream;

            // Job 2: finalise simU with threshold δ.
            let job2 = run_job(
                &Job2Mapper,
                &Job2Reducer::new(config.delta, config.min_overlap),
                partials,
                config.job,
            );
            report.job2 = job2.metrics;
            job2.output
        }
        producer @ (EdgeProducer::BulkKernel
        | EdgeProducer::Incremental { .. }
        | EdgeProducer::Sharded { .. }
        | EdgeProducer::ShardedDistributed { .. }) => {
            // The in-memory producers replace the Job 0/partial/Job 2
            // chain; Job 1 runs candidates-only (the paper's grouping is
            // still what classifies items).
            // `RatingTriple` is `Copy`: read the relation by borrow so it
            // is not cloned just because Job 1 consumes it afterwards.
            let edges = match producer {
                EdgeProducer::Incremental { holdout } => incremental_sim_edges(
                    &triples,
                    &members,
                    config.delta,
                    config.min_overlap,
                    holdout,
                )?,
                EdgeProducer::Sharded { num_shards } => {
                    let matrix = RatingMatrix::from_triples(triples.iter().copied())?;
                    sharded_sim_edges(
                        &matrix,
                        &members,
                        config.delta,
                        config.min_overlap,
                        num_shards,
                    )?
                }
                EdgeProducer::ShardedDistributed { num_shards } => {
                    let matrix = RatingMatrix::from_triples(triples.iter().copied())?;
                    sharded_distributed_sim_edges(
                        &matrix,
                        &members,
                        config.delta,
                        config.min_overlap,
                        num_shards,
                        config.job,
                    )?
                }
                _ => {
                    let matrix = RatingMatrix::from_triples(triples.iter().copied())?;
                    kernel_sim_edges(&matrix, &members, config.delta, config.min_overlap)
                }
            };
            let job1 = run_job(
                &Job1Mapper,
                &Job1Reducer::candidates_only(members.clone()),
                triples,
                config.job,
            );
            report.job1 = job1.metrics;
            candidates = job1.output;
            edges
        }
    };
    report.sim_edges = sim_edges.len();

    // Per-member peer tables, canonicalised (sort by sim desc, id asc;
    // optional kNN truncation) by the same `PeerIndex` path the in-memory
    // pipeline uses — the edges are just a precomputed similarity
    // function, so Definition 1 semantics live in exactly one place.
    let mut selector = PeerSelector::new(config.delta)?;
    if let Some(cap) = config.max_peers {
        selector = selector.with_max_peers(cap);
    }
    let num_users = members.iter().map(|m| m.raw() + 1).max().unwrap_or(0);
    let index = PeerIndex::from_edges(
        selector,
        num_users,
        &members,
        sim_edges.into_iter().map(|SimEdge { member, peer, sim }| {
            // `from_edges` quietly ignores edges for unlisted users; the
            // paper's invariant is stronger — both producers pair members
            // only — so a violation here is a job bug worth failing on.
            debug_assert!(
                members.binary_search(&member).is_ok(),
                "edge producer emitted an edge for non-member {member}"
            );
            (member, peer, sim)
        }),
    );
    let peer_sims: Vec<HashMap<UserId, f64>> = index
        .group_peers_cached(&members)
        .into_iter()
        .map(|(_, peers)| peers.into_iter().collect())
        .collect();

    // ---- Job 3: Equation 1 + Definition 2 over the candidates ------------
    let job3 = run_job(
        &Job3Mapper,
        &Job3Reducer::new(
            members.clone(),
            peer_sims,
            config.aggregation,
            config.missing,
        ),
        candidates,
        config.job,
    );
    report.job3 = job3.metrics;
    report.rated_candidates = job3.output.len();

    // ---- Assembly ----------------------------------------------------------
    let mut scored: HashMap<ItemId, ItemScores> = HashMap::with_capacity(job3.output.len());
    for s in job3.output {
        scored.insert(s.item, s);
    }
    let items: Vec<ItemId> = (0..num_items)
        .map(ItemId::new)
        .filter(|i| !group_rated[i.index()])
        .collect();

    let empty_column: Vec<Option<Relevance>> = vec![None; n];
    let unrated_group_score = config.aggregation.aggregate(&empty_column, config.missing);

    let mut member_scores: Vec<Vec<Option<Relevance>>> = vec![Vec::with_capacity(items.len()); n];
    let mut group_scores: Vec<Option<Relevance>> = Vec::with_capacity(items.len());
    for item in &items {
        match scored.get(item) {
            Some(s) => {
                for (row, score) in member_scores.iter_mut().zip(&s.member_scores) {
                    row.push(*score);
                }
                group_scores.push(s.group_score);
            }
            None => {
                // Candidate with no outside rating: Equation 1 undefined
                // for every member.
                for row in member_scores.iter_mut() {
                    row.push(None);
                }
                group_scores.push(unrated_group_score);
            }
        }
    }

    Ok((
        GroupPredictions::from_parts(members, items, member_scores, group_scores),
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrec_types::{GroupId, Rating};

    fn triple(u: u32, i: u32, r: f64) -> RatingTriple {
        RatingTriple {
            user: UserId::new(u),
            item: ItemId::new(i),
            rating: Rating::new(r).unwrap(),
        }
    }

    /// Group {u0, u1}; outsiders u2, u3. Items:
    ///   i0 group-rated; i1 group-rated;
    ///   i2 rated by u2, u3; i3 rated by u2; i4 ratings-free.
    fn fixture() -> Vec<RatingTriple> {
        vec![
            triple(0, 0, 5.0),
            triple(1, 1, 4.0),
            // co-rated history so Pearson is defined (overlap ≥ 2):
            triple(0, 5, 4.0),
            triple(0, 6, 2.0),
            triple(1, 5, 5.0),
            triple(1, 6, 1.0),
            triple(2, 5, 4.5),
            triple(2, 6, 1.5),
            triple(3, 5, 3.0),
            triple(3, 6, 4.0),
            // candidate ratings:
            triple(2, 2, 5.0),
            triple(3, 2, 3.0),
            triple(2, 3, 2.0),
        ]
    }

    #[test]
    fn pipeline_classifies_items_correctly() {
        let group = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        let (preds, report) = mapreduce_group_predictions(
            fixture(),
            7,
            &group,
            &PipelineConfig {
                delta: -1.0,
                ..Default::default()
            },
        )
        .unwrap();
        // Unrated by the group: i2, i3, i4 (i5/i6 are group-rated history).
        assert_eq!(
            preds.items(),
            &[ItemId::new(2), ItemId::new(3), ItemId::new(4)]
        );
        // i4 has no ratings at all → all predictions undefined.
        assert_eq!(preds.member_relevance(0, 2), None);
        assert_eq!(preds.group_relevance(2), None);
        assert!(report.rated_candidates >= 1);
        assert!(report.sim_edges > 0);
        assert!(report.job1.map_input_records == 13);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let group = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        let cfg1 = PipelineConfig {
            delta: -1.0,
            job: JobConfig {
                num_workers: 1,
                num_partitions: 1,
            },
            ..Default::default()
        };
        let cfg4 = PipelineConfig {
            delta: -1.0,
            job: JobConfig {
                num_workers: 4,
                num_partitions: 7,
            },
            ..Default::default()
        };
        let (a, _) = mapreduce_group_predictions(fixture(), 7, &group, &cfg1).unwrap();
        let (b, _) = mapreduce_group_predictions(fixture(), 7, &group, &cfg4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_kernel_edges_match_job2_bitwise() {
        let members = vec![UserId::new(0), UserId::new(1)];
        let triples = fixture();
        // Reference: the Job 0 → 1 → 2 chain.
        let job0 = run_job(
            &MeansMapper,
            &MeansReducer,
            triples.clone(),
            JobConfig::default(),
        );
        let means: HashMap<UserId, f64> = job0.output.into_iter().collect();
        let job1 = run_job(
            &Job1Mapper,
            &Job1Reducer::new(members.clone(), means),
            triples.clone(),
            JobConfig::default(),
        );
        let partials: Vec<Job1Out> = job1
            .output
            .into_iter()
            .filter(|o| matches!(o, Job1Out::Partial { .. }))
            .collect();
        let mut mapreduce = run_job(
            &Job2Mapper,
            &Job2Reducer::new(-1.0, 2),
            partials,
            JobConfig::default(),
        )
        .output;
        mapreduce.sort_by_key(|e| (e.member, e.peer));

        let matrix = RatingMatrix::from_triples(triples).unwrap();
        let mut kernel = kernel_sim_edges(&matrix, &members, -1.0, 2);
        kernel.sort_by_key(|e| (e.member, e.peer));

        assert_eq!(mapreduce.len(), kernel.len());
        for (a, b) in mapreduce.iter().zip(&kernel) {
            assert_eq!((a.member, a.peer), (b.member, b.peer));
            assert_eq!(
                a.sim.to_bits(),
                b.sim.to_bits(),
                "edge ({}, {}) must carry identical bits",
                a.member,
                a.peer
            );
        }
    }

    #[test]
    fn edge_producers_agree_end_to_end() {
        let group = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        for delta in [-1.0, 0.0, 0.5] {
            let base = PipelineConfig {
                delta,
                ..Default::default()
            };
            let bulk = PipelineConfig {
                edge_producer: EdgeProducer::BulkKernel,
                ..base
            };
            let (a, ra) = mapreduce_group_predictions(fixture(), 7, &group, &base).unwrap();
            let (b, rb) = mapreduce_group_predictions(fixture(), 7, &group, &bulk).unwrap();
            assert_eq!(a, b, "delta {delta}: the two producers must agree exactly");
            assert_eq!(ra.sim_edges, rb.sim_edges);
            // The kernel path skips Jobs 0 and 2 entirely.
            assert_eq!(rb.job0.map_input_records, 0);
            assert_eq!(rb.job2.map_input_records, 0);
            assert_eq!(rb.job1.map_input_records, ra.job1.map_input_records);
        }
    }

    #[test]
    fn incremental_edges_match_bulk_kernel_bitwise() {
        let members = vec![UserId::new(0), UserId::new(1)];
        let mut triples = fixture();
        triples.sort_unstable_by_key(|t| (t.user, t.item));
        let matrix = RatingMatrix::from_triples(triples.iter().copied()).unwrap();
        let mut kernel = kernel_sim_edges(&matrix, &members, -1.0, 2);
        kernel.sort_by_key(|e| (e.member, e.peer));
        // Holdouts from "nothing incremental" to "the whole relation
        // replayed through insert_rating + apply_delta".
        for holdout in [0usize, 1, 4, usize::MAX] {
            let mut incremental =
                incremental_sim_edges(&triples, &members, -1.0, 2, holdout).unwrap();
            incremental.sort_by_key(|e| (e.member, e.peer));
            assert_eq!(kernel.len(), incremental.len(), "holdout {holdout}");
            for (a, b) in kernel.iter().zip(&incremental) {
                assert_eq!((a.member, a.peer), (b.member, b.peer), "holdout {holdout}");
                assert_eq!(
                    a.sim.to_bits(),
                    b.sim.to_bits(),
                    "holdout {holdout}: edge ({}, {}) must carry identical bits",
                    a.member,
                    a.peer
                );
            }
        }
    }

    #[test]
    fn incremental_producer_agrees_end_to_end() {
        let group = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        for (delta, holdout) in [(-1.0, 3), (0.0, usize::MAX), (0.5, 1)] {
            let bulk = PipelineConfig {
                delta,
                edge_producer: EdgeProducer::BulkKernel,
                ..Default::default()
            };
            let incremental = PipelineConfig {
                edge_producer: EdgeProducer::Incremental { holdout },
                ..bulk
            };
            let (a, ra) = mapreduce_group_predictions(fixture(), 7, &group, &bulk).unwrap();
            let (b, rb) = mapreduce_group_predictions(fixture(), 7, &group, &incremental).unwrap();
            assert_eq!(a, b, "delta {delta}, holdout {holdout}");
            assert_eq!(ra.sim_edges, rb.sim_edges);
        }
    }

    #[test]
    fn sharded_edges_match_bulk_kernel_bitwise() {
        let members = vec![UserId::new(0), UserId::new(1)];
        let mut triples = fixture();
        triples.sort_unstable_by_key(|t| (t.user, t.item));
        let matrix = RatingMatrix::from_triples(triples.iter().copied()).unwrap();
        let mut kernel = kernel_sim_edges(&matrix, &members, -1.0, 2);
        kernel.sort_by_key(|e| (e.member, e.peer));
        for num_shards in [1u32, 2, 3, 8] {
            let mut sharded = sharded_sim_edges(&matrix, &members, -1.0, 2, num_shards).unwrap();
            sharded.sort_by_key(|e| (e.member, e.peer));
            let mut distributed = sharded_distributed_sim_edges(
                &matrix,
                &members,
                -1.0,
                2,
                num_shards,
                JobConfig::default(),
            )
            .unwrap();
            distributed.sort_by_key(|e| (e.member, e.peer));
            assert_eq!(kernel.len(), sharded.len(), "S={num_shards}");
            assert_eq!(
                kernel.len(),
                distributed.len(),
                "S={num_shards} distributed"
            );
            for ((a, b), c) in kernel.iter().zip(&sharded).zip(&distributed) {
                assert_eq!((a.member, a.peer), (b.member, b.peer), "S={num_shards}");
                assert_eq!(
                    a.sim.to_bits(),
                    b.sim.to_bits(),
                    "S={num_shards}: edge ({}, {}) must carry identical bits",
                    a.member,
                    a.peer
                );
                assert_eq!((a.member, a.peer), (c.member, c.peer), "S={num_shards}");
                assert_eq!(
                    a.sim.to_bits(),
                    c.sim.to_bits(),
                    "S={num_shards}: distributed-warm edge ({}, {}) must carry identical bits",
                    a.member,
                    a.peer
                );
            }
        }
        assert!(sharded_sim_edges(&matrix, &members, -1.0, 2, 0).is_err());
        assert!(
            sharded_distributed_sim_edges(&matrix, &members, -1.0, 2, 0, JobConfig::default())
                .is_err()
        );
    }

    #[test]
    fn sharded_producer_agrees_end_to_end() {
        let group = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        for (delta, num_shards) in [(-1.0, 1), (-1.0, 3), (0.0, 2), (0.5, 8)] {
            let bulk = PipelineConfig {
                delta,
                edge_producer: EdgeProducer::BulkKernel,
                ..Default::default()
            };
            let sharded = PipelineConfig {
                edge_producer: EdgeProducer::Sharded { num_shards },
                ..bulk
            };
            let (a, ra) = mapreduce_group_predictions(fixture(), 7, &group, &bulk).unwrap();
            let (b, rb) = mapreduce_group_predictions(fixture(), 7, &group, &sharded).unwrap();
            assert_eq!(a, b, "delta {delta}, shards {num_shards}");
            assert_eq!(ra.sim_edges, rb.sim_edges);
        }
    }

    #[test]
    fn sharded_distributed_producer_agrees_end_to_end() {
        // The warm runs as serialised MapReduce tasks here; the final
        // predictions must still be bitwise the in-process sharded (and
        // bulk-kernel) result, across shard and worker counts.
        let group = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        for (delta, num_shards, workers) in [(-1.0, 1, 1), (-1.0, 3, 4), (0.0, 2, 2), (0.5, 8, 4)] {
            let base = PipelineConfig {
                delta,
                job: JobConfig::with_workers(workers),
                ..Default::default()
            };
            let sharded = PipelineConfig {
                edge_producer: EdgeProducer::Sharded { num_shards },
                ..base
            };
            let distributed = PipelineConfig {
                edge_producer: EdgeProducer::ShardedDistributed { num_shards },
                ..base
            };
            let (a, ra) = mapreduce_group_predictions(fixture(), 7, &group, &sharded).unwrap();
            let (b, rb) = mapreduce_group_predictions(fixture(), 7, &group, &distributed).unwrap();
            assert_eq!(a, b, "delta {delta}, shards {num_shards}");
            assert_eq!(ra.sim_edges, rb.sim_edges);
        }
    }

    #[test]
    fn duplicate_pairs_are_rejected_by_both_producers() {
        let group = Group::new(GroupId::new(0), [UserId::new(0)]).unwrap();
        let mut dup = fixture();
        dup.push(triple(2, 2, 1.0)); // (u2, i2) already present
        for edge_producer in [
            EdgeProducer::MapReduce,
            EdgeProducer::BulkKernel,
            EdgeProducer::Incremental { holdout: 2 },
            EdgeProducer::Sharded { num_shards: 3 },
            EdgeProducer::ShardedDistributed { num_shards: 3 },
        ] {
            let cfg = PipelineConfig {
                edge_producer,
                ..Default::default()
            };
            match mapreduce_group_predictions(dup.clone(), 7, &group, &cfg) {
                Err(fairrec_types::FairrecError::DuplicateRating { user, item }) => {
                    assert_eq!(user, UserId::new(2));
                    assert_eq!(item, ItemId::new(2));
                }
                other => panic!("{edge_producer:?}: expected DuplicateRating, got {other:?}"),
            }
        }
    }

    #[test]
    fn input_order_does_not_change_results() {
        // Float sums are order-sensitive in the last ulp; the pipeline
        // canonicalises the relation up front, so a reversed (or any)
        // input order must produce identical bits from both producers.
        let group = Group::new(GroupId::new(0), [UserId::new(0), UserId::new(1)]).unwrap();
        let mut reversed = fixture();
        reversed.reverse();
        for edge_producer in [EdgeProducer::MapReduce, EdgeProducer::BulkKernel] {
            let cfg = PipelineConfig {
                delta: -1.0,
                edge_producer,
                ..Default::default()
            };
            let (sorted, _) = mapreduce_group_predictions(fixture(), 7, &group, &cfg).unwrap();
            let (shuffled, _) =
                mapreduce_group_predictions(reversed.clone(), 7, &group, &cfg).unwrap();
            assert_eq!(sorted, shuffled, "{edge_producer:?}");
        }
    }

    #[test]
    fn max_peers_caps_the_tables() {
        let group = Group::new(GroupId::new(0), [UserId::new(0)]).unwrap();
        let base = PipelineConfig {
            delta: -1.0,
            ..Default::default()
        };
        let capped = PipelineConfig {
            max_peers: Some(1),
            ..base
        };
        let (full, _) = mapreduce_group_predictions(fixture(), 7, &group, &base).unwrap();
        let (few, _) = mapreduce_group_predictions(fixture(), 7, &group, &capped).unwrap();
        // With fewer peers, predictions can only change or disappear —
        // structurally both must still cover the same item set.
        assert_eq!(full.items(), few.items());
    }
}
